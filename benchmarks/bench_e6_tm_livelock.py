"""E6 — TM-based monitoring: naive vs synchronization-aware conflicts.

Paper (§2.2, [9]): including synchronization inside monitoring
transactions livelocks under naive conflict resolution; the
synchronization-aware strategy "can efficiently avoid livelocks and
reduce monitoring overhead for the SPLASH benchmarks".
"""

from conftest import report

from repro.harness.experiments import run_e6


def test_e6_livelock_avoidance(benchmark):
    result = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    report(result)
    assert result.headline["naive_livelocks"] >= 2  # livelocks do happen
    assert result.headline["sync_aware_livelocks"] == 0
    assert result.headline["sync_aware_overhead_avg"] < 20
