"""Benchmark-suite configuration.

Every benchmark wraps one experiment runner from
``repro.harness.experiments`` (the same code EXPERIMENTS.md quotes) in
pytest-benchmark, then prints the reproduced table and the
paper-vs-measured headline so `pytest benchmarks/ --benchmark-only -s`
regenerates the paper's evaluation.

Each reported result is also persisted as ``BENCH_<experiment>.json``
(headline + telemetry metrics), so runs leave a machine-readable record
next to the human-readable table.  Set ``REPRO_BENCH_REPORT_DIR`` to
redirect the files (default: current working directory).
"""

import json
import os
from pathlib import Path

import pytest


def write_bench_json(result):
    """Persist one ExperimentResult as BENCH_<experiment>.json."""
    out_dir = Path(os.environ.get("REPRO_BENCH_REPORT_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "claim": result.claim,
        "headline": result.headline,
        "metrics": result.metrics,
        "notes": result.notes,
    }
    path = out_dir / f"BENCH_{result.experiment}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def require_numpy():
    """Skip (not fail) array-kernel speedup gates on hosts without
    numpy — the fallback path is correct but cannot beat itself."""
    from repro import fastpath

    if not fastpath.numpy_available():
        pytest.skip("numpy unavailable: array kernel falls back to reference")


def report(result):
    """Print an ExperimentResult's table + headline (shown with -s / tee)."""
    print()
    print(result.table())
    if result.notes:
        print(f"notes: {result.notes}")
    headline = ", ".join(f"{k}={v:.3g}" for k, v in result.headline.items())
    print(f"headline: {headline}")
    path = write_bench_json(result)
    print(f"bench report: {path}")
