"""Benchmark-suite configuration.

Every benchmark wraps one experiment runner from
``repro.harness.experiments`` (the same code EXPERIMENTS.md quotes) in
pytest-benchmark, then prints the reproduced table and the
paper-vs-measured headline so `pytest benchmarks/ --benchmark-only -s`
regenerates the paper's evaluation.
"""

import pytest


def report(result):
    """Print an ExperimentResult's table + headline (shown with -s / tee)."""
    print()
    print(result.table())
    if result.notes:
        print(f"notes: {result.notes}")
    headline = ", ".join(f"{k}={v:.3g}" for k, v in result.headline.items())
    print(f"headline: {headline}")
