"""E7 — execution-omission errors: implicit dependences via predicate
switching.

Paper (§3.1, [16]): plain dynamic slices miss omission bugs entirely;
relevant slices (static potential dependences) catch them but are
"overly large"; predicate switching verifies implicit dependences
dynamically with a small number of re-executions.
"""

from conftest import report

from repro.harness.experiments import run_e7


def test_e7_predicate_switching(benchmark):
    result = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    report(result)
    assert result.headline["omission_bugs_located"] == result.headline["omission_bugs_total"]
    assert result.headline["avg_verifications"] <= 5
    for row in result.rows:
        assert row[1] == 0  # plain slices never see the omission bug
