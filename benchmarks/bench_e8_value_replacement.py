"""E8 — fault localization by value replacement.

Paper (§3.1, [2]): ranking statements by interesting value-mapping
pairs locates statements "that are either faulty or directly linked to
a faulty statement", and unlike slicing it "can uniformly handle all
errors" — including the omission bugs dynamic slices miss.
"""

from conftest import report

from repro.harness.experiments import run_e8


def test_e8_ranking(benchmark):
    result = benchmark.pedantic(run_e8, rounds=1, iterations=1)
    report(result)
    assert result.headline["bugs_ranked_top2"] >= result.headline["bugs_total"] - 1
    # the omission bugs must be ranked even though slicing misses them
    omission_rows = [r for r in result.rows if r[1] == "omission"]
    assert omission_rows and all(r[4] != "-" for r in omission_rows)
