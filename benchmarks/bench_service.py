"""Analysis service — throughput scaling, overload shedding, cache hits.

Wraps :func:`repro.harness.experiments.run_service`, which stands up
real daemons on Unix sockets and measures three things the service
subsystem promises:

* **Worker scaling** — the same cache-defeating job mix against a
  1-worker and a 4-worker daemon.  Job execution is process-per-worker,
  so with >=2 usable CPUs the 4-worker daemon must clear >=1.5x the
  1-worker throughput; on one CPU the workers time-share a core and the
  ratio is only recorded (same gating as ``bench_parallel``).
* **Overload** — a burst of 2.5x the admission capacity against one
  worker.  The invariant asserted is the paper's logging/replay split
  as live policy: every request gets an answer (zero hangs, zero
  crashes), overload degrades fidelity first and REJECTs only at the
  capacity wall.
* **Cache idempotency** — a repeated slice job must be served from
  cache, byte-identical to the cold result, and >=5x faster.

The overload daemon also reports its latency SLO (p50/p95/p99 from the
``service.latency.total_s`` histogram plus shed rate) — the same
numbers a production ``repro stats`` scrape derives.  The experiment
runs with observability at its default; the obs layer must not change
the shedding outcome (with ``REPRO_SERVICE_OBSERVE=0`` the same gates
hold — the hooks are no-op attribute loads off the hot path, and only
explicitly traced jobs ship spans).

The merged result lands in ``BENCH_service.json``.
"""

from conftest import report

from repro.harness.experiments import run_service


def test_service(benchmark):
    result = benchmark.pedantic(
        lambda: run_service(jobs=12, scale=2), rounds=1, iterations=1
    )
    report(result)

    # Never-hang is the hard contract, regardless of host shape.
    assert result.headline["overload_hangs"] == 0.0
    # The burst must be fully accounted for: every job answered with a
    # definite status, shedding via degraded/rejected rather than crashes.
    answered = (
        result.headline["overload_ok"]
        + result.headline["overload_degraded"]
        + result.headline["overload_rejected"]
    )
    assert answered == 10.0
    # Overload at 2.5x capacity must actually shed something.
    assert result.headline["overload_degraded"] + result.headline["overload_rejected"] > 0

    # The SLO rollup must be derivable from the daemon's own histogram:
    # completed jobs imply a real latency distribution, and the shed
    # rate must agree with the response counts above.
    assert result.headline["slo_p50_ms"] > 0.0
    assert result.headline["slo_p50_ms"] <= result.headline["slo_p95_ms"]
    assert result.headline["slo_p95_ms"] <= result.headline["slo_p99_ms"]
    # shed rate counts fidelity shedding (degraded), not capacity rejects
    assert result.headline["shed_rate"] == result.headline["overload_degraded"] / 10.0

    # Cached repeats: bit-identical and >=5x faster than the cold run.
    assert result.headline["cache_identical"] == 1.0
    assert result.headline["cache_speedup"] >= 5.0

    # Throughput scaling is host-dependent: with one usable CPU the four
    # workers time-share a core, so the ratio is only recorded.
    if result.headline["usable_cpus"] >= 2:
        assert result.headline["worker_scaling"] >= 1.5
