"""Trace lake — stored-run fidelity, query latency and spill overhead.

Not a paper claim: the lake is the host-side persistence story for the
paper's "log cheap, analyze the one run that matters later" workflow.
Three gates:

* the ``lake`` experiment must prove stored-run slice/lineage/
  postmortem answers bit-identical to the live in-memory buffer for
  every suite workload, with spill-enabled tracing within 1.15x of
  no-spill tracing, and cross-run diff localizing the injected bug on
  at least two buggy-corpus families;
* a warm backward slice over a stored trace of >=10M rows (synthesized
  directly in the spill format — 512-seq blocks of bounded dependence
  chains, the template section reused so synthesis is cheap) must
  complete in under 100 ms — the "query years of history like a local
  buffer" number;
* opening the multi-hundred-MB file must stay cheap (mmap + footer
  index, no column copies) — reported, not gated.

``REPRO_BENCH_LAKE_ROWS`` overrides the synthetic row count (CI smoke
uses a smaller trace; the latency gate applies at any scale).
"""

import os
import tempfile
import time
from array import array

from conftest import report

from repro.harness.experiments import run_lake
from repro.lake import open_spill
from repro.lake.format import SpillWriter
from repro.ontrac.records import KIND_CODES, KIND_MBYTES, DepKind
from repro.slicing import backward_slice

_BLOCK = 512  # seqs per independent dependence chain (bounds closures)
_FANIN = 8  # REG edges per consumer


def _synthesize(path: str, target_rows: int) -> int:
    """Write a >=target_rows spill file of bounded dependence chains.

    One template section — an INSTR node then ``_BLOCK - 1`` consumers
    of ``_FANIN`` REG edges each, every producer one seq back — is
    appended repeatedly with only ``cseq_base`` advanced, so the column
    bytes are built once and synthesis is I/O-bound.
    """
    reg = KIND_CODES[DepKind.REG]
    instr = KIND_CODES[DepKind.INSTR]
    offs = [0] + [s for s in range(1, _BLOCK) for _ in range(_FANIN)]
    n = len(offs)
    kind_b = bytes([instr] + [reg] * (n - 1))
    off_b = array("I", offs).tobytes()
    cpc_b = array("H", [(o * 7) % 1000 for o in offs]).tobytes()
    pdelta_b = array("I", [0] + [1] * (n - 1)).tobytes()
    ppc_b = array("H", [0] + [((o - 1) * 7) % 1000 for o in offs[1:]]).tobytes()
    tid_b = array("H", bytes(2 * n)).tobytes()

    sections = (target_rows + n - 1) // n
    writer = SpillWriter(path)
    live = []
    for i in range(sections):
        base = i * _BLOCK
        cid = writer.add_chunk(
            base, n, kind_b, off_b, cpc_b, pdelta_b, ppc_b, tid_b,
            seq_range=(base, base + _BLOCK - 1), pc_range=(0, 999),
        )
        live.append({"id": cid, "head": 0})
    rows = sections * n
    modeled = KIND_MBYTES[instr] * sections + KIND_MBYTES[reg] * (rows - sections)
    writer.close(live, {
        "capacity_bytes": max(modeled, 1),
        "current_bytes": modeled,
        "monotone": True,
        "last_cseq": sections * _BLOCK - 1,
        "rows": rows,
        "stats": {
            "appended": rows, "appended_bytes": modeled,
            "evicted": 0, "evicted_bytes": 0,
            "peak_bytes": modeled, "eviction_passes": 0,
        },
    })
    return rows


def test_trace_lake(benchmark):
    result = benchmark.pedantic(run_lake, rounds=1, iterations=1)

    target_rows = int(os.environ.get("REPRO_BENCH_LAKE_ROWS", 10_000_000))
    fd, path = tempfile.mkstemp(suffix=".rlk", prefix="repro-bench-lake-")
    os.close(fd)
    try:
        rows = _synthesize(path, target_rows)
        t0 = time.perf_counter()
        run = open_spill(path)
        cold_open_ms = (time.perf_counter() - t0) * 1e3
        try:
            ddg = run.ddg()
            last_block = (rows // ((_BLOCK - 1) * _FANIN + 1) - 1) * _BLOCK
            # Prime one criterion in the last block (builds that chunk's
            # reverse index and the consumer-span index), then time
            # memo-cold criteria in the same block: index-warm latency.
            t0 = time.perf_counter()
            sl = backward_slice(ddg, last_block + _BLOCK - 1)
            cold_slice_ms = (time.perf_counter() - t0) * 1e3
            assert len(sl.seqs) == _BLOCK
            warm_slice_ms = float("inf")
            for crit in range(last_block + _BLOCK - 2, last_block + _BLOCK - 8, -1):
                t0 = time.perf_counter()
                sl = backward_slice(ddg, crit)
                warm_slice_ms = min(
                    warm_slice_ms, (time.perf_counter() - t0) * 1e3
                )
                assert len(sl.seqs) == crit - last_block + 1
        finally:
            run.close()
        file_bytes = os.path.getsize(path)
    finally:
        os.unlink(path)

    result.headline.update({
        "stored_rows": float(rows),
        "stored_file_mb": file_bytes / 2**20,
        "cold_open_ms": cold_open_ms,
        "cold_slice_ms": cold_slice_ms,
        "warm_slice_ms": warm_slice_ms,
        "target_warm_slice_ms": 100.0,
    })
    report(result)
    assert result.headline["identical"] == 1.0
    assert result.headline["spill_overhead"] <= 1.15
    assert result.headline["diff_localized_families"] >= 2.0
    assert rows >= target_rows
    assert warm_slice_ms < 100.0
