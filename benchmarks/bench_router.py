"""Router tier — concurrent fan-out load, streamed relay, SLO gates.

Wraps :func:`repro.harness.experiments.run_router`: 1 router + 3 real
daemons on Unix sockets, hit by 200 simultaneous clients (the scale the
router tier exists for — a single daemon's accept loop starts queueing
well below that).  The gated invariants:

* **Zero hangs** — every one of the 200 clients gets a terminal frame.
  Overload may answer degraded/rejected (the backends' admission
  ladder republished through the router), but never silence.
* **SLO shape** — the router's own ``router.latency.total_s`` histogram
  must yield an ordered p50 <= p95 <= p99 with a sane absolute ceiling,
  and capacity rejects must stay a small minority at this load.
* **Relay fidelity** — a streamed job through the router reassembles
  byte-identical to the same job answered blocking by a backend
  directly, and a cached repeat is served at the router without a
  backend round trip.
* **Fan-out** — consistent hashing must actually spread programs:
  no single backend may absorb the whole burst.

The result lands in ``BENCH_router.json`` (folded into
``BENCH_trend.json`` by ``tools/bench_trend.py`` like every other
benchmark snapshot).
"""

from conftest import report

from repro.harness.experiments import run_router


def test_router(benchmark):
    result = benchmark.pedantic(
        lambda: run_router(clients=200, backends=3, workers=2), rounds=1,
        iterations=1,
    )
    report(result)

    # Never-hang is the hard contract: 200 concurrent clients, 200
    # terminal frames.
    assert result.headline["hangs"] == 0.0
    assert result.headline["answered"] == 200.0

    # The SLO must come from the router's own histogram and be shaped
    # like a latency distribution; the ceiling is deliberately loose
    # (shared CI hosts) — the ordering and the shed accounting are the
    # real gates.
    assert result.headline["slo_p50_ms"] > 0.0
    assert result.headline["slo_p50_ms"] <= result.headline["slo_p95_ms"]
    assert result.headline["slo_p95_ms"] <= result.headline["slo_p99_ms"]
    assert result.headline["slo_p99_ms"] < 60_000.0
    # Backpressure may shed, but most of the burst must be served.
    assert result.headline["load_ok"] + result.headline["load_degraded"] >= 150.0
    assert result.headline["reject_rate"] <= 0.25

    # Streamed relay through the router is bit-identical to a direct
    # blocking submit, and reassembling the partials reproduces it.
    assert result.headline["stream_identical"] == 1.0
    assert result.headline["stream_frames"] > 0.0

    # The router cache answers repeats without touching a backend.
    assert result.headline["router_cache_hit"] == 1.0

    # Consistent hashing must fan out: no backend absorbs everything.
    assert result.headline["placement_max"] < result.headline["answered"]
