"""E10 — environment-fault avoidance.

Paper (§3.2): three fault classes — atomicity violation, heap buffer
overflow, malformed user request — are avoided by perturbing the
execution environment (rescheduling, allocator padding, input
sanitizing), and the recorded environment patch prevents recurrence in
future runs at only logging-level overhead.
"""

from conftest import report

from repro.harness.experiments import run_e10


def test_e10_three_fault_classes(benchmark):
    result = benchmark.pedantic(run_e10, rounds=1, iterations=1)
    report(result)
    assert result.headline["faults_avoided"] == result.headline["faults_total"] == 3
    strategies = {row[3] for row in result.rows}
    assert strategies == {"reschedule", "pad-allocations", "filter-input"}
