"""Packed dependence store — slicing wall clock and real residency.

Not a paper claim: the columnar packed store + indexed slicing engine
only change how fast the *host* answers slice queries and how many real
bytes the trace window occupies.  This benchmark traces the E1 ONTRAC
workload suite under the legacy object-deque store and the packed
store, answers an identical criterion batch on both, asserts every
slice's (seqs, pcs, truncated) triple matches, and requires the >=3x
query speedup and >=4x measured (tracemalloc) residency reduction the
packed store was built for.
"""

from conftest import report

from repro.harness.experiments import run_slicing


def test_packed_slicing(benchmark):
    result = benchmark.pedantic(run_slicing, rounds=1, iterations=1)
    report(result)
    assert result.headline["identical"] == 1.0
    assert result.headline["slice_speedup"] >= 3.0
    assert result.headline["residency_reduction"] >= 4.0
    # The introspection counters prove the indexed engine actually ran:
    # repeated criteria must hit the closure memo, and the tracer must
    # have appended into packed column chunks.
    assert result.metrics["slicing.queries"] > 0
    assert result.metrics["slicing.memo_hits"] > 0
    assert result.metrics["slicing.rows_scanned"] > 0
    assert result.metrics["ontrac.store.chunks"] > 0
