"""E11 — attack detection and PC-taint root-cause location.

Paper (§3.3): DIFT detects input-validation attacks at the sink, and
propagating PC values instead of booleans makes the detection point
name the statement that wrote the offending value — "in most cases this
directly points to the statement that is the root cause of the bug".
Includes the boolean-vs-PC policy ablation.
"""

from conftest import report

from repro.harness.experiments import run_e11
from repro.apps.security import AttackMonitor, attack_corpus


def test_e11_detection_and_root_cause(benchmark):
    result = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    report(result)
    n = result.headline["scenarios"]
    assert result.headline["attacks_detected"] == n
    assert result.headline["root_causes_named"] == n
    for row in result.rows:
        assert row[1] == 1, f"{row[0]}: benign run was flagged"


def test_e11_ablation_bool_vs_pc(benchmark):
    """Boolean taint detects but cannot explain; PC taint does both."""

    def run():
        rows = []
        for scenario in attack_corpus():
            bool_report = AttackMonitor.for_scenario(scenario, policy="bool").monitor(
                scenario.runner(attack=True), scenario.compiled, scenario.name
            )
            pc_report = AttackMonitor.for_scenario(scenario, policy="pc").monitor(
                scenario.runner(attack=True), scenario.compiled, scenario.name
            )
            rows.append(
                (scenario.name, bool_report.detected, bool_report.culprit_line,
                 pc_report.culprit_line, sorted(scenario.root_cause_lines))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, detected, bool_line, pc_line, truth in rows:
        print(f"  {name:18s} bool: detected={detected} culprit={bool_line or '-'} | "
              f"pc: culprit line {pc_line} (truth {truth})")
        assert detected
        assert bool_line == 0  # boolean taint cannot name the culprit
        assert pc_line in truth
