"""Out-of-process DIFT helper — real-worker offload vs the inline engine.

Where ``bench_e4_multicore`` scores the paper's *modeled* helper core in
simulated cycles, this benchmark times the real thing: a worker process
consuming the shared-memory ring (``repro.multicore.parallel``) against
the inline engine on the DIFT-heavy workload suite, with every run's
alerts, taint sets and stats asserted identical.

Two of the reported numbers are host-dependent and two are not:

* ``suite_speedup`` (end-to-end wall clock) and the per-workload rows
  are bounded by the slower side of the split: on a single-CPU host the
  parent and the worker time-share one core (parity is the ceiling), and
  even with real parallelism the worker's propagation rate caps the
  pipeline near inline parity.  The >=2-CPU assertion therefore demands
  no material end-to-end regression, and the measured value plus the
  work-split projection are recorded as-is in BENCH_parallel.json.
* ``app_core_speedup`` (application-core CPU, ``time.process_time``,
  which never counts the worker's cycles) is host-independent and is
  asserted unconditionally: offloading must cut the main core's DIFT
  overhead >=1.5x, the paper's actual claim (§2.1).  The comparator is
  per-event inline propagation (the reference kernel) — the claim is
  about where that per-record work runs.  The vectorized batch kernel
  changes the economics on purpose: ``app_core_speedup_vs_array_inline``
  records (ungated) that batched *inline* propagation now rivals
  offloading on-core, and ``worker_kernel_lift`` shows what the array
  kernel buys the worker pipeline itself.

``test_experiment_fanout`` covers the second layer: ``run_all`` with a
``ProcessPoolExecutor`` fan-out vs the sequential sweep, with the same
CPU gating (>=2x needs >=4 usable CPUs for 4 workers).
"""

import os
import time

from conftest import report

from repro.harness.experiments import ExperimentResult, run_all, run_parallel


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def test_parallel_helper_speedup(benchmark):
    result = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    report(result)
    # Equivalence is the contract: a fast diverging helper is worthless.
    assert result.headline["identical"] == 1.0
    # Host-independent claim: the application core sheds >=1.5x of its
    # DIFT overhead to the worker regardless of how many CPUs exist.
    assert result.headline["app_core_speedup"] >= 1.5
    # End-to-end wall clock is worker-bound: with real parallelism the
    # pipeline must at least hold inline parity (the app core's >=1.5x
    # relief above is the claim); on 1 CPU parent and worker time-share
    # a core, so only record the measured value.
    if result.headline["usable_cpus"] >= 2:
        assert result.headline["suite_speedup"] >= 0.9
    # The channel introspection counters prove the offload engaged.
    assert result.metrics["multicore.parallel.messages"] > 0
    assert result.metrics["multicore.parallel.batches"] > 0
    assert result.metrics["multicore.parallel.defs"] > 0


# Substantive experiments (~1s each) with no shared state: the fan-out
# has real work to overlap and deterministic per-experiment results.
_FANOUT_SELECTION = ["E1", "E3", "E4", "E5"]


def test_experiment_fanout(benchmark):
    def measure():
        t0 = time.perf_counter()
        sequential = run_all(_FANOUT_SELECTION)
        sequential_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        fanned = run_all(_FANOUT_SELECTION, workers=4, timeout_s=300.0)
        fanned_s = time.perf_counter() - t0
        return sequential, sequential_s, fanned, fanned_s

    sequential, sequential_s, fanned, fanned_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # Deterministic ordering: fan-out must return results in selection
    # order with the same headline numbers as the sequential sweep.
    assert [r.experiment for r in fanned] == [r.experiment for r in sequential]
    for seq, fan in zip(sequential, fanned):
        assert seq.headline == fan.headline

    cpus = _usable_cpus()
    speedup = sequential_s / fanned_s
    result = ExperimentResult(
        experiment="parallel_workers",
        claim="experiments --workers 4 >=2x vs sequential on >=4 CPUs",
        headers=["mode", "experiments", "wall s"],
        rows=[
            ["sequential", len(sequential), sequential_s],
            ["workers=4", len(fanned), fanned_s],
        ],
        headline={
            "fanout_speedup": speedup,
            "usable_cpus": float(cpus),
            "deterministic": 1.0,
        },
    )
    report(result)
    if cpus >= 4:
        assert speedup >= 2.0
    elif cpus >= 2:
        assert speedup >= 1.2
