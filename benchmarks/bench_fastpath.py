"""Fast path — wall-clock speedup with bit-identical observables.

Not a paper claim: the fast execution path (precompiled VM dispatch,
interned dependence records, paged shadow memory) only changes how fast
the *host* runs the simulation.  This benchmark times the E1 ONTRAC
workload suite with the fast-path flags off vs on, asserts the record
streams and modeled cycles match, and requires the >=2x speedup the
fast path was built for.
"""

from conftest import report

from repro.harness.experiments import run_fastpath


def test_fastpath_speedup(benchmark):
    result = benchmark.pedantic(run_fastpath, rounds=1, iterations=1)
    report(result)
    assert result.headline["bit_identical"] == 1.0
    assert result.headline["traced_suite_speedup"] >= 2.0
    # The introspection counters prove the fast paths actually engaged
    # (the packed columnar store subsumes record interning, so its chunk
    # gauge is the tracer-side engagement signal).
    assert result.metrics["fastpath.dispatch_hits"] > 0
    assert result.metrics["ontrac.store.chunks"] > 0
    assert result.metrics["shadow.pages_allocated"] > 0
