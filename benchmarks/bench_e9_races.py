"""E9 — synchronization-aware data-race detection.

Paper (§3.1, [8,10]): multithreaded slicing with WAR/WAW dependences
finds races; dynamic recognition of user synchronization filters the
"many benign synchronization races and infeasible races reported by
other tools" while keeping the true races.
"""

from conftest import report

from repro.harness.experiments import run_e9


def test_e9_sync_aware_filtering(benchmark):
    result = benchmark.pedantic(run_e9, rounds=1, iterations=1)
    report(result)
    assert result.headline["benign_races_filtered"] >= 10
    for row in result.rows:
        name, _, _, reported, _, true_found = row
        assert true_found == 1, f"{name}: ground truth missed"
        if name in ("locked-counter", "flag-sync"):
            assert reported == 0, f"{name}: false positives reported"
