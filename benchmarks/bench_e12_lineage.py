"""E12 — lineage tracing: slowdown, memory, roBDD vs naive sets.

Paper (§3.4, [12]): tracing full input-lineage sets costs <40x slowdown
(infrastructure discounted) and ~300% memory; roBDDs exploit the
overlap/clustering of real lineage sets.  Includes the clustering
ablation: on scattered (anti-clustered) lineage the roBDD advantage
disappears, on overlapping prefix sets it is decisive.
"""

from conftest import report

from repro.harness.experiments import run_e12
from repro.apps.lineage import LineageTracer
from repro.workloads.scientific import cumulative_sum, scatter_pick


def test_e12_lineage_costs(benchmark):
    result = benchmark.pedantic(lambda: run_e12(scale=2), rounds=1, iterations=1)
    report(result)
    assert result.headline["robdd_slowdown_max"] < 40  # the paper's bound
    for row in result.rows:
        exact = row[2]
        done, total = exact.split("/")
        assert done == total, f"lineage mismatch on {row[0]}"


def test_e12_ablation_clustering(benchmark):
    """roBDD wins on overlapping/clustered sets, not on scattered ones."""

    def run():
        rows = {}
        for w in (cumulative_sum(n=400), scatter_pick(n=64, picks=16)):
            per = {}
            for representation in ("naive", "robdd"):
                trace = LineageTracer(representation=representation).trace(w.runner())
                per[representation] = trace.shadow_set_bytes
            rows[w.name] = per
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, per in rows.items():
        ratio = per["naive"] / max(1, per["robdd"])
        print(f"  {name:16s} naive={per['naive']}B robdd={per['robdd']}B "
              f"naive/robdd={ratio:.1f}x")
    overlap = rows["cumulative-sum"]
    scattered = rows["scatter-pick"]
    assert overlap["naive"] > 2 * overlap["robdd"]  # roBDD wins when sets overlap
    assert scattered["robdd"] > scattered["naive"]  # and loses when they don't
