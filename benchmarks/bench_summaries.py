"""Function-summary DIFT — call-region replay vs instruction-level work.

ONTRAC elides statically-taint-free basic blocks; summaries lift the
same idea to call granularity: the first execution of a CALL-delimited
region is distilled into its taint transfer function, and later calls
with a matching footprint apply it in O(footprint), skipping
instruction-level propagation of the whole region.  Both sides of this
benchmark consume identical marked record streams, and the summary
side pays its own learning inside the timed pass (fresh cache per
pass) — the numbers are single-run honest, not warm-cache best cases.

Gated claims:

* propagation on the 0%-polymorphic call-heavy workload is >=5x the
  bare batch kernel;
* the whole DIFT suite (six call-free spec workloads + the call-heavy
  trio) aggregates to >=2x — summaries must pay for themselves even
  with call-free and 50%-polymorphic members dragging the mean;
* observables are bit-identical and the record ledger reconciles:
  every consumed record is a marker, an elided region record, or a
  record the inner kernel actually propagated;
* the 50%-polymorphic member shows invalidations (the guard machinery
  demonstrably fired) while still holding identity.
"""

from conftest import report, require_numpy

from repro.harness.experiments import run_summaries


def test_summary_replay_speedup(benchmark):
    require_numpy()
    result = benchmark.pedantic(run_summaries, rounds=1, iterations=1)
    report(result)
    # Equivalence is the contract: a fast diverging replay is worthless.
    assert result.headline["identical"] == 1.0
    assert result.headline["reconciled"] == 1.0
    assert result.headline["numpy_available"] == 1.0
    # The tentpole gates: call-heavy >=5x, suite aggregate >=2x.
    assert result.headline["callheavy_speedup"] >= 5.0
    assert result.headline["aggregate_speedup"] >= 2.0
    # Polymorphic calls exercised the invalidation path, yet identity held.
    assert result.headline["polymorphic_invalidations"] > 0
    # Summaries actually engaged and elided real work.
    assert result.metrics["dift.summaries.hits"] > 0
    assert result.metrics["dift.summaries.records_elided"] > 0
