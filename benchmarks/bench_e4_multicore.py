"""E4 — helper-core DIFT overhead; software vs hardware channel.

Paper (§2.1, [3]): performing DIFT on a helper core costs ~48% for
SPEC integer programs with hardware-interconnect communication; the
shared-memory software channel is substantially more expensive.  Also
sweeps the channel cost regimes (the DESIGN.md ablation).
"""

from conftest import report

from repro.harness.experiments import run_e4
from repro.dift import BoolTaintPolicy
from repro.multicore import ChannelModel, HelperCoreDIFT
from repro.workloads.spec_like import matmul


def test_e4_helper_core_overhead(benchmark):
    result = benchmark.pedantic(run_e4, rounds=1, iterations=1)
    report(result)
    hw = result.headline["hw_overhead_pct"]
    sw = result.headline["sw_overhead_pct"]
    inline = result.headline["inline_overhead_pct"]
    assert 20 < hw < 80  # the paper's ~48% band
    assert sw > 2 * hw  # software channel clearly worse
    assert hw < inline  # the helper core relieves the main core


def test_e4_ablation_queue_depth_and_cost(benchmark):
    """Channel-parameter sweep: enqueue cost dominates; tiny queues stall."""

    def sweep():
        rows = []
        w = matmul(8)
        for enq, cap in ((1, 64), (1, 4), (4, 64), (8, 64)):
            runner = w.runner()
            m = runner.machine()
            channel = ChannelModel(f"enq{enq}-cap{cap}", enq, 1, cap)
            helper = HelperCoreDIFT(BoolTaintPolicy(), channel=channel).attach(m)
            m.run()
            rows.append((channel.name, helper.report().overhead * 100))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, overhead in rows:
        print(f"  {name:12s} overhead {overhead:7.1f}%")
    by_name = dict(rows)
    assert by_name["enq8-cap64"] > by_name["enq1-cap64"]
