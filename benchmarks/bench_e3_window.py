"""E3 — execution-history window vs circular-buffer size.

Paper (§2.1): at 0.8 B/instr, a 16 MB buffer holds a 20M-instruction
history window.  We sweep buffer sizes, verify the window scales
linearly, and extrapolate to 16 MB (full 16 MB runs would need >10M
interpreted instructions; the rate is size-invariant, so the
extrapolation is exact up to workload mix).
"""

from conftest import report

from repro.harness.experiments import run_e3


def test_e3_window_scaling(benchmark):
    result = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    report(result)
    windows = [row[1] for row in result.rows]
    assert windows == sorted(windows)
    # same order of magnitude as the paper's 20M-instruction window
    assert result.headline["extrapolated_window_at_16mb"] > 1_000_000
