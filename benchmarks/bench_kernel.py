"""Vectorized batch-propagation kernel — array vs reference throughput.

The paper's premise is that DIFT propagation, decoupled from execution
behind a compact record stream, can be made cheap (§2.1).  This
benchmark gates the software version of that claim: both kernels
consume the *same* captured record streams (the ring wire format), so
the number is pure propagation throughput with VM execution factored
out.

Gated claims:

* aggregate propagation throughput over the DIFT-heavy suite is >=3x
  the pure-python reference kernel (per-workload rows are recorded but
  not individually gated — short streams amortize the batch decode and
  selection probes poorly);
* observables are bit-identical: alerts, stats, shadow taint sets and
  the peak-location high-water mark (``identical`` must be 1.0 — a
  fast diverging kernel is worthless).

On hosts without numpy the speedup gate is skipped (the array kernel
falls back to the reference implementation); identity still holds
trivially and is asserted.
"""

from conftest import report, require_numpy

from repro.harness.experiments import run_kernel


def test_kernel_propagation_speedup(benchmark):
    require_numpy()
    result = benchmark.pedantic(run_kernel, rounds=1, iterations=1)
    report(result)
    # Equivalence is the contract: a fast diverging kernel is worthless.
    assert result.headline["identical"] == 1.0
    assert result.headline["numpy_available"] == 1.0
    # The tentpole gate: >=3x aggregate propagation throughput.
    assert result.headline["propagation_speedup"] >= 3.0
    # The array kernel actually engaged (batches consumed through it).
    assert result.metrics["dift.kernel.batches"] > 0
    assert result.metrics["dift.kernel.records"] > 0
