"""E2 — stored trace bytes per executed instruction (with ablation).

Paper (§2.1): the optimizations cut the rate from 16 B/instr to
0.8 B/instr.  The ablation sweep adds one optimization at a time
(intra-block static inference -> hot traces -> redundant loads ->
forward-slice-of-input filtering) — the design-choice ablation called
out in DESIGN.md.
"""

from conftest import report

from repro.harness.experiments import run_e2


def test_e2_bytes_per_instruction_ablation(benchmark):
    result = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    report(result)
    naive = result.headline["naive_bytes_per_instr"]
    optimized = result.headline["optimized_bytes_per_instr"]
    assert naive > 8
    assert optimized < 2.5
    assert naive / optimized > 5  # the paper's 20x, same order of reduction
