"""E5 — execution reduction on the long-running multithreaded server.

Paper (§2.2), MySQL 3.23.56 case study: original 14.8 s; with
checkpointing & logging 16.8 s (1.14x); fully traced 3736 s (~252x);
relevant-region traced replay 0.67 s (4.5% of the run); dependences
drop from 976M to 3175.  Regenerates the same five-row comparison on
the request-server workload (absolute scale differs — our server run is
thousandsfold shorter — but every ratio direction must hold).
"""

from conftest import report

from repro.harness.experiments import run_e5


def test_e5_mysql_shape(benchmark):
    result = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    report(result)
    h = result.headline
    assert h["reproduced"] == 1.0
    assert h["logging_slowdown"] < 2.0  # paper: ~1.14x, bounded by 2x
    assert h["tracing_slowdown"] > 5 * h["logging_slowdown"]  # orders apart
    assert h["replayed_fraction"] < 0.10  # paper: 4.5%
    assert h["dep_reduction"] > 10  # paper: five orders at their scale


def test_e5_checkpoint_interval_sweep(benchmark):
    """Ablation: tighter checkpoints shrink the traced replay window."""

    def sweep():
        fractions = []
        for interval in (40_000, 10_000, 4_000):
            r = run_e5(checkpoint_interval=interval)
            fractions.append((interval, r.headline["replayed_fraction"]))
        return fractions

    fractions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for interval, fraction in fractions:
        print(f"  checkpoint interval {interval:6d} -> replayed {fraction * 100:5.2f}%")
    assert fractions[-1][1] <= fractions[0][1]
