"""E1 — ONTRAC online tracing slowdown vs offline post-processing.

Paper (§2.1): computing the dependence trace online slows the program
~19x on average, versus ~540x for the collect-then-post-process
baseline of [18].  Regenerates the per-workload slowdown table over the
SPEC-like suite.
"""

from conftest import report

from repro.harness.experiments import run_e1


def test_e1_ontrac_vs_offline(benchmark):
    result = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    report(result)
    assert result.headline["online_slowdown_avg"] < 40
    assert result.headline["offline_slowdown_avg"] > 5 * result.headline["online_slowdown_avg"]


def test_e1_wet_compaction(benchmark):
    """The compact dependence representation of [18] that made offline
    *slicing* fast (while generation stayed slow): dynamic edges are
    mostly repetitions of static edges and compress by an order of
    magnitude."""
    from repro.ontrac import OntracConfig, compact
    from repro.workloads.spec_like import suite

    def run():
        rows = []
        for w in suite():
            _, tracer, _ = w.runner().run_traced(
                OntracConfig.unoptimized(buffer_bytes=1 << 26)
            )
            wet = compact(tracer.dependence_graph())
            rows.append((w.name, wet.raw_edges, wet.compression_ratio))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, edges, ratio in rows:
        print(f"  {name:10s} {edges:7d} dynamic edges, compact form {ratio:5.1f}x smaller")
    # branchy kernels (fsm) compress least; regular loops compress most
    assert all(ratio >= 2 for _, _, ratio in rows)
    assert max(ratio for _, _, ratio in rows) > 10
