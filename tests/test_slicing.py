"""Unit tests for dynamic slicing: backward/forward slices, chops,
pruning, relevant slicing, implicit dependences, multithreaded slicing."""

import pytest

from repro.isa import Opcode
from repro.lang import compile_source
from repro.ontrac import DepKind, OntracConfig
from repro.runner import ProgramRunner
from repro.slicing import (
    DATA_KINDS,
    CriterionRecorder,
    PredicateSwitcher,
    backward_slice,
    branches_with_potential_stores,
    chop,
    classify_outputs,
    cross_thread_dependences,
    find_implicit_dependences,
    forward_slice,
    kept_pcs,
    multithreaded_backward_slice,
    prune_slice,
    relevant_slice,
    slice_at_last_output,
)
from repro.vm import Hook


def traced(src, inputs=None, config=None, scheduler_factory=None):
    cp = compile_source(src)
    runner = ProgramRunner(
        cp.program, inputs=inputs or {}, scheduler_factory=scheduler_factory
    )
    m, tracer, res = runner.run_traced(config or OntracConfig(buffer_bytes=1 << 22))
    return m, tracer.dependence_graph(), cp, runner


def out_pcs(cp, function=None):
    return [
        pc
        for pc in range(len(cp.program.code))
        if cp.program.code[pc].opcode is Opcode.OUT
        and (function is None or cp.program.code[pc].function == function)
    ]


BUGGY = (
    "fn main() {\n"  # 1
    "    var a = in(0);\n"  # 2
    "    var b = in(0);\n"  # 3
    "    var good = a + b;\n"  # 4
    "    var bad = a + a;\n"  # 5  BUG: should be a * b
    "    out(good, 1);\n"  # 6
    "    out(bad, 1);\n"  # 7
    "}\n"
)


class TestBackwardForward:
    def test_bug_in_slice_unrelated_not(self):
        m, ddg, cp, _ = traced(BUGGY, inputs={0: [3, 4]})
        bad_out = out_pcs(cp)[1]
        sl = slice_at_last_output(ddg, bad_out)
        lines = sl.statement_lines(cp)
        assert 5 in lines  # the bug
        assert 2 in lines  # its input
        assert 4 not in lines  # unrelated computation
        assert 3 not in lines  # unused input for 'bad'

    def test_criterion_in_slice(self):
        m, ddg, cp, _ = traced(BUGGY, inputs={0: [1, 2]})
        seq = ddg.last_instance_of_pc(out_pcs(cp)[0])
        sl = backward_slice(ddg, seq)
        assert seq in sl

    def test_unknown_criterion_raises(self):
        m, ddg, cp, _ = traced(BUGGY, inputs={0: [1, 2]})
        with pytest.raises(KeyError):
            backward_slice(ddg, 10**9)
        with pytest.raises(KeyError):
            slice_at_last_output(ddg, 10**6)

    def test_forward_slice_of_input(self):
        m, ddg, cp, _ = traced(BUGGY, inputs={0: [1, 2]})
        in_pc = min(
            pc for pc in range(len(cp.program.code))
            if cp.program.code[pc].opcode is Opcode.IN
        )
        seq = ddg.instances_of_pc(in_pc)[0]  # first in(): variable a
        fwd = forward_slice(ddg, seq)
        lines = fwd.statement_lines(cp)
        assert {4, 5, 6, 7} <= lines  # a feeds everything downstream

    def test_chop_source_to_sink(self):
        m, ddg, cp, _ = traced(BUGGY, inputs={0: [1, 2]})
        in_pc = min(
            pc for pc in range(len(cp.program.code))
            if cp.program.code[pc].opcode is Opcode.IN
        )
        src_seq = ddg.instances_of_pc(in_pc)[0]
        sink_seq = ddg.last_instance_of_pc(out_pcs(cp)[1])
        nodes = chop(ddg, src_seq, sink_seq)
        assert src_seq in nodes and sink_seq in nodes
        chop_lines = {cp.line_of(ddg.pc_of(s)) for s in nodes}
        assert 5 in chop_lines
        assert 6 not in chop_lines  # the good output is off the path

    def test_control_dependence_in_slice(self):
        src = (
            "fn main() {\n"
            "    var x = in(0);\n"
            "    var y = 0;\n"
            "    if (x > 2) {\n"
            "        y = 1;\n"
            "    }\n"
            "    out(y, 1);\n"
            "}\n"
        )
        m, ddg, cp, _ = traced(src, inputs={0: [5]})
        sl = slice_at_last_output(ddg, out_pcs(cp)[0])
        assert 4 in sl.statement_lines(cp)  # the predicate, via control dep

    def test_data_only_slice_excludes_predicate(self):
        src = (
            "fn main() {\n"
            "    var x = in(0);\n"
            "    var y = 0;\n"
            "    if (x > 2) {\n"
            "        y = 1;\n"
            "    }\n"
            "    out(y, 1);\n"
            "}\n"
        )
        m, ddg, cp, _ = traced(src, inputs={0: [5]})
        sl = slice_at_last_output(ddg, out_pcs(cp)[0], kinds=DATA_KINDS)
        assert 4 not in sl.statement_lines(cp)

    def test_truncated_slice_flagged(self):
        src = """
        global acc;
        fn main() {
            acc = in(0);
            var i = 0;
            while (i < 300) { acc = acc + i; i = i + 1; }
            out(acc, 1);
        }
        """
        cp = compile_source(src)
        runner = ProgramRunner(cp.program, inputs={0: [1]})
        _, tracer, _ = runner.run_traced(OntracConfig(buffer_bytes=512))
        ddg = tracer.dependence_graph()
        sl = slice_at_last_output(ddg, out_pcs(cp)[0])
        assert sl.truncated


class TestPruning:
    def test_correct_output_paths_pruned(self):
        m, ddg, cp, runner = traced(BUGGY, inputs={0: [3, 4]})
        good_pc, bad_pc = out_pcs(cp)
        outputs = [
            (ddg.last_instance_of_pc(good_pc), m.io.output(1)[0]),
            (ddg.last_instance_of_pc(bad_pc), m.io.output(1)[1]),
        ]
        correct, incorrect = classify_outputs(ddg, outputs, expected=[7, 12])
        assert len(correct) == 1 and len(incorrect) == 1
        sl = backward_slice(ddg, ddg.last_instance_of_pc(bad_pc))
        pruned = prune_slice(ddg, sl, correct, incorrect)
        kept_lines = {cp.line_of(pc) for pc in kept_pcs(ddg, pruned)}
        assert 5 in kept_lines  # the bug survives
        assert pruned.pruned_seqs or pruned.reduction == 0.0

    def test_shared_producer_not_pruned(self):
        # 'a' feeds both the correct and the wrong output: must be kept.
        m, ddg, cp, _ = traced(BUGGY, inputs={0: [3, 4]})
        good_pc, bad_pc = out_pcs(cp)
        good_seq = ddg.last_instance_of_pc(good_pc)
        bad_seq = ddg.last_instance_of_pc(bad_pc)
        sl = backward_slice(ddg, bad_seq)
        pruned = prune_slice(ddg, sl, {good_seq}, {bad_seq})
        kept_lines = {cp.line_of(ddg.pc_of(s)) for s in pruned.kept_seqs}
        assert 2 in kept_lines  # var a = in(0) reaches the bad output too

    def test_classify_extra_outputs_incorrect(self):
        correct, incorrect = classify_outputs(None, [(1, 5), (2, 6)], expected=[5])
        assert correct == {1}
        assert incorrect == {2}


OMISSION = (
    "global result;\n"  # 1
    "fn main() {\n"  # 2
    "    var x = in(0);\n"  # 3
    "    result = 10;\n"  # 4
    "    if (x > 100) {\n"  # 5  BUG: should be x > 0
    "        result = x * 2;\n"  # 6  omitted
    "    }\n"
    "    out(result, 1);\n"  # 8
    "}\n"
)


class TestImplicit:
    def test_omission_bug_invisible_to_plain_slice(self):
        m, ddg, cp, _ = traced(OMISSION, inputs={0: [7]})
        sl = slice_at_last_output(ddg, out_pcs(cp)[0])
        assert 5 not in sl.statement_lines(cp)

    def test_predicate_switching_verifies_implicit_dep(self):
        m, ddg, cp, runner = traced(OMISSION, inputs={0: [7]})
        res = find_implicit_dependences(runner, ddg, out_pcs(cp)[0])
        assert res.verified, "the omitted branch must be implicated"
        assert any(cp.line_of(d.branch_pc) == 5 for d in res.verified)
        cand_lines = {cp.line_of(pc) for pc in res.candidate_pcs}
        assert 5 in cand_lines
        assert res.verifications <= 5  # demand-driven: few re-executions

    def test_innocent_predicates_not_implicated(self):
        src = (
            "global result;\n"
            "fn main() {\n"
            "    var x = in(0);\n"
            "    var unused = 0;\n"
            "    if (x > 3) {\n"  # affects only 'unused'
            "        unused = 1;\n"
            "    }\n"
            "    result = x + 1;\n"
            "    out(result, 1);\n"
            "}\n"
        )
        m, ddg, cp, runner = traced(src, inputs={0: [7]})
        res = find_implicit_dependences(runner, ddg, out_pcs(cp)[0])
        assert not any(cp.line_of(d.branch_pc) == 5 for d in res.verified)

    def test_switcher_fires_exactly_once(self):
        cp = compile_source("fn main() { var i = 3; while (i > 0) { i = i - 1; } out(i, 1); }")
        runner = ProgramRunner(cp.program)
        _, tracer, _ = runner.run_traced(OntracConfig())
        ddg = tracer.dependence_graph()
        branch_pc = next(
            pc for pc in range(len(cp.program.code))
            if cp.program.code[pc].spec.is_branch
        )
        switcher = PredicateSwitcher(branch_pc, occurrence=1)
        m, res = runner.run(intervention=switcher)
        assert switcher.fired

    def test_criterion_recorder_captures_out_value(self):
        cp = compile_source("fn main() { out(41 + 1, 1); }")
        pc = out_pcs(type("CP", (), {"program": cp.program})(),) if False else None
        out_pc = [
            p for p in range(len(cp.program.code))
            if cp.program.code[p].opcode is Opcode.OUT
        ][0]
        rec = CriterionRecorder(out_pc)
        runner = ProgramRunner(cp.program)
        runner.run(hooks=(rec,))
        assert rec.value == 42


class TestRelevant:
    def test_potential_branch_detection(self):
        cp = compile_source(OMISSION)
        potential = branches_with_potential_stores(cp.program)
        lines = {cp.line_of(pc) for pc in potential}
        assert 5 in lines

    def test_branch_without_stores_not_potential(self):
        src = (
            "fn main() {\n"
            "    var x = in(0);\n"
            "    var y = 0;\n"
            "    if (x) {\n"
            "        out(1, 1);\n"  # no store in the region
            "    }\n"
            "    out(y, 1);\n"
            "}\n"
        )
        cp = compile_source(src)
        potential = branches_with_potential_stores(cp.program)
        assert {cp.line_of(pc) for pc in potential} in (set(), {4}) or True
        # the if-region contains only an out(); it must not be potential
        assert not any(cp.line_of(pc) == 4 for pc in potential)

    def test_relevant_slice_superset_and_larger(self):
        m, ddg, cp, _ = traced(OMISSION, inputs={0: [7]})
        crit = ddg.last_instance_of_pc(out_pcs(cp)[0])
        base = backward_slice(ddg, crit)
        rel = relevant_slice(ddg, cp.program, crit)
        assert base.seqs <= rel.seqs
        assert len(rel) > len(base.seqs)
        assert rel.potential_branches

    def test_relevant_slice_catches_omission_conservatively(self):
        m, ddg, cp, _ = traced(OMISSION, inputs={0: [7]})
        crit = ddg.last_instance_of_pc(out_pcs(cp)[0])
        rel = relevant_slice(ddg, cp.program, crit)
        assert 5 in {cp.line_of(pc) for pc in rel.pcs}


RACY = """
global cell;
fn writer(v) { cell = v; }
fn main() {
    cell = 1;
    var t = spawn(writer, 2);
    var x = cell;
    join(t);
    out(x, 1);
}
"""


class TestMultithreaded:
    def test_cross_thread_dependences_found(self):
        m, ddg, cp, _ = traced(
            RACY, config=OntracConfig(record_war_waw=True)
        )
        cross = cross_thread_dependences(ddg)
        assert cross
        kinds = {c.kind for c in cross}
        assert kinds & {DepKind.MEM, DepKind.WAR, DepKind.WAW}

    def test_multithreaded_slice_includes_other_thread(self):
        src = """
        global cell;
        fn writer(v) { cell = v * 3; }
        fn main() {
            var t = spawn(writer, 14);
            join(t);
            out(cell, 1);
        }
        """
        m, ddg, cp, _ = traced(src, config=OntracConfig(record_war_waw=True))
        out_pc = out_pcs(cp, function="main")[0]
        sl = multithreaded_backward_slice(ddg, ddg.last_instance_of_pc(out_pc))
        tids = {ddg.nodes[s].tid for s in sl.seqs}
        assert tids == {0, 1}
