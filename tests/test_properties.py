"""Property-based tests (hypothesis) on core data structures and
invariants: roBDD set algebra, trace buffer accounting, VM determinism,
DDG/slicing monotonicity, scheduler reproducibility."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.apps.lineage import BDDManager
from repro.dift import BoolTaintPolicy, DIFTEngine, ShadowState, SinkRule
from repro.fastpath import FastPathConfig
from repro.lang import compile_source
from repro.ontrac import (
    DepKind,
    DepRecord,
    OntracConfig,
    PackedDDG,
    PackedTraceBuffer,
    TraceBuffer,
    build_ddg,
)
from repro.runner import ProgramRunner
from repro.slicing import backward_slice, forward_slice
from repro.util.rng import DeterministicRng
from repro.vm import Machine, RandomScheduler
from repro.workloads import GeneratorConfig, generate

BITS = 8
small_sets = st.sets(st.integers(min_value=0, max_value=(1 << BITS) - 1), max_size=24)


# --- roBDD algebra ----------------------------------------------------------
class TestBDDProperties:
    @given(a=small_sets, b=small_sets)
    @settings(max_examples=60, deadline=None)
    def test_union_matches_set_union(self, a, b):
        mgr = BDDManager(bits=BITS)
        na, nb = mgr.from_iterable(a), mgr.from_iterable(b)
        assert mgr.to_set(mgr.union(na, nb)) == a | b

    @given(a=small_sets, b=small_sets)
    @settings(max_examples=60, deadline=None)
    def test_intersect_matches_set_intersection(self, a, b):
        mgr = BDDManager(bits=BITS)
        na, nb = mgr.from_iterable(a), mgr.from_iterable(b)
        assert mgr.to_set(mgr.intersect(na, nb)) == a & b

    @given(a=small_sets)
    @settings(max_examples=60, deadline=None)
    def test_count_matches_cardinality(self, a):
        mgr = BDDManager(bits=BITS)
        assert mgr.count(mgr.from_iterable(a)) == len(a)

    @given(a=small_sets, probe=st.integers(min_value=0, max_value=(1 << BITS) - 1))
    @settings(max_examples=60, deadline=None)
    def test_contains_matches_membership(self, a, probe):
        mgr = BDDManager(bits=BITS)
        assert mgr.contains(mgr.from_iterable(a), probe) == (probe in a)

    @given(a=small_sets, b=small_sets)
    @settings(max_examples=40, deadline=None)
    def test_canonicity(self, a, b):
        # Equal sets built differently intern to the same node.
        mgr = BDDManager(bits=BITS)
        na = mgr.from_iterable(sorted(a))
        nb = mgr.from_iterable(sorted(a, reverse=True))
        assert na == nb
        # union is commutative at the node level
        x, y = mgr.from_iterable(a), mgr.from_iterable(b)
        assert mgr.union(x, y) == mgr.union(y, x)

    @given(a=small_sets, b=small_sets, c=small_sets)
    @settings(max_examples=30, deadline=None)
    def test_union_associative(self, a, b, c):
        mgr = BDDManager(bits=BITS)
        na, nb, nc = (mgr.from_iterable(s) for s in (a, b, c))
        assert mgr.union(mgr.union(na, nb), nc) == mgr.union(na, mgr.union(nb, nc))


# --- trace buffer ---------------------------------------------------------------
record_strategy = st.builds(
    DepRecord,
    kind=st.sampled_from([DepKind.REG, DepKind.MEM, DepKind.BRANCH, DepKind.IREG]),
    consumer_seq=st.integers(min_value=0, max_value=10_000),
    consumer_pc=st.integers(min_value=0, max_value=100),
    producer_seq=st.integers(min_value=0, max_value=10_000),
    producer_pc=st.integers(min_value=0, max_value=100),
)


class TestBufferProperties:
    @given(records=st.lists(record_strategy, max_size=200),
           capacity=st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, records, capacity):
        buf = TraceBuffer(capacity_bytes=capacity)
        for rec in records:
            buf.append(rec)
            assert buf.current_bytes <= capacity or all(
                r.bytes == 0 for r in buf.records
            )

    @given(records=st.lists(record_strategy, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_byte_accounting_consistent(self, records):
        buf = TraceBuffer(capacity_bytes=10_000_000)
        for rec in records:
            buf.append(rec)
        assert buf.current_bytes == sum(r.bytes for r in buf.records)
        assert buf.stats.appended == len(records)
        assert buf.stats.appended_bytes == sum(r.bytes for r in records)

    @given(records=st.lists(record_strategy, min_size=1, max_size=100),
           capacity=st.integers(min_value=6, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_eviction_is_oldest_first(self, records, capacity):
        buf = TraceBuffer(capacity_bytes=capacity)
        for rec in records:
            buf.append(rec)
        survivors = list(buf.records)
        assert survivors == records[len(records) - len(survivors):]


# --- DDG / slicing ------------------------------------------------------------------
class TestSliceProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_backward_slice_closed_under_producers(self, seed):
        rng = DeterministicRng(seed)
        records = []
        for consumer in range(2, 60):
            for _ in range(rng.randint(0, 2)):
                producer = rng.randint(0, consumer - 1)
                records.append(
                    DepRecord(DepKind.REG, consumer, consumer % 7, producer, producer % 7)
                )
        ddg = build_ddg(records)
        if not ddg.nodes:
            return
        criterion = max(ddg.nodes)
        sl = backward_slice(ddg, criterion)
        for seq in sl.seqs:
            for producer, kind in ddg.backward.get(seq, []):
                assert producer in sl.seqs

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_forward_backward_duality(self, seed):
        rng = DeterministicRng(seed)
        records = []
        for consumer in range(2, 40):
            producer = rng.randint(0, consumer - 1)
            records.append(DepRecord(DepKind.REG, consumer, 0, producer, 0))
        ddg = build_ddg(records)
        nodes = sorted(ddg.nodes)
        a, b = nodes[0], nodes[-1]
        # b in forward(a) iff a in backward(b)
        assert (b in forward_slice(ddg, a).seqs) == (a in backward_slice(ddg, b).seqs)


# --- packed store vs legacy slicer equivalence --------------------------------------
class TestPackedSliceEquivalence:
    """100 seeded random dependence streams through both stores; random
    criteria and random kinds sets must slice identically under the
    packed indexed engine and the legacy dict-walking BFS — including
    truncation under small, evicting windows."""

    EDGE_KINDS = [DepKind.REG, DepKind.MEM, DepKind.IREG, DepKind.IMEM,
                  DepKind.CONTROL, DepKind.SUMMARY, DepKind.WAR, DepKind.WAW]

    def test_hundred_seed_random_slices(self):
        for seed in range(100):
            rng = DeterministicRng(seed)
            capacity = (512, 4096, 1 << 20)[seed % 3]
            legacy = TraceBuffer(capacity_bytes=capacity)
            packed = PackedTraceBuffer(capacity_bytes=capacity)
            n = 40 + (seed % 4) * 40
            for consumer in range(n):
                recs = [DepRecord(DepKind.INSTR, consumer, consumer % 13,
                                  tid=consumer % 3)]
                if consumer:
                    for _ in range(rng.randint(0, 3)):
                        producer = rng.randint(0, consumer - 1)
                        kind = self.EDGE_KINDS[rng.randint(0, len(self.EDGE_KINDS) - 1)]
                        recs.append(
                            DepRecord(kind, consumer, consumer % 13,
                                      producer, producer % 13, tid=consumer % 3)
                        )
                for rec in recs:
                    legacy.append(rec)
                    packed.append(rec)
            ref = build_ddg(legacy, complete=legacy.stats.evicted == 0)
            ddg = PackedDDG(packed)
            assert ddg.indexable
            nodes = sorted(ref.nodes)
            for _ in range(3):
                crit = nodes[rng.randint(0, len(nodes) - 1)]
                kinds = frozenset(
                    k for k in self.EDGE_KINDS if rng.randint(0, 1)
                ) or frozenset({DepKind.REG})
                a = backward_slice(ddg, crit, kinds)
                b = backward_slice(ref, crit, kinds)
                assert (a.seqs, a.pcs, a.truncated) == (b.seqs, b.pcs, b.truncated), \
                    (seed, crit, sorted(k.value for k in kinds))
                af = forward_slice(ddg, crit, kinds)
                bf = forward_slice(ref, crit, kinds)
                assert (af.seqs, af.pcs, af.truncated) == (bf.seqs, bf.pcs, bf.truncated), \
                    (seed, crit, sorted(k.value for k in kinds))


# --- VM determinism -----------------------------------------------------------------
SUM_SRC = """
fn main() {
    var n = in(0);
    var s = 0;
    var i = 0;
    while (i < n) {
        s = s + in(0);
        i = i + 1;
    }
    out(s, 1);
}
"""

THREADED_SRC = """
global total;
fn worker(n) {
    var i = 0;
    while (i < n) {
        lock(1);
        total = total + 1;
        unlock(1);
        i = i + 1;
    }
}
fn main() {
    var a = spawn(worker, 10);
    var b = spawn(worker, 10);
    join(a);
    join(b);
    out(total, 1);
}
"""


class TestVMProperties:
    @given(values=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_sum_program_computes_sum(self, values):
        cp = compile_source(SUM_SRC)
        machine = Machine(cp.program)
        machine.io.provide(0, [len(values)] + values)
        machine.run()
        assert machine.io.output(1) == [sum(values)]

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_locked_updates_schedule_invariant(self, seed):
        cp = compile_source(THREADED_SRC)
        machine = Machine(
            cp.program, scheduler=RandomScheduler(seed=seed, min_quantum=1, max_quantum=9)
        )
        machine.run()
        assert machine.io.output(1) == [20]

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_bit_identical(self, seed):
        def run_once():
            cp = compile_source(THREADED_SRC)
            machine = Machine(
                cp.program,
                scheduler=RandomScheduler(seed=seed, min_quantum=1, max_quantum=9),
            )
            result = machine.run()
            return result.schedule, result.instructions, result.cycles.base

        assert run_once() == run_once()

    @given(values=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_tracing_does_not_change_output(self, values):
        cp = compile_source(SUM_SRC)
        runner = ProgramRunner(cp.program, inputs={0: [len(values)] + values})
        plain, _ = runner.run()
        traced_machine, _, _ = runner.run_traced(OntracConfig())
        assert plain.io.output(1) == traced_machine.io.output(1)


# --- fast path --------------------------------------------------------------------
def _final_state(machine, result):
    return (
        result.status,
        result.instructions,
        result.cycles.base,
        result.cycles.overhead,
        tuple(result.schedule),
        tuple((t.tid, tuple(t.regs)) for t in machine.threads),
        tuple(sorted(machine.memory.cells.items())),
        tuple(sorted((ch, tuple(v)) for ch, v in machine.io.outputs.items())),
    )


class TestFastPathDifferentialFuzz:
    """200 exhaustively-seeded generated programs through both paths.

    Deliberately a seed sweep rather than a hypothesis strategy: the
    generator is its own fuzzer, and fixed seeds make a mismatch
    reproducible by number.
    """

    N_SEEDS = 200

    def test_generated_programs_bit_identical(self):
        mismatched = []
        for seed in range(self.N_SEEDS):
            g = generate(seed, GeneratorConfig(use_inputs=seed % 2 == 0))
            with fastpath.overridden(FastPathConfig.all_on()):
                fast = _final_state(*g.runner().run())
            with fastpath.overridden(FastPathConfig.all_off()):
                slow = _final_state(*g.runner().run())
            if fast != slow:
                mismatched.append(seed)
        assert mismatched == []


class TestKernelDifferentialFuzz:
    """200 seeded generated programs with DIFT attached: the array
    propagation kernel against the per-event reference, observable for
    observable (alerts, stats, shadow taint sets, peak, cycles)."""

    N_SEEDS = 200

    @staticmethod
    def _dift_state(kernel, g):
        runner = g.runner()
        m = runner.machine()
        eng = DIFTEngine(
            BoolTaintPolicy(),
            sinks=[SinkRule(kind="out", action="record")],
            kernel=kernel,
        ).attach(m)
        res = m.run(max_instructions=runner.max_instructions)
        return (
            str(eng.alerts),
            eng.stats,
            dict(eng.shadow.regs),
            eng.shadow.mem_items(),
            eng.shadow.peak_locations,
            res.status,
            res.instructions,
            res.cycles.overhead,
        )

    @pytest.mark.skipif(not fastpath.numpy_available(), reason="requires numpy")
    def test_generated_programs_propagate_identically(self):
        mismatched = []
        for seed in range(self.N_SEEDS):
            g = generate(seed, GeneratorConfig(use_inputs=seed % 2 == 0))
            if self._dift_state("array", g) != self._dift_state("reference", g):
                mismatched.append(seed)
        assert mismatched == []


# --- shadow state backends ----------------------------------------------------------
shadow_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear", "clear_range"]),
        st.integers(min_value=0, max_value=12_000),
        st.integers(min_value=0, max_value=5_000),
    ),
    max_size=60,
)


def _apply(shadow, ops):
    for op, addr, arg in ops:
        if op == "set":
            shadow.set_cell(addr, True)
        elif op == "clear":
            shadow.set_cell(addr, None)
        else:
            shadow.clear_range(addr, arg)


class TestShadowBackendProperties:
    @given(ops=shadow_ops)
    @settings(max_examples=60, deadline=None)
    def test_paged_matches_dict_backend(self, ops):
        paged = ShadowState(BoolTaintPolicy(), paged=True)
        plain = ShadowState(BoolTaintPolicy(), paged=False)
        _apply(paged, ops)
        _apply(plain, ops)
        assert sorted(paged.mem_items().items()) == sorted(plain.mem_items().items())
        assert paged.mem == plain.mem
        assert paged.tainted_cells == plain.tainted_cells
        assert paged.shadow_bytes == plain.shadow_bytes

    @pytest.mark.skipif(not fastpath.numpy_available(), reason="requires numpy")
    @given(ops=shadow_ops)
    @settings(max_examples=60, deadline=None)
    def test_array_store_matches_dict_backend(self, ops):
        arr = ShadowState(BoolTaintPolicy(), array=True)
        plain = ShadowState(BoolTaintPolicy(), paged=False)
        _apply(arr, ops)
        _apply(plain, ops)
        assert sorted(arr.mem_items().items()) == sorted(plain.mem_items().items())
        assert arr.tainted_cells == plain.tainted_cells
        # The columnar export the array kernel probes agrees too.
        assert list(arr.mem.tainted_addresses()) == sorted(plain.mem_items())

    @given(ops=shadow_ops, more=shadow_ops, paged=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_snapshot_round_trip_is_isolated(self, ops, more, paged):
        shadow = ShadowState(BoolTaintPolicy(), paged=paged)
        _apply(shadow, ops)
        before = sorted(shadow.mem_items().items())
        snap = shadow.snapshot()
        assert sorted(snap.mem_items().items()) == before
        assert snap.tainted_cells == shadow.tainted_cells
        # Mutating the original never leaks into the snapshot (or back).
        _apply(shadow, more)
        assert sorted(snap.mem_items().items()) == before
        _apply(snap, more)
        assert sorted(snap.mem_items().items()) == sorted(shadow.mem_items().items())


# --- deterministic rng ------------------------------------------------------------
class TestRngProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31),
           lo=st.integers(min_value=-100, max_value=100),
           span=st.integers(min_value=0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_randint_in_range(self, seed, lo, span):
        rng = DeterministicRng(seed)
        for _ in range(20):
            value = rng.randint(lo, lo + span)
            assert lo <= value <= lo + span

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_stream(self, seed):
        a, b = DeterministicRng(seed), DeterministicRng(seed)
        assert [a.next_u32() for _ in range(10)] == [b.next_u32() for _ in range(10)]

    @given(seed=st.integers(min_value=0, max_value=2**31),
           items=st.lists(st.integers(), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_shuffle_is_permutation(self, seed, items):
        shuffled = DeterministicRng(seed).shuffle(list(items))
        assert sorted(shuffled) == sorted(items)
