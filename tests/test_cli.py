"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_inputs, main


@pytest.fixture
def demo(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(
        "fn main() {\n"
        "    var a = in(0);\n"
        "    var b = in(0);\n"
        "    var bad = a + a;\n"
        "    out(a + b, 1);\n"
        "    out(bad, 1);\n"
        "}\n"
    )
    return str(path)


@pytest.fixture
def vulnerable(tmp_path):
    path = tmp_path / "vuln.mc"
    path.write_text(
        "fn safe(x) { out(1, 1); }\n"
        "fn admin(x) { out(2, 1); }\n"
        "fn main() {\n"
        "    var fp = alloc(1);\n"
        "    fp[0] = in(0);\n"
        "    icall(fp[0], 0);\n"
        "}\n"
    )
    return str(path)


class TestParseInputs:
    def test_single_channel(self):
        assert _parse_inputs(["0=1,2,3"]) == {0: [1, 2, 3]}

    def test_multiple_and_repeated(self):
        assert _parse_inputs(["0=1", "3=9,8", "0=2"]) == {0: [1, 2], 3: [9, 8]}

    def test_negative_values(self):
        assert _parse_inputs(["0=-1,-2"]) == {0: [-1, -2]}

    def test_empty(self):
        assert _parse_inputs([]) == {}
        assert _parse_inputs(None) == {}


class TestCommands:
    def test_run(self, demo, capsys):
        code = main(["run", demo, "--input", "0=3,4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: exited" in out
        assert "out[1]: [7, 6]" in out

    def test_run_failure_exit_code(self, tmp_path, capsys):
        path = tmp_path / "f.mc"
        path.write_text("fn main() { fail(1); }\n")
        assert main(["run", str(path)]) == 1
        assert "failure" in capsys.readouterr().out

    def test_disasm(self, demo, capsys):
        assert main(["disasm", demo]) == 0
        out = capsys.readouterr().out
        assert ".func main" in out and "icall" not in out

    def test_trace(self, demo, capsys):
        assert main(["trace", demo, "--input", "0=3,4"]) == 0
        out = capsys.readouterr().out
        assert "B/instr" in out
        assert "DDG:" in out

    def test_trace_naive_stores_more(self, demo, capsys):
        main(["trace", demo, "--input", "0=3,4"])
        optimized = capsys.readouterr().out
        main(["trace", demo, "--input", "0=3,4", "--naive"])
        naive = capsys.readouterr().out

        def rate(text):
            for line in text.splitlines():
                if "B/instr" in line:
                    return float(line.split("(")[1].split()[0])
            raise AssertionError(text)

        assert rate(naive) > rate(optimized)

    def test_slice(self, demo, capsys):
        assert main(["slice", demo, "--input", "0=3,4", "--line", "6"]) == 0
        out = capsys.readouterr().out
        assert "line   4" in out  # the producer of 'bad'
        assert "line   3" not in out  # unrelated input b

    def test_slice_unknown_line(self, demo, capsys):
        assert main(["slice", demo, "--input", "0=3,4", "--line", "99"]) == 2

    def test_attack_clean(self, demo, capsys):
        # no indirect calls, no tainted sinks: the monitor stays quiet
        assert main(["attack", demo, "--input", "0=3,4"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_attack_flags_input_derived_pointer_even_when_benign(self, vulnerable, capsys):
        # the pointer is ALWAYS input-derived in this program: classic
        # DIFT flags it regardless of the value — faithful semantics
        assert main(["attack", vulnerable, "--input", "0=0"]) == 1

    def test_attack_detected_with_root_cause(self, vulnerable, capsys):
        assert main(["attack", vulnerable, "--input", "0=1"]) == 1
        out = capsys.readouterr().out
        assert "ATTACK DETECTED" in out
        assert "root cause: line 5" in out  # fp[0] = in(0)

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.mc"
        path.write_text("fn main() { x = ; }\n")
        assert main(["run", str(path)]) == 2
        assert "compile error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.mc"]) == 2

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent.mc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_slice_missing_file(self, capsys):
        assert main(["slice", "/nonexistent.mc", "--line", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "E99"]) == 2

    def test_experiments_single(self, capsys):
        assert main(["experiments", "E7"]) == 0
        out = capsys.readouterr().out
        assert "E7" in out and "verifications" in out


class TestErrorHandling:
    """Bad arguments exit non-zero with a one-line message, never a traceback."""

    def test_bad_input_value_is_one_line_error(self, demo, capsys):
        assert main(["run", demo, "--input", "0=abc"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_input_channel_is_one_line_error(self, demo, capsys):
        assert main(["trace", demo, "--input", "ch=1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unknown_experiment_is_one_line_error(self, capsys):
        assert main(["experiments", "E1", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err == "error: unknown experiment bogus\n"

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2


class TestServiceVerbs:
    def test_serve_needs_exactly_one_transport(self, capsys):
        assert main(["serve"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["serve", "--socket", "/tmp/x.sock", "--port", "1"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_submit_needs_exactly_one_program(self, capsys):
        assert main(["submit", "trace", "--connect", "/tmp/x.sock"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_submit_rejects_bad_params_json(self, capsys):
        code = main(["submit", "trace", "--connect", "/tmp/x.sock",
                     "--workload", "matmul", "--params", "{not json"])
        assert code == 2
        assert "--params" in capsys.readouterr().err

    def test_submit_connect_failure_is_one_line_error(self, tmp_path, capsys):
        code = main(["submit", "health",
                     "--connect", str(tmp_path / "nothing.sock")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot connect")

    def test_serve_submit_roundtrip(self, tmp_path, capsys):
        """In-process daemon + CLI submit: the CI smoke job's core path."""
        import json

        from repro.service import AnalysisServer, ServiceConfig

        config = ServiceConfig(socket_path=str(tmp_path / "cli.sock"), workers=1)
        with AnalysisServer(config):
            code = main(["submit", "trace", "--connect", config.address(),
                         "--workload", "matmul", "--fidelity", "log"])
            out = capsys.readouterr().out
        assert code == 0
        response = json.loads(out)
        assert response["status"] == "ok"
        assert response["result"]["fidelity"] == "log"


class TestEntryPoint:
    def test_console_script_points_at_cli_main(self):
        import tomllib
        from pathlib import Path

        import repro.cli

        pyproject = Path(repro.cli.__file__).parents[2] / "pyproject.toml"
        data = tomllib.loads(pyproject.read_text())
        target = data["project"]["scripts"]["repro"]
        module_name, _, attr = target.partition(":")
        assert module_name == "repro.cli"
        assert getattr(repro.cli, attr) is main

    def test_python_m_repro_smoke(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(main.__code__.co_filename).parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0
        for verb in ("run", "trace", "slice", "attack", "serve", "submit"):
            assert verb in proc.stdout


class TestTelemetryOutputs:
    def test_run_report_matches_stdout_totals(self, demo, tmp_path, capsys):
        import json

        from repro.telemetry import validate_report

        report_path = tmp_path / "rep.json"
        assert main(["run", demo, "--input", "0=3,4", "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        data = json.loads(report_path.read_text())
        validate_report(data)
        assert f"instructions: {data['instructions']}" in out
        assert f"cycles: {data['total_cycles']}" in out
        assert data["tool"] == "run"
        assert data["metrics"]["counters"]["vm.instructions"] == data["instructions"]

    def test_trace_writes_chrome_trace(self, demo, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert main(["trace", demo, "--input", "0=3,4", "--trace", str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        validate_chrome_trace(trace)
        names = [e["name"] for e in trace["traceEvents"]]
        assert "vm.run" in names

    def test_attack_report_counts_alerts(self, vulnerable, tmp_path, capsys):
        import json

        report_path = tmp_path / "rep.json"
        assert main(
            ["attack", vulnerable, "--input", "0=1", "--report", str(report_path)]
        ) == 1
        data = json.loads(report_path.read_text())
        assert data["extra"]["alerts"] == 1
        assert data["metrics"]["counters"]["dift.alerts"] == 1

    def test_experiments_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "exp.json"
        assert main(["experiments", "E7", "--report", str(report_path)]) == 0
        data = json.loads(report_path.read_text())
        assert data[0]["experiment"] == "E7"
        assert data[0]["metrics"]["slicing.verification_runs"] >= 1
