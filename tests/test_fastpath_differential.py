"""Differential proof that the fast path is implementation-only.

Every workload family in :mod:`repro.workloads` runs twice — all
fast-path flags forced on, then all forced off — and every observable
must be bit-identical: the RunResult (status, instruction count,
modeled base and overhead cycles, failure info, schedule), the final
VM state (per-thread registers, memory cells, io streams), the full
ONTRAC record stream with its byte accounting and stats tables, the
dependence graph built from it, and DIFT taint state.  The fast path
is allowed to be faster; it is never allowed to be different.
"""

import pytest

from repro import fastpath
from repro.dift import BoolTaintPolicy, DIFTEngine, SinkRule
from repro.fastpath import FastPathConfig
from repro.ontrac import OntracConfig
from repro.tm import Resolution, TMConfig, TransactionalMonitor
from repro.workloads import (
    GeneratorConfig,
    build_server,
    call_heavy,
    corpus,
    generate,
    lineage_suite,
    race_kernels,
    suite,
)
from repro.workloads.splash_like import tm_kernels

ON = FastPathConfig.all_on()
OFF = FastPathConfig.all_off()

SPEC = suite()
# Small call-heavy trio: under all-on flags the DIFT side runs through
# the function-summary kernel (learn / hit / variant / fallback paths).
CALLS = [
    call_heavy(0, iterations=12, stmts=8, name="calls-p0"),
    call_heavy(10, iterations=12, stmts=8, name="calls-p10"),
    call_heavy(2, iterations=12, stmts=8, name="calls-p50"),
]
BUGGY = corpus()
RACES = race_kernels()
LINEAGE = lineage_suite()
GEN_SEEDS = list(range(10))

_name = lambda w: w.name  # noqa: E731


# --- canonical observable state --------------------------------------------
def _vm_state(m, res):
    """Everything observable about one finished run, as comparable data."""
    failure = res.failure
    return (
        res.status,
        res.instructions,
        res.cycles.base,
        res.cycles.overhead,
        tuple(res.schedule),
        None
        if failure is None
        else (failure.kind, failure.tid, failure.pc, failure.seq, failure.message),
        tuple(
            (t.tid, t.pc, tuple(t.regs), t.status, t.result, t.instructions)
            for t in m.threads
        ),
        tuple(sorted(m.memory.cells.items())),
        tuple(sorted((ch, tuple(vals)) for ch, vals in m.io.outputs.items())),
    )


def _ddg_state(ddg):
    nodes = tuple(sorted((n.seq, n.pc, n.tid) for n in ddg.nodes.values()))
    edges = tuple(
        sorted(
            (consumer, producer, kind.value)
            for consumer, deps in ddg.backward.items()
            for producer, kind in deps
        )
    )
    return nodes, edges, ddg.complete


def _plain_state(runner):
    m, res = runner.run()
    return _vm_state(m, res)


def _traced_state(runner, config=None):
    m, tracer, res = runner.run_traced(config or OntracConfig())
    stats = tracer.stats
    records = tuple(
        (r.kind, r.consumer_seq, r.consumer_pc, r.producer_seq, r.producer_pc, r.tid, r.bytes)
        for r in tracer.buffer.records
    )
    return (
        _vm_state(m, res),
        records,
        stats.instructions,
        dict(stats.stored),
        dict(stats.skipped),
        stats.stored_bytes,
        _ddg_state(tracer.dependence_graph()),
    )


def _dift_state(runner):
    m = runner.machine()
    engine = DIFTEngine(
        BoolTaintPolicy(), sinks=[SinkRule(kind="out", action="record")]
    ).attach(m)
    res = m.run(max_instructions=runner.max_instructions)
    shadow = engine.shadow
    return (
        _vm_state(m, res),
        tuple(sorted(shadow.mem_items().items())),
        tuple(sorted(shadow.regs.items())),
        tuple(str(alert) for alert in engine.alerts),
        (engine.stats.instructions, engine.stats.tainted_instructions,
         engine.stats.sources, engine.stats.sink_checks),
    )


def assert_differential(make_runner, state_fn):
    """Run fresh runners under all-on and all-off flags; states must match."""
    with fastpath.overridden(ON):
        fast = state_fn(make_runner())
    with fastpath.overridden(OFF):
        slow = state_fn(make_runner())
    assert fast == slow


# --- SPEC-like suite --------------------------------------------------------
@pytest.mark.parametrize("w", SPEC, ids=_name)
def test_spec_plain(w):
    assert_differential(w.runner, _plain_state)


@pytest.mark.parametrize("w", SPEC, ids=_name)
def test_spec_traced(w):
    assert_differential(w.runner, _traced_state)


@pytest.mark.parametrize("w", SPEC, ids=_name)
def test_spec_traced_naive(w):
    # Naive mode exercises the INSTR-record path the optimized config skips.
    assert_differential(
        w.runner, lambda r: _traced_state(r, OntracConfig.unoptimized())
    )


@pytest.mark.parametrize("w", SPEC, ids=_name)
def test_spec_dift(w):
    assert_differential(w.runner, _dift_state)


# --- call-heavy trio (function-summary coverage) ----------------------------
@pytest.mark.parametrize("w", CALLS, ids=_name)
def test_calls_plain(w):
    assert_differential(w.runner, _plain_state)


@pytest.mark.parametrize("w", CALLS, ids=_name)
def test_calls_dift(w):
    assert_differential(w.runner, _dift_state)


# --- seeded-bug corpus ------------------------------------------------------
@pytest.mark.parametrize("b", BUGGY, ids=_name)
def test_buggy_failing(b):
    assert_differential(lambda: b.runner(failing=True), _plain_state)


@pytest.mark.parametrize("b", BUGGY, ids=_name)
def test_buggy_passing(b):
    assert_differential(lambda: b.runner(failing=False), _plain_state)


@pytest.mark.parametrize("b", BUGGY, ids=_name)
def test_buggy_failing_traced(b):
    assert_differential(lambda: b.runner(failing=True), _traced_state)


# --- SPLASH-like race kernels ----------------------------------------------
@pytest.mark.parametrize("k", RACES, ids=_name)
def test_race_kernel_plain(k):
    assert_differential(k.runner, _plain_state)


@pytest.mark.parametrize("k", RACES, ids=_name)
def test_race_kernel_traced(k):
    # WAR/WAW records are the multithreaded-slicing extension's path.
    assert_differential(
        k.runner, lambda r: _traced_state(r, OntracConfig(record_war_waw=True))
    )


# --- scientific lineage workloads ------------------------------------------
@pytest.mark.parametrize("w", LINEAGE, ids=_name)
def test_lineage_plain(w):
    assert_differential(w.runner, _plain_state)


@pytest.mark.parametrize("w", LINEAGE, ids=_name)
def test_lineage_dift(w):
    assert_differential(w.runner, _dift_state)


# --- server scenario --------------------------------------------------------
def _server_runner():
    scenario = build_server(workers=2, requests=60, seed=7)
    return scenario.runner()


def test_server_plain():
    assert_differential(_server_runner, _plain_state)


def test_server_traced():
    assert_differential(_server_runner, _traced_state)


def test_server_dift():
    assert_differential(_server_runner, _dift_state)


# --- generated programs -----------------------------------------------------
@pytest.mark.parametrize("seed", GEN_SEEDS)
def test_generated_plain(seed):
    g = generate(seed, GeneratorConfig(use_inputs=True))
    assert_differential(g.runner, _plain_state)


@pytest.mark.parametrize("seed", GEN_SEEDS)
def test_generated_traced(seed):
    g = generate(seed, GeneratorConfig(use_inputs=True))
    assert_differential(g.runner, _traced_state)


# --- TM kernels -------------------------------------------------------------
# ParallelWorkloads are thread-op models driven by the TM monitor, not
# MiniC programs, so no fast-path code runs under them — included so the
# flag genuinely covers every workload family in repro.workloads.
@pytest.mark.parametrize("k", tm_kernels(), ids=_name)
def test_tm_kernel(k):
    def state():
        res = TransactionalMonitor(
            k, TMConfig(resolution=Resolution.SYNC_AWARE)
        ).run()
        return (res.completed, res.livelock, res.commits, res.aborts,
                res.monitored_cycles)

    with fastpath.overridden(ON):
        fast = state()
    with fastpath.overridden(OFF):
        slow = state()
    assert fast == slow


# --- out-of-process parallel helper -----------------------------------------
# Three-way equivalence: the inline engine, the simulated helper core
# (HelperCoreDIFT), and the real worker process (ParallelHelperDIFT)
# must produce identical taint observables on every run.  Guest-side
# cycle accounting is excluded on purpose — the simulated helper bills
# channel costs to the machine while the real worker bills nothing —
# but everything DIFT *detects* has to match bit for bit.
from repro.multicore import HelperCoreDIFT, ParallelHelperDIFT  # noqa: E402


def _guest_obs(m, res):
    return (
        res.status,
        res.instructions,
        tuple(res.schedule),
        tuple(
            (t.tid, t.pc, tuple(t.regs), t.status, t.result, t.instructions)
            for t in m.threads
        ),
        tuple(sorted(m.memory.cells.items())),
        tuple(sorted((ch, tuple(vals)) for ch, vals in m.io.outputs.items())),
    )


def _taint_obs(tool):
    shadow = tool.shadow
    stats = tool.stats if hasattr(tool, "stats") else tool.engine.stats
    return (
        tuple(sorted(shadow.mem_items().items())),
        tuple(sorted(shadow.regs.items())),
        tuple(str(alert) for alert in tool.alerts),
        (stats.instructions, stats.tainted_instructions,
         stats.sources, stats.sink_checks),
    )


def _record_sinks():
    return [SinkRule(kind="out", action="record")]


def _three_way_states(make_runner):
    states = []
    for make_tool in (
        lambda m: DIFTEngine(BoolTaintPolicy(), sinks=_record_sinks()).attach(m),
        lambda m: HelperCoreDIFT(BoolTaintPolicy(), sinks=_record_sinks()).attach(m),
        lambda m: ParallelHelperDIFT(
            BoolTaintPolicy(), sinks=_record_sinks(), batch_size=64
        ).attach(m),
    ):
        runner = make_runner()
        m = runner.machine()
        tool = make_tool(m)
        res = m.run(max_instructions=runner.max_instructions)
        if isinstance(tool, ParallelHelperDIFT):
            tool.finish()
        states.append((_guest_obs(m, res), _taint_obs(tool)))
    return states


@pytest.mark.parametrize("w", SPEC, ids=_name)
def test_spec_dift_three_way(w):
    inline, simulated, parallel = _three_way_states(w.runner)
    assert inline == simulated
    assert inline == parallel


def test_server_dift_three_way():
    inline, simulated, parallel = _three_way_states(_server_runner)
    assert inline == simulated
    assert inline == parallel


# --- slice equality: packed indexed engine vs legacy BFS ---------------------
# The tests above prove the record stream and the materialized DDG are
# identical; these prove the *query layer* is too — every backward and
# forward slice must produce the same (seqs, pcs, truncated) under the
# packed store's indexed engine (flags on) as under the legacy
# dict-walking slicer (flags off).
from repro.slicing import (  # noqa: E402
    backward_slice,
    forward_slice,
    multithreaded_backward_slice,
)


def _slice_state(runner, config=None, n_criteria=8, multithreaded=False):
    _, tracer, _ = runner.run_traced(config or OntracConfig())
    ddg = tracer.dependence_graph()
    seqs = sorted(seq for seq, _ in ddg.node_items())
    crits = seqs[:: max(1, len(seqs) // n_criteria)][:n_criteria]
    states = []
    for crit in crits + crits:  # repeats drive the packed closure memo
        bs = (multithreaded_backward_slice if multithreaded else backward_slice)(
            ddg, crit
        )
        fs = forward_slice(ddg, crit)
        states.append(
            (crit, tuple(sorted(bs.seqs)), tuple(sorted(bs.pcs)), bs.truncated,
             tuple(sorted(fs.seqs)), tuple(sorted(fs.pcs)))
        )
    return tuple(states)


@pytest.mark.parametrize("w", SPEC, ids=_name)
def test_spec_slices(w):
    assert_differential(w.runner, _slice_state)


@pytest.mark.parametrize("w", SPEC, ids=_name)
def test_spec_slices_evicting_window(w):
    # A window small enough to evict exercises the truncation rule and
    # the packed store's head-offset eviction path on both sides.
    assert_differential(
        w.runner,
        lambda r: _slice_state(r, OntracConfig(buffer_bytes=4096)),
    )


@pytest.mark.parametrize("b", BUGGY, ids=_name)
def test_buggy_failing_slices(b):
    assert_differential(lambda: b.runner(failing=True), _slice_state)


@pytest.mark.parametrize("k", RACES, ids=_name)
def test_race_kernel_multithreaded_slices(k):
    assert_differential(
        k.runner,
        lambda r: _slice_state(
            r, OntracConfig(record_war_waw=True), multithreaded=True
        ),
    )


@pytest.mark.parametrize("w", LINEAGE, ids=_name)
def test_lineage_slices(w):
    assert_differential(w.runner, _slice_state)


def test_server_slices():
    assert_differential(_server_runner, _slice_state)


@pytest.mark.parametrize("seed", GEN_SEEDS)
def test_generated_slices(seed):
    g = generate(seed, GeneratorConfig(use_inputs=True))
    assert_differential(g.runner, _slice_state)
