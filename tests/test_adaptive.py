"""Unit tests for the adaptive-optimization extension (§4 future work)."""

from repro.apps.adaptive import AdaptiveOptimizer
from repro.lang import compile_source
from repro.runner import ProgramRunner
from repro.workloads.spec_like import matmul


def plan_for(src, inputs=None, hot_trace_threshold=8):
    cp = compile_source(src)
    runner = ProgramRunner(cp.program, inputs=inputs or {})
    return AdaptiveOptimizer(runner, hot_trace_threshold=hot_trace_threshold).plan(), cp


HOT_LOOP = """
global table[4];
fn main() {
    table[0] = 7;
    var s = 0;
    var i = 0;
    while (i < 50) {
        s = s + table[0] * 3;   // invariant load + invariant multiply source
        i = i + 1;
    }
    out(s, 1);
}
"""


class TestAdaptiveOptimizer:
    def test_hot_traces_found_in_loops(self):
        plan, _ = plan_for(HOT_LOOP)
        assert plan.hot_traces
        assert all(t.executions >= 8 for t in plan.hot_traces)

    def test_invariant_sites_found(self):
        plan, cp = plan_for(HOT_LOOP)
        lines = {cp.line_of(site.pc) for site in plan.invariants}
        assert 8 in lines  # the loop body computes from invariant table[0]

    def test_varying_sites_excluded(self):
        plan, cp = plan_for(HOT_LOOP)
        # `i = i + 1` produces a different value each iteration
        varying_line = 9
        assert varying_line not in {cp.line_of(site.pc) for site in plan.invariants}

    def test_redundant_load_cache_sites(self):
        plan, cp = plan_for(HOT_LOOP)
        assert plan.cache_sites
        best = max(plan.cache_sites, key=lambda s: s.hit_rate)
        assert best.hit_rate > 0.9  # table[0] never changes in the loop

    def test_estimated_speedup_positive_and_bounded(self):
        plan, _ = plan_for(HOT_LOOP)
        assert 1.0 < plan.estimated_speedup < 10.0
        assert plan.estimated_savings_cycles < plan.base_cycles

    def test_cold_code_not_specialized(self):
        plan, _ = plan_for("fn main() { out(1 + 2, 1); }")
        assert plan.invariants == []
        assert plan.cache_sites == []
        assert plan.estimated_speedup == 1.0

    def test_profiling_does_not_perturb_costs(self):
        cp = compile_source(HOT_LOOP)
        runner = ProgramRunner(cp.program)
        _, baseline = runner.run()
        plan = AdaptiveOptimizer(runner).plan()
        assert plan.base_cycles == baseline.cycles.base

    def test_works_on_spec_kernel(self):
        w = matmul(6)
        plan = AdaptiveOptimizer(w.runner(), hot_trace_threshold=16).plan()
        assert plan.total_instructions > 0
        assert plan.summary()

    def test_input_values_never_invariant(self):
        plan, cp = plan_for(
            "fn main() { var i = 0; while (i < 20) { var x = in(0); out(x, 1); i = i + 1; } }",
            inputs={0: [5] * 20},  # same value, but from input: must not fold
        )
        from repro.isa import Opcode

        in_pcs = {
            pc for pc in range(len(cp.program.code))
            if cp.program.code[pc].opcode is Opcode.IN
        }
        assert not any(site.pc in in_pcs for site in plan.invariants)
