"""Unit tests for checkpointing & logging, deterministic replay, and
execution reduction."""

import pytest

from repro.lang import compile_source
from repro.ontrac import OntracConfig
from repro.reduction import (
    CheckpointingLogger,
    ExecutionReducer,
    Replayer,
    SyncEvent,
)
from repro.runner import ProgramRunner
from repro.vm import RandomScheduler, RunStatus
from repro.workloads.server import build_server


MULTI = """
global counter;
fn worker(n) {
    var i = 0;
    while (i < n) {
        lock(1);
        counter = counter + 1;
        unlock(1);
        i = i + 1;
    }
}
fn main() {
    var a = spawn(worker, 15);
    var b = spawn(worker, 15);
    join(a);
    join(b);
    out(counter, 1);
}
"""


def logged_run(src_or_runner, interval=2000, scheduler_factory=None, inputs=None):
    if isinstance(src_or_runner, str):
        cp = compile_source(src_or_runner)
        runner = ProgramRunner(cp.program, inputs=inputs or {},
                               scheduler_factory=scheduler_factory)
    else:
        runner = src_or_runner
    machine = runner.machine()
    logger = CheckpointingLogger(checkpoint_interval=interval).attach(machine)
    result = machine.run(max_instructions=runner.max_instructions)
    return runner, machine, logger.finalize(), result


class TestLogging:
    def test_log_contents(self):
        runner, machine, log, result = logged_run(MULTI)
        assert result.status is RunStatus.HALTED or result.status is RunStatus.EXITED
        kinds = {e.kind for e in log.syncs}
        assert {"spawn", "lock", "unlock", "join", "join-exit"} <= kinds
        assert log.schedule == result.schedule
        assert log.final_seq == result.instructions
        assert log.checkpoints[0].seq == 0  # initial checkpoint always exists

    def test_periodic_checkpoints(self):
        _, _, log, result = logged_run(MULTI, interval=500)
        assert len(log.checkpoints) >= result.instructions // 500
        seqs = [cp.seq for cp in log.checkpoints]
        assert seqs == sorted(seqs)

    def test_inputs_logged_with_positions(self):
        _, _, log, _ = logged_run(
            "fn main() { out(in(0) + in(0), 1); }", inputs={0: [1, 2]}
        )
        assert [(e.channel, e.value, e.index) for e in log.inputs] == [(0, 1, 0), (0, 2, 1)]

    def test_logging_is_cheap(self):
        scenario = build_server(workers=2, requests=40, busywork=8)
        _, _, _, result = logged_run(scenario.runner(), interval=5000)
        assert result.cycles.slowdown < 2.0  # the paper's bound

    def test_failure_recorded(self):
        _, _, log, result = logged_run("fn main() { fail(1); }")
        assert log.failure_seq >= 0
        assert log.failure_kind == "fail"

    def test_no_checkpoint_after_failure(self):
        scenario = build_server(workers=2, requests=40, busywork=8)
        _, _, log, result = logged_run(scenario.runner(), interval=100)
        assert all(cp.seq <= log.failure_seq for cp in log.checkpoints)

    def test_last_checkpoint_before(self):
        _, _, log, _ = logged_run(MULTI, interval=300)
        cp = log.last_checkpoint_before(log.final_seq)
        assert cp is not None and cp.seq <= log.final_seq


class TestReplay:
    def test_full_replay_reproduces_output(self):
        factory = lambda: RandomScheduler(seed=5, min_quantum=1, max_quantum=9)
        runner, machine, log, result = logged_run(MULTI, scheduler_factory=factory)
        replayer = Replayer(runner.program, log)
        outcome = replayer.replay()
        assert outcome.machine.io.output(1) == machine.io.output(1)
        assert outcome.result.schedule == result.schedule

    def test_replay_from_mid_checkpoint(self):
        runner, machine, log, result = logged_run(MULTI, interval=200)
        assert len(log.checkpoints) >= 2
        mid = log.checkpoints[len(log.checkpoints) // 2]
        outcome = replay = Replayer(runner.program, log).replay(checkpoint=mid)
        assert outcome.machine.io.output(1) == machine.io.output(1)
        assert outcome.replayed_instructions < result.instructions

    def test_replay_reproduces_failure(self):
        scenario = build_server(workers=2, requests=50, busywork=8)
        runner, machine, log, result = logged_run(scenario.runner(), interval=4000)
        assert result.failed
        outcome = Replayer(runner.program, log).replay(
            checkpoint=log.last_checkpoint_before(log.failure_seq)
        )
        assert outcome.reproduced_failure
        assert outcome.result.failure.kind == result.failure.kind

    def test_replay_with_hooks_observes_only_suffix(self):
        from repro.ontrac import OnlineTracer

        runner, machine, log, result = logged_run(MULTI, interval=200)
        mid = log.checkpoints[-1]
        tracer = OnlineTracer(runner.program, OntracConfig())
        outcome = Replayer(runner.program, log).replay(checkpoint=mid, hooks=(tracer,))
        assert tracer.stats.instructions == outcome.replayed_instructions
        assert tracer.stats.instructions < result.instructions


class TestExecutionReduction:
    def _reduced(self, **server_kw):
        scenario = build_server(**{"workers": 3, "requests": 90, "busywork": 8, **server_kw})
        runner = scenario.runner()
        machine = runner.machine()
        logger = CheckpointingLogger(checkpoint_interval=4000).attach(machine)
        machine.run()
        log = logger.finalize()
        return scenario, runner, log

    def test_requires_a_failure(self):
        cp = compile_source("fn main() { out(1, 1); }")
        runner = ProgramRunner(cp.program)
        machine = runner.machine()
        logger = CheckpointingLogger().attach(machine)
        machine.run()
        with pytest.raises(ValueError):
            ExecutionReducer(runner.program, logger.finalize())

    def test_plan_picks_late_checkpoint_and_victim_thread(self):
        scenario, runner, log = self._reduced()
        reducer = ExecutionReducer(runner.program, log)
        plan = reducer.plan()
        assert plan.checkpoint_seq > 0
        victim_tid = scenario.victim + 1  # worker i runs as thread i+1
        assert victim_tid in plan.include_tids
        assert 0 in plan.include_tids  # main always relevant

    def test_reduction_drops_unrelated_workers(self):
        scenario, runner, log = self._reduced()
        plan = ExecutionReducer(runner.program, log).plan()
        assert len(plan.include_tids) < scenario.workers + 1

    def test_reduced_replay_reproduces_and_shrinks(self):
        scenario, runner, log = self._reduced()
        reducer = ExecutionReducer(runner.program, log)
        outcome = reducer.reduce_and_trace(OntracConfig(buffer_bytes=1 << 24))
        assert outcome.replay.reproduced_failure
        assert outcome.replayed_fraction < 0.5
        assert outcome.traced_dependences > 0

    def test_back_checkpoints_widens_window(self):
        scenario, runner, log = self._reduced()
        reducer = ExecutionReducer(runner.program, log)
        near = reducer.reduce_and_trace(OntracConfig(buffer_bytes=1 << 24))
        far = reducer.reduce_and_trace(OntracConfig(buffer_bytes=1 << 24), back_checkpoints=2)
        assert far.replay.replayed_instructions > near.replay.replayed_instructions
        assert far.replay.reproduced_failure

    def test_relevant_threads_closure_over_locks(self):
        log_syncs = [
            SyncEvent("lock", 10, 2, 7),
            SyncEvent("lock", 20, 3, 7),  # t3 shares lock 7 with t2
            SyncEvent("lock", 30, 4, 9),  # t4 uses an unrelated lock
        ]
        from repro.reduction.logging import EventLog

        log = EventLog(syncs=log_syncs, failure_seq=100, failure_kind="assert",
                       failure_tid=2, final_seq=200)
        log.checkpoints = []  # not needed for relevant_threads
        cp = compile_source("fn main() { out(1, 1); }")
        reducer = ExecutionReducer.__new__(ExecutionReducer)
        reducer.log = log
        relevant = ExecutionReducer.relevant_threads(reducer, from_seq=0)
        assert {0, 2, 3} <= relevant
        assert 4 not in relevant
