"""Unit tests for ProgramRunner, the util package, and the experiment
harness (smoke-level: full experiments run in benchmarks/)."""

import pytest

from repro.harness import ALL_EXPERIMENTS
from repro.harness.experiments import run_e6, run_e7, run_e10, run_e11
from repro.lang import compile_source
from repro.ontrac import OntracConfig
from repro.runner import ProgramRunner
from repro.util import DeterministicRng, format_table
from repro.vm import Intervention, RandomScheduler


SRC = "fn main() { out(in(0) * 2, 1); }"


class TestProgramRunner:
    def test_run_is_repeatable(self):
        runner = ProgramRunner(compile_source(SRC).program, inputs={0: [21]})
        m1, r1 = runner.run()
        m2, r2 = runner.run()
        assert m1.io.output(1) == m2.io.output(1) == [42]
        assert r1.instructions == r2.instructions

    def test_inputs_not_consumed_between_runs(self):
        runner = ProgramRunner(compile_source(SRC).program, inputs={0: [5]})
        runner.run()
        m, _ = runner.run()
        assert m.io.output(1) == [10]  # the input list was not drained

    def test_scheduler_factory_fresh_each_run(self):
        src = """
        global total;
        fn w(n) { var i = 0; while (i < n) { lock(1); total = total + 1; unlock(1); i = i + 1; } }
        fn main() { var a = spawn(w, 5); var b = spawn(w, 5); join(a); join(b); out(total, 1); }
        """
        runner = ProgramRunner(
            compile_source(src).program,
            scheduler_factory=lambda: RandomScheduler(seed=4, min_quantum=1, max_quantum=5),
        )
        _, r1 = runner.run()
        _, r2 = runner.run()
        assert r1.schedule == r2.schedule

    def test_intervention_passed_through(self):
        class Zero(Intervention):
            def transform_def(self, instr, occurrence, value):
                return 0

        runner = ProgramRunner(compile_source(SRC).program, inputs={0: [21]})
        m, _ = runner.run(intervention=Zero())
        assert m.io.output(1) == [0]

    def test_with_inputs_creates_independent_copy(self):
        runner = ProgramRunner(compile_source(SRC).program, inputs={0: [1]})
        other = runner.with_inputs({0: [7]})
        m1, _ = runner.run()
        m2, _ = other.run()
        assert m1.io.output(1) == [2]
        assert m2.io.output(1) == [14]

    def test_run_traced_attaches_tracer(self):
        runner = ProgramRunner(compile_source(SRC).program, inputs={0: [3]})
        machine, tracer, result = runner.run_traced(OntracConfig())
        assert tracer.stats.instructions == result.instructions
        assert result.cycles.overhead > 0


class TestUtil:
    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1.5], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "x" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2  # header/sep/rows align

    def test_format_table_float_rendering(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.23" in text

    def test_rng_choice_and_bounds(self):
        rng = DeterministicRng(9)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(10))
        with pytest.raises(ValueError):
            rng.randint(5, 4)


class TestHarness:
    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 13)}

    def test_results_have_tables_and_headlines(self):
        for run in (run_e7, run_e10, run_e11):
            result = run()
            assert result.rows
            assert result.headline
            table = result.table()
            assert result.experiment in table
            assert len(table.splitlines()) >= 3 + len(result.rows) - 1

    def test_e6_headline_invariants(self):
        result = run_e6()
        assert result.headline["sync_aware_livelocks"] == 0
        assert result.headline["naive_livelocks"] >= 1
