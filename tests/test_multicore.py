"""Unit tests for helper-core DIFT: channel models, queue simulation,
dual-core timing, detection parity with inline DIFT."""

import pytest

from repro.dift import BoolTaintPolicy, DIFTEngine, PCTaintPolicy
from repro.lang import compile_source
from repro.multicore import (
    ChannelModel,
    HelperCoreDIFT,
    QueueSimulator,
    hardware_interconnect,
    shared_memory_channel,
)
from repro.vm import Machine, RunStatus
from repro.workloads.spec_like import matmul


TAINT_HEAVY = """
global data[64];
fn main() {
    var seed = in(0);
    var i = 0;
    while (i < 64) {
        data[i] = seed + i;
        i = i + 1;
    }
    var s = 0;
    i = 0;
    while (i < 64) { s = s + data[i]; i = i + 1; }
    out(s, 1);
}
"""


def run_helper(src_or_workload, channel, policy=None, inputs=None):
    if isinstance(src_or_workload, str):
        cp = compile_source(src_or_workload)
        m = Machine(cp.program)
        for chan, values in (inputs or {}).items():
            m.io.provide(chan, values)
    else:
        m = src_or_workload.runner().machine()
    helper = HelperCoreDIFT(policy or BoolTaintPolicy(), channel=channel).attach(m)
    res = m.run()
    return m, helper, res


class TestChannels:
    def test_models_have_expected_cost_ordering(self):
        hw = hardware_interconnect()
        sw = shared_memory_channel()
        assert hw.enqueue_cycles < sw.enqueue_cycles
        assert hw.capacity < sw.capacity

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel("bad", 1, 1, 0)


class TestQueueSimulator:
    def test_no_stall_when_helper_keeps_up(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 8))
        for t in range(0, 1000, 10):  # slow producer
            assert q.enqueue(t, service_cycles=2) == 0
        assert q.stall_cycles == 0

    def test_stall_on_full_queue(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 2))
        stalls = [q.enqueue(0, service_cycles=100) for _ in range(5)]
        assert sum(stalls) > 0
        assert q.stall_cycles == sum(stalls)

    def test_helper_time_monotone(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 64))
        last = 0
        for t in range(20):
            q.enqueue(t, service_cycles=3)
            assert q.helper_free >= last
            last = q.helper_free

    def test_drain_after_producer_finishes(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 64))
        q.enqueue(0, service_cycles=50)
        assert q.drain(10) > 0
        assert q.drain(10_000) == 0


class TestHelperCoreDIFT:
    def test_overhead_between_zero_and_inline(self):
        w = matmul(6)
        runner = w.runner()
        m_inline = runner.machine()
        DIFTEngine(BoolTaintPolicy(), sinks=[]).attach(m_inline)
        inline = m_inline.run()
        inline_overhead = inline.cycles.slowdown - 1.0

        m, helper, res = run_helper(w, hardware_interconnect())
        report = helper.report()
        assert 0 < report.overhead < inline_overhead

    def test_sw_channel_costs_more_than_hw(self):
        w = matmul(6)
        _, hw_helper, _ = run_helper(w, hardware_interconnect())
        _, sw_helper, _ = run_helper(w, shared_memory_channel())
        assert sw_helper.report().overhead > hw_helper.report().overhead

    def test_one_message_per_instruction(self):
        m, helper, res = run_helper(TAINT_HEAVY, hardware_interconnect(), inputs={0: [3]})
        assert helper.queue.messages == res.instructions

    def test_tiny_queue_stalls_the_main_core(self):
        tiny = ChannelModel("tiny", 1, 4, 1)
        m, helper, _ = run_helper(TAINT_HEAVY, tiny, inputs={0: [3]})
        assert helper.report().stall_cycles > 0

    def test_detection_parity_with_inline(self):
        # The helper engine must catch the same attack the inline engine does.
        src = """
        fn safe(x) { out(1, 1); }
        fn admin(x) { out(2, 1); }
        fn main() {
            var fp = alloc(1);
            fp[0] = in(0);      // directly attacker-controlled pointer
            icall(fp[0], 0);
        }
        """
        cp = compile_source(src)
        m = Machine(cp.program)
        m.io.provide(0, [1])  # admin's fid
        helper = HelperCoreDIFT(PCTaintPolicy()).attach(m)
        res = m.run()
        assert res.status is RunStatus.FAILED
        assert res.failure.kind == "attack_detected"
        assert len(helper.alerts) == 1

    def test_shadow_state_matches_inline_engine(self):
        cp = compile_source(TAINT_HEAVY)

        def shadow_of(engine_factory):
            m = Machine(cp.program)
            m.io.provide(0, [3])
            tool = engine_factory(m)
            m.run()
            return tool

        inline = shadow_of(lambda m: DIFTEngine(BoolTaintPolicy(), sinks=[]).attach(m))
        helper = shadow_of(lambda m: HelperCoreDIFT(BoolTaintPolicy(), sinks=[]).attach(m))
        assert inline.shadow.mem == helper.shadow.mem
        assert inline.shadow.regs == helper.shadow.regs

    def test_report_totals_consistent(self):
        m, helper, res = run_helper(TAINT_HEAVY, hardware_interconnect(), inputs={0: [1]})
        report = helper.report()
        assert report.total_cycles == report.main_cycles + report.drain_cycles
        assert report.base_cycles == res.cycles.base
        assert report.main_cycles == res.cycles.total


class TestQueueBackPressure:
    """Regression: ``enqueue`` only drains completions the stall actually
    covered, so ``in_flight`` never counts phantom (or still-pending)
    slots and the queue depth is bounded by the channel capacity."""

    def test_depth_never_exceeds_capacity(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 4))
        for i in range(100):
            q.enqueue(i, service_cycles=50)
            assert len(q.in_flight) <= 4
        assert q.peak_depth <= 4

    def test_peak_depth_pinned(self):
        # Deterministic saturation: every message enqueued at t=0 against
        # a capacity-2 channel with 100-cycle service.  The first two fill
        # the queue; each later one stalls until exactly one completion,
        # so the depth peaks at the capacity and never beyond it.
        q = QueueSimulator(ChannelModel("x", 1, 1, 2))
        for _ in range(10):
            q.enqueue(0, service_cycles=100)
            assert len(q.in_flight) <= 2
        assert q.peak_depth == 2
        assert q.stalls == 8
        assert q.messages == 10

    def test_in_flight_only_holds_pending_completions(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 3))
        main_time = 0
        for i in range(50):
            stall = q.enqueue(main_time, service_cycles=17)
            main_time += stall + 1
            # Completion times are monotone and all strictly pending.
            flight = list(q.in_flight)
            assert flight == sorted(flight)
            assert all(done > main_time - 1 or done >= main_time for done in flight)
            assert len(flight) <= 3


class TestQueueProperties:
    """Seeded property tests for the queue's timing identities."""

    def test_helper_busy_time_is_sum_of_service_plus_dequeue(self):
        import random

        rng = random.Random(0xD1F7)
        for _ in range(25):
            cap = rng.randint(1, 8)
            deq = rng.randint(1, 5)
            q = QueueSimulator(ChannelModel("p", rng.randint(1, 5), deq, cap))
            main_time = 0
            busy = 0
            for _ in range(rng.randint(1, 200)):
                service = rng.randint(0, 30)
                prev_free = q.helper_free
                stall = q.enqueue(main_time, service)
                # Each message occupies the helper for exactly
                # dequeue + service cycles, starting when both the
                # helper and the message are ready.
                start = max(prev_free, main_time + stall)
                assert q.helper_free - start == deq + service
                busy += deq + service
                main_time += stall + rng.randint(0, 10)
            # The helper can idle but never compress work: its finish
            # time is at least the total busy time.
            assert q.helper_free >= busy
            assert q.drain(0) == q.helper_free

    def test_drain_monotone_in_main_time(self):
        import random

        rng = random.Random(2008)
        for _ in range(25):
            q = QueueSimulator(ChannelModel("p", 1, rng.randint(1, 4), 16))
            t = 0
            for _ in range(rng.randint(1, 100)):
                t += rng.randint(0, 5)
                q.enqueue(t, rng.randint(0, 20))
            times = sorted(rng.randint(0, q.helper_free + 50) for _ in range(20))
            drains = [q.drain(x) for x in times]
            for (t1, d1), (t2, d2) in zip(
                zip(times, drains), zip(times[1:], drains[1:])
            ):
                assert d1 >= d2  # later observers never see more work left
                assert d1 - d2 <= t2 - t1  # the backlog drains in real time
            assert q.drain(q.helper_free) == 0
