"""Unit tests for helper-core DIFT: channel models, queue simulation,
dual-core timing, detection parity with inline DIFT."""

import pytest

from repro.dift import BoolTaintPolicy, DIFTEngine, PCTaintPolicy
from repro.lang import compile_source
from repro.multicore import (
    ChannelModel,
    HelperCoreDIFT,
    QueueSimulator,
    hardware_interconnect,
    shared_memory_channel,
)
from repro.vm import Machine, RunStatus
from repro.workloads.spec_like import matmul


TAINT_HEAVY = """
global data[64];
fn main() {
    var seed = in(0);
    var i = 0;
    while (i < 64) {
        data[i] = seed + i;
        i = i + 1;
    }
    var s = 0;
    i = 0;
    while (i < 64) { s = s + data[i]; i = i + 1; }
    out(s, 1);
}
"""


def run_helper(src_or_workload, channel, policy=None, inputs=None):
    if isinstance(src_or_workload, str):
        cp = compile_source(src_or_workload)
        m = Machine(cp.program)
        for chan, values in (inputs or {}).items():
            m.io.provide(chan, values)
    else:
        m = src_or_workload.runner().machine()
    helper = HelperCoreDIFT(policy or BoolTaintPolicy(), channel=channel).attach(m)
    res = m.run()
    return m, helper, res


class TestChannels:
    def test_models_have_expected_cost_ordering(self):
        hw = hardware_interconnect()
        sw = shared_memory_channel()
        assert hw.enqueue_cycles < sw.enqueue_cycles
        assert hw.capacity < sw.capacity

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel("bad", 1, 1, 0)


class TestQueueSimulator:
    def test_no_stall_when_helper_keeps_up(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 8))
        for t in range(0, 1000, 10):  # slow producer
            assert q.enqueue(t, service_cycles=2) == 0
        assert q.stall_cycles == 0

    def test_stall_on_full_queue(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 2))
        stalls = [q.enqueue(0, service_cycles=100) for _ in range(5)]
        assert sum(stalls) > 0
        assert q.stall_cycles == sum(stalls)

    def test_helper_time_monotone(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 64))
        last = 0
        for t in range(20):
            q.enqueue(t, service_cycles=3)
            assert q.helper_free >= last
            last = q.helper_free

    def test_drain_after_producer_finishes(self):
        q = QueueSimulator(ChannelModel("x", 1, 1, 64))
        q.enqueue(0, service_cycles=50)
        assert q.drain(10) > 0
        assert q.drain(10_000) == 0


class TestHelperCoreDIFT:
    def test_overhead_between_zero_and_inline(self):
        w = matmul(6)
        runner = w.runner()
        m_inline = runner.machine()
        DIFTEngine(BoolTaintPolicy(), sinks=[]).attach(m_inline)
        inline = m_inline.run()
        inline_overhead = inline.cycles.slowdown - 1.0

        m, helper, res = run_helper(w, hardware_interconnect())
        report = helper.report()
        assert 0 < report.overhead < inline_overhead

    def test_sw_channel_costs_more_than_hw(self):
        w = matmul(6)
        _, hw_helper, _ = run_helper(w, hardware_interconnect())
        _, sw_helper, _ = run_helper(w, shared_memory_channel())
        assert sw_helper.report().overhead > hw_helper.report().overhead

    def test_one_message_per_instruction(self):
        m, helper, res = run_helper(TAINT_HEAVY, hardware_interconnect(), inputs={0: [3]})
        assert helper.queue.messages == res.instructions

    def test_tiny_queue_stalls_the_main_core(self):
        tiny = ChannelModel("tiny", 1, 4, 1)
        m, helper, _ = run_helper(TAINT_HEAVY, tiny, inputs={0: [3]})
        assert helper.report().stall_cycles > 0

    def test_detection_parity_with_inline(self):
        # The helper engine must catch the same attack the inline engine does.
        src = """
        fn safe(x) { out(1, 1); }
        fn admin(x) { out(2, 1); }
        fn main() {
            var fp = alloc(1);
            fp[0] = in(0);      // directly attacker-controlled pointer
            icall(fp[0], 0);
        }
        """
        cp = compile_source(src)
        m = Machine(cp.program)
        m.io.provide(0, [1])  # admin's fid
        helper = HelperCoreDIFT(PCTaintPolicy()).attach(m)
        res = m.run()
        assert res.status is RunStatus.FAILED
        assert res.failure.kind == "attack_detected"
        assert len(helper.alerts) == 1

    def test_shadow_state_matches_inline_engine(self):
        cp = compile_source(TAINT_HEAVY)

        def shadow_of(engine_factory):
            m = Machine(cp.program)
            m.io.provide(0, [3])
            tool = engine_factory(m)
            m.run()
            return tool

        inline = shadow_of(lambda m: DIFTEngine(BoolTaintPolicy(), sinks=[]).attach(m))
        helper = shadow_of(lambda m: HelperCoreDIFT(BoolTaintPolicy(), sinks=[]).attach(m))
        assert inline.shadow.mem == helper.shadow.mem
        assert inline.shadow.regs == helper.shadow.regs

    def test_report_totals_consistent(self):
        m, helper, res = run_helper(TAINT_HEAVY, hardware_interconnect(), inputs={0: [1]})
        report = helper.report()
        assert report.total_cycles == report.main_cycles + report.drain_cycles
        assert report.base_cycles == res.cycles.base
        assert report.main_cycles == res.cycles.total
