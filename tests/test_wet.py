"""Unit tests for the compact whole-execution-trace (WET) representation:
lossless round trip, interval compression, compact-form slicing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Opcode
from repro.lang import compile_source
from repro.ontrac import (
    CompactWET,
    DepKind,
    DepRecord,
    Interval,
    OntracConfig,
    build_ddg,
    compact,
    compact_backward_slice,
)
from repro.runner import ProgramRunner
from repro.slicing import backward_slice
from repro.workloads.generators import generate
from repro.workloads.spec_like import matmul, sort


def traced_ddg(workload_or_src, inputs=None):
    if isinstance(workload_or_src, str):
        cp = compile_source(workload_or_src)
        runner = ProgramRunner(cp.program, inputs=inputs or {})
    else:
        runner = workload_or_src.runner()
        cp = workload_or_src.compiled
    _, tracer, _ = runner.run_traced(OntracConfig.unoptimized(buffer_bytes=1 << 26))
    return tracer.dependence_graph(), cp


class TestInterval:
    def test_pairs_enumeration(self):
        iv = Interval(c0=10, p0=5, stride_c=3, stride_p=3, length=4)
        assert list(iv.pairs()) == [(10, 5), (13, 8), (16, 11), (19, 14)]

    def test_producer_lookup(self):
        iv = Interval(c0=10, p0=5, stride_c=3, stride_p=2, length=4)
        assert iv.producer_for(10) == 5
        assert iv.producer_for(16) == 9
        assert iv.producer_for(11) is None  # off-stride
        assert iv.producer_for(22) is None  # past the end
        assert iv.producer_for(7) is None  # before the start

    def test_singleton_interval(self):
        iv = Interval(c0=4, p0=2, stride_c=0, stride_p=0, length=1)
        assert iv.producer_for(4) == 2
        assert iv.producer_for(5) is None


class TestCompaction:
    def test_lossless_round_trip(self):
        ddg, _ = traced_ddg(matmul(6))
        wet = compact(ddg)
        restored = wet.to_ddg()
        assert set(restored.nodes) == set(ddg.nodes)
        for seq in ddg.backward:
            assert sorted(restored.backward[seq]) == sorted(ddg.backward[seq])

    def test_loop_edges_compress_well(self):
        # Loop-carried dependences execute in lockstep: few intervals.
        ddg, _ = traced_ddg(
            """
            fn main() {
                var s = 0;
                var i = 0;
                while (i < 100) { s = s + i; i = i + 1; }
                out(s, 1);
            }
            """
        )
        wet = compact(ddg)
        assert wet.compression_ratio > 5
        # the s += i edge: 100 dynamic instances in O(1) intervals
        big = max(wet.edges.values(), key=lambda e: e.dynamic_count)
        assert big.dynamic_count >= 99
        assert len(big.intervals) <= 4

    def test_compression_on_kernels(self):
        for workload in (matmul(6), sort(32)):
            ddg, _ = traced_ddg(workload)
            wet = compact(ddg)
            assert wet.compression_ratio > 3, workload.name
            assert wet.raw_edges == ddg.edge_count

    def test_straightline_code_compresses_little(self):
        ddg, _ = traced_ddg("fn main() { var a = 1; var b = a + 2; out(b, 1); }")
        wet = compact(ddg)
        # every static edge executes once: no interval wins
        assert all(e.dynamic_count == len(e.intervals) for e in wet.edges.values())


class TestCompactSlicing:
    def test_matches_full_slice_on_programs(self):
        for seed in range(6):
            gp = generate(seed)
            _, tracer, _ = gp.runner().run_traced(
                OntracConfig.unoptimized(buffer_bytes=1 << 26)
            )
            ddg = tracer.dependence_graph()
            wet = compact(ddg)
            out_pcs = [
                pc for pc in range(len(gp.compiled.program.code))
                if gp.compiled.program.code[pc].opcode is Opcode.OUT
            ]
            for out_pc in out_pcs:
                criterion = ddg.last_instance_of_pc(out_pc)
                if criterion is None:
                    continue
                full = backward_slice(ddg, criterion).seqs
                fast = compact_backward_slice(wet, criterion)
                assert full == fast, (seed, out_pc)

    def test_kind_filter(self):
        ddg, cp = traced_ddg(
            "fn main() { var x = in(0); if (x) { out(1, 1); } }", inputs={0: [1]}
        )
        wet = compact(ddg)
        out_pc = max(
            pc for pc in range(len(cp.program.code))
            if cp.program.code[pc].opcode is Opcode.OUT
        )
        criterion = ddg.last_instance_of_pc(out_pc)
        data_only = compact_backward_slice(
            wet, criterion, kinds=frozenset({DepKind.REG, DepKind.MEM})
        )
        everything = compact_backward_slice(wet, criterion)
        assert data_only <= everything

    def test_unknown_criterion(self):
        ddg, _ = traced_ddg("fn main() { out(1, 1); }")
        wet = compact(ddg)
        import pytest

        with pytest.raises(KeyError):
            compact_backward_slice(wet, 10**9)


class TestIntervalCompressionProperty:
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=500),
            ),
            max_size=60,
            unique_by=lambda p: p,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_compress_pairs_lossless(self, pairs):
        from repro.ontrac.wet import _compress_pairs

        pairs = sorted(set(pairs))
        intervals = _compress_pairs(pairs)
        restored = sorted(pair for iv in intervals for pair in iv.pairs())
        assert restored == pairs

    @given(
        start=st.integers(min_value=0, max_value=100),
        stride=st.integers(min_value=1, max_value=9),
        length=st.integers(min_value=3, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_perfect_stride_collapses_to_one_interval(self, start, stride, length):
        from repro.ontrac.wet import _compress_pairs

        pairs = [(start + i * stride, start + 1 + i * stride) for i in range(length)]
        intervals = _compress_pairs(pairs)
        assert len(intervals) == 1
        assert intervals[0].length == length
