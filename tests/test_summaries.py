"""Unit tests for function-summary DIFT (repro.dift.summaries).

The differential and fuzz suites prove summaries hold bit-identity on
whole workloads; these tests pin the mechanisms down one at a time:
cache signatures keep fidelities apart, the guard machinery catches
aliased writes and divergent control flow, footprint variants absorb
stable polymorphism, overflowing sink values survive replay, raising
regions re-raise at the same point on a warm cache, and the relearn /
variant budgets actually blacklist.
"""

import zlib

import pytest

from repro.dift import BoolTaintPolicy, DIFTEngine, SinkRule
from repro.dift.kernel import RecordStreamCapture, build_kernel
from repro.dift.policy import PCTaintPolicy
from repro.dift.summaries import (
    SummaryCache,
    SummaryKernel,
    TaintSummary,
    cache_signature,
    summarizable,
)
from repro.lang import compile_source
from repro.vm import Machine, RunStatus
from repro.workloads.generators import call_heavy

RECORD_SINKS = [SinkRule(kind="out", action="record")]
ICALL_SINKS = [SinkRule(kind="icall")]

# Two helpers, one nested: mix(t) has a stable tainted footprint and
# mix(i) a stable clean one, so both converge to summary hits even
# though i changes every iteration (register *values* never reach the
# record stream — only control flow, addresses and sink payloads do).
CALLS_SRC = """
fn add3(x) { return x + 3; }
fn mix(x) {
    var a = x + 1;
    var b = a * 2;
    return add3(a + b);
}
fn main() {
    var t = in(0);
    var acc = 0;
    var i = 0;
    while (i < 6) {
        acc = acc + mix(t) + mix(i);
        i = i + 1;
    }
    out(acc, 1);
}
"""


def run_engine(src, inputs=None, sinks=None, summaries=None, cache=None,
               kernel=None):
    cp = compile_source(src)
    m = Machine(cp.program)
    for chan, values in (inputs or {}).items():
        m.io.provide(chan, values)
    eng = DIFTEngine(
        BoolTaintPolicy(), sinks=sinks, kernel=kernel,
        summaries=summaries, summary_cache=cache,
    ).attach(m)
    res = m.run()
    return m, res, eng


def assert_same_observables(base, summ):
    assert [str(a) for a in base.alerts] == [str(a) for a in summ.alerts]
    assert base.stats == summ.stats
    assert base.shadow.regs == summ.shadow.regs
    assert base.shadow.mem_items() == summ.shadow.mem_items()
    assert base.shadow.peak_locations == summ.shadow.peak_locations


# ---------------------------------------------------------------------------
# Cache signatures and policy gating
# ---------------------------------------------------------------------------
class TestSignatures:
    def test_fidelities_get_distinct_signatures(self):
        sigs = {
            cache_signature(BoolTaintPolicy(), None, ICALL_SINKS, False),
            cache_signature(PCTaintPolicy(), None, ICALL_SINKS, False),
            cache_signature(BoolTaintPolicy(), None, RECORD_SINKS, False),
            cache_signature(BoolTaintPolicy(), frozenset({0}), ICALL_SINKS, False),
            cache_signature(BoolTaintPolicy(), None, ICALL_SINKS, True),
        }
        assert len(sigs) == 5

    def test_mismatched_cache_rejected(self):
        # A dift-fidelity cache must never serve a full-fidelity kernel.
        wrong = SummaryCache(
            cache_signature(PCTaintPolicy(), None, ICALL_SINKS, False)
        )
        kern = build_kernel("reference", BoolTaintPolicy(), sinks=ICALL_SINKS)
        with pytest.raises(ValueError, match="signature mismatch"):
            SummaryKernel(kern, cache=wrong)

    def test_only_exact_scalar_policies_summarizable(self):
        class Wider(BoolTaintPolicy):
            pass

        assert summarizable(BoolTaintPolicy())
        assert summarizable(PCTaintPolicy())
        assert not summarizable(Wider())
        with pytest.raises(ValueError, match="not summarizable"):
            SummaryKernel(build_kernel("reference", Wider(), sinks=ICALL_SINKS))


# ---------------------------------------------------------------------------
# TaintSummary and SummaryCache bookkeeping
# ---------------------------------------------------------------------------
def _dummy_summary(site=5, data=b"\x00" * 48):
    return TaintSummary(
        site=site, data=data, freg={(0, 1): True}, fmem={8: None},
        wreg={(0, 2): False}, wmem={}, oreg={(0, 2): True}, omem={},
        d_instr=2, d_taint=1, d_sources=0, d_sink_checks=0,
        overhead=0, rise=1,
    )


class TestCache:
    def test_region_hash_and_sizes(self):
        s = _dummy_summary(data=b"\x07" * 72)
        assert s.region_hash == zlib.crc32(b"\x07" * 72)
        assert s.footprint_size == 3
        assert s.records == 3

    def test_variant_overflow_blacklists(self):
        cache = SummaryCache("sig", max_variants=2)
        cache.store(5, _dummy_summary())
        cache.store(5, _dummy_summary())
        assert cache.learned == 2
        assert len(cache.summaries[5]) == 2
        # A third unseen footprint exhausts the variant budget.
        assert not cache.miss(5)
        assert 5 in cache.blacklist
        assert 5 not in cache.summaries
        assert cache.invalidations == 1

    def test_relearn_limit_blacklists(self):
        cache = SummaryCache("sig", relearn_limit=2)
        s1, s2 = _dummy_summary(), _dummy_summary()
        cache.store(5, s1)
        cache.store(5, s2)
        # Byte divergence drops only the diverged variant.
        assert cache.invalidate(5, s1)
        assert cache.summaries[5] == [s2]
        assert not cache.invalidate(5, s2)  # hits the relearn limit
        assert 5 in cache.blacklist
        assert 5 not in cache.summaries


# ---------------------------------------------------------------------------
# Engine-level replay: identity, hits, overflow, variants
# ---------------------------------------------------------------------------
class TestEngineReplay:
    @pytest.mark.parametrize("kernel", ["reference", "array"])
    def test_call_regions_hit_and_stay_identical(self, kernel):
        inputs = {0: [41]}
        _, res_b, base = run_engine(
            CALLS_SRC, inputs=inputs, sinks=RECORD_SINKS, kernel=kernel
        )
        cache = SummaryCache(
            cache_signature(BoolTaintPolicy(), None, RECORD_SINKS, False)
        )
        _, res_s, summ = run_engine(
            CALLS_SRC, inputs=inputs, sinks=RECORD_SINKS, kernel=kernel,
            summaries=True, cache=cache,
        )
        assert res_b.status is res_s.status is RunStatus.EXITED
        assert_same_observables(base, summ)
        # 12 mix() calls on 2 stable footprints: learns, then hits.
        assert cache.hits > 0
        assert cache.records_elided > 0
        assert not cache.blacklist

    def test_i64_overflow_sink_values_survive_replay(self):
        src = """
        fn boom(x) {
            var big = 1;
            var i = 0;
            while (i < 70) { big = big * 2; i = i + 1; }
            out(big + x, 1);
            return 0;
        }
        fn main() {
            var t = in(0);
            var k = 0;
            var z = 0;
            while (k < 3) { z = boom(t); k = k + 1; }
        }
        """
        inputs = {0: [3]}
        _, _, base = run_engine(src, inputs=inputs, sinks=RECORD_SINKS)
        cache = SummaryCache(
            cache_signature(BoolTaintPolicy(), None, RECORD_SINKS, False)
        )
        _, _, summ = run_engine(
            src, inputs=inputs, sinks=RECORD_SINKS, summaries=True, cache=cache
        )
        # 2**70 + 3 overflows the wire format's i64 payload; the replayed
        # alerts must carry the true value, not the clamped one.
        assert [al.value for al in base.alerts] == [2**70 + 3] * 3
        assert_same_observables(base, summ)
        assert cache.hits >= 1

    def test_aliased_writes_never_misapply(self):
        # poke() stores through a different address every call: the
        # learned store set is wrong for every later call, so the byte
        # guard must reject each one (addresses live in the records).
        src = """
        fn poke(p, v) {
            p[0] = v;
            return p[0];
        }
        fn main() {
            var buf = alloc(8);
            var t = in(0);
            var i = 0;
            var acc = 0;
            while (i < 8) {
                acc = acc + poke(buf + i, t + i);
                i = i + 1;
            }
            out(acc, 1);
        }
        """
        inputs = {0: [9]}
        _, _, base = run_engine(src, inputs=inputs, sinks=RECORD_SINKS)
        cache = SummaryCache(
            cache_signature(BoolTaintPolicy(), None, RECORD_SINKS, False)
        )
        _, _, summ = run_engine(
            src, inputs=inputs, sinks=RECORD_SINKS, summaries=True, cache=cache
        )
        assert_same_observables(base, summ)
        assert cache.invalidations > 0

    def test_divergent_control_flow_blacklists_site(self):
        # varloop(i) runs a different trip count every call: every
        # re-match diverges, and after relearn_limit failures the site
        # must give up rather than keep buffering.
        src = """
        fn varloop(n) {
            var s = 0;
            var i = 0;
            while (i < n) { s = s + n; i = i + 1; }
            return s;
        }
        fn main() {
            var t = in(0);
            var acc = t;
            var i = 0;
            while (i < 8) { acc = acc + varloop(i); i = i + 1; }
            out(acc, 1);
        }
        """
        inputs = {0: [5]}
        _, _, base = run_engine(src, inputs=inputs, sinks=RECORD_SINKS)
        cache = SummaryCache(
            cache_signature(BoolTaintPolicy(), None, RECORD_SINKS, False)
        )
        _, _, summ = run_engine(
            src, inputs=inputs, sinks=RECORD_SINKS, summaries=True, cache=cache
        )
        assert_same_observables(base, summ)
        assert cache.invalidations >= cache.relearn_limit
        assert cache.blacklist

    def test_raising_region_replays_raise_on_warm_cache(self):
        # The icall hijack fires inside a helper region.  Run 1 learns
        # the truncated raising region; run 2 replays it and must fail
        # at the same pc/seq with the same alert.
        src = """
        fn greet(x) { out(100 + x, 1); }
        fn fire(fp) { icall(fp, 7); }
        fn main() {
            var buf = alloc(4);
            var fpv = alloc(1);
            fpv[0] = fnid(greet);
            var n = in(0);
            var i = 0;
            while (i < n) {
                buf[i] = in(0);
                i = i + 1;
            }
            var j = 0;
            while (j < 2) { fire(fpv[0]); j = j + 1; }
        }
        """
        inputs = {0: [5, 0, 0, 0, 0, 1]}
        _, res_b, base = run_engine(src, inputs=inputs, sinks=ICALL_SINKS)
        assert res_b.status is RunStatus.FAILED
        cache = SummaryCache(
            cache_signature(BoolTaintPolicy(), None, ICALL_SINKS, False)
        )
        _, res_1, summ_1 = run_engine(
            src, inputs=inputs, sinks=ICALL_SINKS, summaries=True, cache=cache
        )
        learned_before = cache.learned
        _, res_2, summ_2 = run_engine(
            src, inputs=inputs, sinks=ICALL_SINKS, summaries=True, cache=cache
        )
        for res, summ in ((res_1, summ_1), (res_2, summ_2)):
            assert res.status is RunStatus.FAILED
            assert (res.failure.kind, res.failure.pc, res.failure.seq) == (
                res_b.failure.kind, res_b.failure.pc, res_b.failure.seq
            )
            assert [str(a) for a in summ.alerts] == [str(a) for a in base.alerts]
        # The second run really replayed: a hit, and nothing new learned.
        assert cache.hits >= 1
        assert cache.learned == learned_before


# ---------------------------------------------------------------------------
# Stream-level: polymorphic variants and the record ledger
# ---------------------------------------------------------------------------
class TestStreamReplay:
    def test_polymorphic_footprints_converge_to_variants(self):
        # 50% of calls see a clean argument, 50% a tainted one: two
        # stable footprints per site.  Variants must absorb both (no
        # blacklisting) after at most one learn each.
        w = call_heavy(2, iterations=16, stmts=4, name="p50-tiny")
        runner = w.runner()
        m = runner.machine()
        cap = RecordStreamCapture(markers=True).attach(m)
        m.run(max_instructions=runner.max_instructions)
        cap.finish()

        base = cap.prime(
            build_kernel("reference", BoolTaintPolicy(), sinks=RECORD_SINKS)
        )
        for chunk in cap.chunks:
            base.propagate_batch(chunk)

        summ = SummaryKernel(
            build_kernel("reference", BoolTaintPolicy(), sinks=RECORD_SINKS)
        )
        cap.prime(summ)
        for chunk in cap.chunks:
            summ.propagate_batch(chunk)
        summ.settle()

        assert_same_observables(base, summ)
        assert summ.invalidations > 0  # the entry misses that grew variants
        assert summ.hits > summ.learned
        assert not summ.cache.blacklist
        # The record ledger: every record is a marker, elided, or inner.
        assert summ.records_consumed == (
            summ.markers + summ.records_elided + summ.inner.records_consumed
        )
