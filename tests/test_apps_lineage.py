"""Unit tests for the lineage application: roBDD manager, lineage set
stores, the lineage policy/tracer, validation queries."""

import pytest

from repro.apps.lineage import (
    BDD_BYTES_PER_NODE,
    BDDLineageStore,
    BDDManager,
    LineageTracer,
    NaiveLineageStore,
    decode_input,
    encode_input,
    screen_outputs,
    verify_against_reference,
)
from repro.workloads.scientific import (
    block_select,
    cumulative_sum,
    lineage_suite,
    moving_average,
    scatter_pick,
    stencil_chain,
)


class TestBDDManager:
    def test_terminals(self):
        mgr = BDDManager(bits=4)
        assert mgr.FALSE == 0 and mgr.TRUE == 1
        assert mgr.node_count == 0

    def test_singleton_contains_only_itself(self):
        mgr = BDDManager(bits=6)
        node = mgr.singleton(37)
        for v in range(64):
            assert mgr.contains(node, v) == (v == 37)
        assert mgr.count(node) == 1

    def test_union_intersect_small(self):
        mgr = BDDManager(bits=5)
        a = mgr.from_iterable({1, 5, 9})
        b = mgr.from_iterable({5, 9, 30})
        assert mgr.to_set(mgr.union(a, b)) == {1, 5, 9, 30}
        assert mgr.to_set(mgr.intersect(a, b)) == {5, 9}

    def test_hash_consing_same_set_same_node(self):
        mgr = BDDManager(bits=8)
        a = mgr.from_iterable([3, 1, 2])
        b = mgr.from_iterable([2, 3, 1])
        assert a == b  # canonical form

    def test_union_identities(self):
        mgr = BDDManager(bits=6)
        a = mgr.from_iterable({2, 4})
        assert mgr.union(a, mgr.FALSE) == a
        assert mgr.union(a, a) == a
        assert mgr.intersect(a, mgr.TRUE) == a
        assert mgr.intersect(a, mgr.FALSE) == mgr.FALSE

    def test_full_set_is_terminal_true(self):
        mgr = BDDManager(bits=3)
        node = mgr.from_iterable(range(8))
        assert node == mgr.TRUE
        assert mgr.count(node) == 8

    def test_contiguous_cheaper_than_scattered(self):
        mgr = BDDManager(bits=12)
        contiguous = mgr.from_iterable(range(512, 640))
        # an irregular stride: no binary periodicity for the BDD to exploit
        scattered = mgr.from_iterable((i * 37 + 13) % 4096 for i in range(128))
        assert mgr.reachable_count(contiguous) < mgr.reachable_count(scattered)

    def test_out_of_range_rejected(self):
        mgr = BDDManager(bits=4)
        with pytest.raises(ValueError):
            mgr.singleton(16)
        with pytest.raises(ValueError):
            BDDManager(bits=0)

    def test_count_with_skipped_top_variables(self):
        mgr = BDDManager(bits=8)
        evens = mgr.from_iterable(range(0, 256, 2))
        assert mgr.count(evens) == 128


class TestStores:
    @pytest.mark.parametrize("store_factory", [NaiveLineageStore, lambda: BDDLineageStore(bits=12)])
    def test_store_semantics(self, store_factory):
        store = store_factory()
        a = store.singleton(10)
        b = store.singleton(11)
        u = store.union([a, b])
        assert store.members(u) == {10, 11}
        assert store.size(u) == 2
        assert store.contains(u, 10)
        assert not store.contains(u, 12)

    def test_encode_decode_roundtrip(self):
        for channel in (0, 3, 7):
            for index in (0, 1, 1000):
                assert decode_input(encode_input(channel, index)) == (channel, index)

    def test_encoding_preserves_clustering(self):
        # consecutive indices on one channel stay 8 apart (contiguous x8)
        ids = [encode_input(0, i) for i in range(5)]
        assert all(b - a == 8 for a, b in zip(ids, ids[1:]))

    def test_bad_channel_rejected(self):
        with pytest.raises(ValueError):
            encode_input(8, 0)

    def test_naive_footprint_is_sum_of_sizes(self):
        store = NaiveLineageStore()
        labels = [store.singleton(i) for i in range(5)]
        labels.append(store.union(labels))
        assert store.footprint_bytes(labels) == (5 + 5) * 4

    def test_bdd_footprint_counts_live_reachable_once(self):
        store = BDDLineageStore(bits=10)
        a = store.union([store.singleton(i) for i in range(16)])
        footprint_one = store.footprint_bytes([a])
        footprint_two = store.footprint_bytes([a, a])  # shared: no double count
        assert footprint_one == footprint_two
        assert footprint_one % BDD_BYTES_PER_NODE == 0


class TestLineageTracer:
    @pytest.mark.parametrize("representation", ["naive", "robdd"])
    def test_exact_lineage_on_suite(self, representation):
        for workload in lineage_suite():
            tracer = LineageTracer(representation=representation)
            trace = tracer.trace(workload.runner())
            matches, mismatches = verify_against_reference(trace, workload.expected_lineage)
            assert matches == workload.n_outputs, (workload.name, mismatches[:2])

    def test_output_values_recorded(self):
        workload = moving_average(n=8, window=2)
        trace = LineageTracer("robdd").trace(workload.runner())
        machine_outputs = [o.value for o in trace.outputs]
        assert len(machine_outputs) == workload.n_outputs

    def test_outputs_depending_on(self):
        workload = moving_average(n=10, window=3)
        trace = LineageTracer("robdd").trace(workload.runner())
        dependents = trace.outputs_depending_on(0, 4)
        # input 4 is in windows starting at 2, 3, 4
        assert {o.position for o in dependents} == {2, 3, 4}

    def test_robdd_beats_naive_on_overlapping_sets(self):
        workload = cumulative_sum(n=250)
        naive = LineageTracer("naive").trace(workload.runner())
        robdd = LineageTracer("robdd").trace(workload.runner())
        assert robdd.shadow_set_bytes < naive.shadow_set_bytes
        assert robdd.union_cycles < naive.union_cycles

    def test_naive_wins_on_scattered_singletons(self):
        workload = scatter_pick(n=32, picks=8)
        naive = LineageTracer("naive").trace(workload.runner())
        robdd = LineageTracer("robdd").trace(workload.runner())
        assert naive.shadow_set_bytes < robdd.shadow_set_bytes

    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError):
            LineageTracer("bitmap")


class TestValidation:
    def test_screening_partitions_outputs(self):
        workload = block_select()
        trace = LineageTracer("robdd").trace(workload.runner())
        report = screen_outputs(trace, contaminated={0})  # first input cell
        assert set(report.suspect_outputs) | set(report.cleared_outputs) == {
            o.position for o in trace.outputs
        }
        assert not set(report.suspect_outputs) & set(report.cleared_outputs)

    def test_contamination_matches_ground_truth(self):
        workload = stencil_chain(n=12, rounds=2)
        trace = LineageTracer("robdd").trace(workload.runner())
        bad = 5
        report = screen_outputs(trace, contaminated={bad})
        expected_suspects = {
            k for k in range(workload.n_outputs) if bad in workload.expected_lineage(k)
        }
        assert set(report.suspect_outputs) == expected_suspects

    def test_uncontaminated_all_clear(self):
        workload = moving_average(n=8, window=2)
        trace = LineageTracer("robdd").trace(workload.runner())
        report = screen_outputs(trace, contaminated={999})
        assert report.suspect_outputs == []
        assert report.false_positive_candidates == []
