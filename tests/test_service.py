"""Tests for the analysis service (``repro.service``).

Unit layers (protocol framing, admission policy, result cache, job
specs) are tested in-process; the integration layers stand up a real
:class:`~repro.service.AnalysisServer` on a Unix socket (one test uses
TCP) with real worker processes, exercising every job kind, concurrent
clients, queue-full shedding, worker crash recovery, deadlines and
cache idempotency.  Chaos jobs (crash/hang injection, gated behind
``allow_chaos``) make the failure paths deterministic.
"""

import json
import socket
import threading
import time

import pytest

from repro.service import (
    AdmissionController,
    AnalysisServer,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    cache_key,
    execute_job,
    program_key,
    resolve_spec,
    wait_until_ready,
)
from repro.service.protocol import (
    EOF,
    FRAME,
    PENDING,
    FrameReader,
    MAX_FRAME_BYTES,
    ProtocolError,
    encode,
    recv_frame,
    send_frame,
)

VULN_SOURCE = (
    "fn safe(x) { out(1, 1); }\n"
    "fn admin(x) { out(2, 1); }\n"
    "fn main() {\n"
    "    var fp = alloc(1);\n"
    "    fp[0] = in(0);\n"
    "    icall(fp[0], 0);\n"
    "}\n"
)


@pytest.fixture
def server_factory(tmp_path):
    """Start servers on tmp Unix sockets; all stopped at teardown."""
    servers = []
    counter = [0]

    def start(**kwargs) -> AnalysisServer:
        counter[0] += 1
        kwargs.setdefault("socket_path", str(tmp_path / f"svc{counter[0]}.sock"))
        server = AnalysisServer(ServiceConfig(**kwargs)).start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            payload = {"kind": "trace", "values": [1, 2, 3], "nested": {"x": None}}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode({"k": 1})[:3])  # header cut short
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_without_allocation(self):
        a, b = socket.socketpair()
        try:
            import struct

            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="announced"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_frame(self):
        a, b = socket.socketpair()
        try:
            import struct

            a.sendall(struct.pack(">I", 3) + b"\xff\xfe\xfd")
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_frame_reader_survives_split_frames(self):
        """Bytes arriving one at a time across polls must still decode."""
        a, b = socket.socketpair()
        try:
            reader = FrameReader(b)
            wire = encode({"k": "v"})
            for byte in wire[:-1]:
                a.sendall(bytes([byte]))
                state, frame = reader.poll(timeout_s=0.5)
                assert state == PENDING and frame is None
            a.sendall(wire[-1:])
            state, frame = reader.poll(timeout_s=0.5)
            assert state == FRAME
            assert frame == {"k": "v"}
        finally:
            a.close()
            b.close()

    def test_frame_reader_two_frames_one_chunk(self):
        a, b = socket.socketpair()
        try:
            reader = FrameReader(b)
            a.sendall(encode({"n": 1}) + encode({"n": 2}))
            assert reader.poll(0.5) == (FRAME, {"n": 1})
            assert reader.poll(0.5) == (FRAME, {"n": 2})
            a.close()
            assert reader.poll(0.5) == (EOF, None)
        finally:
            b.close()

    def test_frame_reader_timeout_is_pending(self):
        a, b = socket.socketpair()
        try:
            reader = FrameReader(b)
            t0 = time.monotonic()
            assert reader.poll(0.05) == (PENDING, None)
            assert time.monotonic() - t0 < 2.0
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_idle_admits_requested_fidelity(self):
        ctrl = AdmissionController(8, degrade=True)
        decision = ctrl.decide(0, "trace", "full")
        assert (decision.action, decision.fidelity, decision.degraded) == (
            "admit", "full", False,
        )

    def test_degrade_band_steps_one_rung(self):
        ctrl = AdmissionController(8, degrade=True)  # degrade_at=4, shed_at=6
        decision = ctrl.decide(4, "trace", "full")
        assert decision.action == "admit"
        assert decision.fidelity == "dift"
        assert decision.degraded and "overload" in decision.reason

    def test_shed_band_drops_to_cheapest_rung(self):
        ctrl = AdmissionController(8, degrade=True)
        decision = ctrl.decide(6, "trace", "full")
        assert decision.fidelity == "log"

    def test_two_rung_ladder_skips_to_log(self):
        ctrl = AdmissionController(8, degrade=True)
        assert ctrl.decide(4, "slice", "full").fidelity == "log"

    def test_capacity_wall_rejects(self):
        ctrl = AdmissionController(8, degrade=True)
        decision = ctrl.decide(8, "trace", "full")
        assert decision.action == "reject"
        assert "capacity" in decision.reason

    def test_degrade_disabled_goes_straight_to_wall(self):
        ctrl = AdmissionController(8, degrade=False)
        assert ctrl.decide(7, "trace", "full").fidelity == "full"
        assert ctrl.decide(8, "trace", "full").action == "reject"

    def test_requested_low_fidelity_never_upgraded(self):
        ctrl = AdmissionController(8, degrade=True)
        assert ctrl.decide(4, "trace", "log").fidelity == "log"


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", {"a": [1, 2]})
        assert cache.get("k") == {"a": [1, 2]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_isolation_from_caller_mutation(self):
        cache = ResultCache()
        cache.put("k", {"xs": [1]})
        first = cache.get("k")
        first["xs"].append(99)
        assert cache.get("k") == {"xs": [1]}

    def test_bit_identity_of_repeats(self):
        cache = ResultCache()
        cache.put("k", {"b": 2, "a": 1})
        assert canonical(cache.get("k")) == canonical(cache.get("k"))

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh a
        cache.put("c", {"v": 3})  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None


# ---------------------------------------------------------------------------
# job specs + in-process execution
# ---------------------------------------------------------------------------
class TestJobs:
    def test_resolve_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            resolve_spec({"kind": "explode", "workload": "matmul"})

    def test_resolve_rejects_chaos_unless_allowed(self):
        with pytest.raises(ProtocolError, match="chaos"):
            resolve_spec({"kind": "chaos"})
        assert resolve_spec({"kind": "chaos"}, allow_chaos=True).kind == "chaos"

    def test_resolve_needs_exactly_one_program(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            resolve_spec({"kind": "trace"})
        with pytest.raises(ProtocolError, match="exactly one"):
            resolve_spec({"kind": "trace", "workload": "matmul", "source": "x"})

    def test_resolve_rejects_unknown_workload(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            resolve_spec({"kind": "trace", "workload": "quicksort3"})

    def test_resolve_rejects_bad_scale_and_deadline(self):
        with pytest.raises(ProtocolError, match="scale"):
            resolve_spec({"kind": "trace", "workload": "matmul", "scale": 0})
        with pytest.raises(ProtocolError, match="deadline"):
            resolve_spec({"kind": "trace", "workload": "matmul", "deadline_s": -1})

    def test_cache_key_separates_fidelity_and_params(self):
        base = {"kind": "trace", "workload": "matmul"}
        full = resolve_spec(dict(base))
        log = resolve_spec(dict(base, fidelity="log"))
        lined = resolve_spec(dict(base, params={"line": 3}))
        keys = {cache_key(full), cache_key(log), cache_key(lined)}
        assert len(keys) == 3

    def test_program_key_hashes_source(self):
        a = resolve_spec({"kind": "trace", "source": "fn main() { out(1, 1); }"})
        b = resolve_spec({"kind": "trace", "source": "fn main() { out(2, 1); }"})
        assert program_key(a) != program_key(b)
        assert program_key(a).startswith("src:")

    def test_execute_trace_fidelities(self):
        base = {"kind": "trace", "workload": "matmul", "scale": 1, "params": {}}
        full = execute_job(dict(base, fidelity="full"))
        dift = execute_job(dict(base, fidelity="dift"))
        log = execute_job(dict(base, fidelity="log"))
        assert "trace" in full and full["trace"]["stored_bytes"] > 0
        assert "dift" in dift and "trace" not in dift
        assert set(log) == {"kind", "fidelity", "run"}
        # all three fidelities ran the same program to the same outputs
        assert full["run"]["outputs"] == dift["run"]["outputs"] == log["run"]["outputs"]

    def test_execute_attack_full_names_root_cause(self):
        result = execute_job(
            {"kind": "attack", "source": VULN_SOURCE, "fidelity": "full",
             "params": {"inputs": {"0": [1]}}}
        )
        assert result["attack"]["detected"]
        assert result["attack"]["alerts"][0]["root_cause_line"] == 5  # fp[0] = in(0)

    def test_execute_attack_dift_detects_without_root_cause(self):
        result = execute_job(
            {"kind": "attack", "source": VULN_SOURCE, "fidelity": "dift",
             "params": {"inputs": {"0": [1]}}}
        )
        assert result["attack"]["detected"]
        assert "root_cause_line" not in result["attack"]["alerts"][0]

    def test_execute_slice_default_criterion(self):
        result = execute_job(
            {"kind": "slice", "workload": "sort", "scale": 1, "fidelity": "full",
             "params": {}}
        )
        assert result["slice"]["instances"] > 0
        assert result["slice"]["lines"]

    def test_execute_lineage_reports_outputs(self):
        result = execute_job(
            {"kind": "lineage", "workload": "rle", "scale": 1, "fidelity": "full",
             "params": {}}
        )
        assert result["lineage"]["outputs"]


# ---------------------------------------------------------------------------
# integration: live daemon
# ---------------------------------------------------------------------------
class TestServiceIntegration:
    def test_every_kind_roundtrips(self, server_factory):
        server = server_factory(workers=2, queue_capacity=16)
        with ServiceClient(server.config.address()) as client:
            for kind in ("trace", "slice", "attack", "lineage"):
                response = client.submit(kind, workload="matmul")
                assert response["status"] == "ok", response
                assert response["result"]["kind"] == kind
                assert response["result"]["fidelity"] == "full"

    def test_submitted_source_attack(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            response = client.submit(
                "attack", source=VULN_SOURCE, params={"inputs": {"0": [1]}}
            )
        assert response["status"] == "ok"
        assert response["result"]["attack"]["alerts"][0]["root_cause_line"] == 5

    def test_tcp_transport(self):
        config = ServiceConfig(port=0, workers=1)  # ephemeral port
        with AnalysisServer(config):
            health = wait_until_ready(config.address(), timeout_s=10.0)
            assert health["workers_alive"] == 1
            with ServiceClient(config.address()) as client:
                response = client.submit("trace", workload="fsm", fidelity="log")
            assert response["status"] == "ok"

    def test_concurrent_clients_interleaved_kinds(self, server_factory):
        server = server_factory(workers=2, queue_capacity=32)
        kinds = ("trace", "slice", "attack", "lineage")
        responses = {}
        lock = threading.Lock()

        def one(i):
            with ServiceClient(server.config.address()) as client:
                response = client.submit(
                    kinds[i % 4], workload="matmul", params={"tag": i}, cache=False
                )
            with lock:
                responses[i] = response

        threads = [threading.Thread(target=one, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads), "client hang"
        assert len(responses) == 8
        for i, response in responses.items():
            assert response["status"] == "ok", (i, response)
            assert response["result"]["kind"] == kinds[i % 4]

    def test_queue_full_is_rejected_not_hung(self, server_factory):
        server = server_factory(
            workers=1, queue_capacity=2, allow_chaos=True, degrade=False
        )
        address = server.config.address()
        occupiers = []

        def hang(i):
            with ServiceClient(address) as client:
                occupiers.append(
                    client.submit("chaos", params={"mode": "hang", "sleep_s": 1.0},
                                  cache=False, deadline_s=15.0)
                )

        threads = [threading.Thread(target=hang, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 5.0
        while server.pool.depth() < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.pool.depth() >= 2

        t0 = time.monotonic()
        with ServiceClient(address) as client:
            response = client.submit("trace", workload="matmul", cache=False)
        assert response["status"] == "rejected"
        assert "capacity" in response["reason"]
        assert response["retry_after_s"] > 0
        assert time.monotonic() - t0 < 2.0, "rejection must be immediate"
        for t in threads:
            t.join(timeout=30.0)
        assert all(r["status"] == "ok" for r in occupiers)

    def test_overload_degrades_fidelity_with_reason(self, server_factory):
        server = server_factory(
            workers=1, queue_capacity=8, allow_chaos=True, degrade=True
        )
        address = server.config.address()

        def hang(i):
            with ServiceClient(address) as client:
                client.submit("chaos", params={"mode": "hang", "sleep_s": 1.0},
                              cache=False, deadline_s=15.0)

        threads = [threading.Thread(target=hang, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 5.0
        while server.pool.depth() < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.pool.depth() >= 4  # degrade band (degrade_at = 4)

        with ServiceClient(address) as client:
            response = client.submit("trace", workload="matmul", cache=False,
                                     deadline_s=30.0)
        assert response["status"] == "degraded"
        assert response["result"]["fidelity"] in ("dift", "log")
        assert "overload" in response["reason"]
        for t in threads:
            t.join(timeout=30.0)

    def test_worker_crash_is_retried_then_failed_cleanly(self, server_factory):
        server = server_factory(workers=1, allow_chaos=True)
        with ServiceClient(server.config.address()) as client:
            response = client.submit("chaos", params={"mode": "exit"},
                                     cache=False, deadline_s=30.0)
            assert response["status"] == "error"
            assert "crashed" in response["error"]
            # the crashed worker was respawned; the service still works
            follow_up = client.submit("trace", workload="matmul")
            assert follow_up["status"] == "ok"
            stats = client.stats()
        assert stats["pool"]["respawns"] >= 1
        assert stats["pool"]["retries"] >= 1
        assert stats["health"]["workers_alive"] == 1

    def test_worker_crash_once_retry_succeeds(self, server_factory, tmp_path):
        server = server_factory(workers=1, allow_chaos=True)
        flag = str(tmp_path / "crash-once.flag")
        with ServiceClient(server.config.address()) as client:
            response = client.submit("chaos", params={"mode": "exit-once", "flag": flag},
                                     cache=False, deadline_s=30.0)
        assert response["status"] == "ok"
        assert response["result"]["chaos"]["survived_retry"] is True

    def test_deadline_cancels_hung_worker(self, server_factory):
        server = server_factory(workers=1, allow_chaos=True)
        with ServiceClient(server.config.address()) as client:
            t0 = time.monotonic()
            response = client.submit("chaos", params={"mode": "hang", "sleep_s": 60.0},
                                     cache=False, deadline_s=1.0)
            elapsed = time.monotonic() - t0
            assert response["status"] == "timeout"
            assert elapsed < 15.0, "timeout must be near the deadline, not the hang"
            # cancellation respawned the worker; the service still works
            follow_up = client.submit("trace", workload="matmul")
            assert follow_up["status"] == "ok"

    def test_cache_repeat_is_bit_identical_and_flagged(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            cold = client.submit("slice", workload="sort")
            warm = client.submit("slice", workload="sort")
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert canonical(cold["result"]) == canonical(warm["result"])

    def test_cache_opt_out(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            client.submit("trace", workload="fsm", cache=False)
            again = client.submit("trace", workload="fsm", cache=False)
        assert again["cached"] is False

    def test_degraded_results_never_poison_full_cache(self, server_factory):
        """A log-fidelity result must not be served to a full request."""
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            log = client.submit("trace", workload="bfs", fidelity="log")
            full = client.submit("trace", workload="bfs", fidelity="full")
        assert log["result"]["fidelity"] == "log"
        assert full["cached"] is False
        assert full["result"]["fidelity"] == "full"

    def test_malformed_job_is_clean_error(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            response = client.request({"kind": "trace"})  # no program
        assert response["status"] == "error"
        assert "exactly one" in response["error"]

    def test_compile_error_is_clean_error(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            response = client.submit("trace", source="fn main() { x = ; }")
        assert response["status"] == "error"
        assert "CompileError" in response["error"]

    def test_stats_and_health_fields(self, server_factory):
        server = server_factory(workers=2)
        with ServiceClient(server.config.address()) as client:
            client.submit("trace", workload="matmul")
            health = client.health()
            stats = client.stats()
        assert health["ok"] and health["workers_alive"] == 2
        assert health["queue_capacity"] == 8
        assert stats["pool"]["completed"] >= 1
        assert stats["cache"]["misses"] >= 1
        assert stats["metrics"]["counters"]["service.jobs.admitted"] >= 1
        assert "service.latency.exec_s" in stats["metrics"]["histograms"]

    def test_shutdown_request_stops_daemon(self, tmp_path):
        config = ServiceConfig(socket_path=str(tmp_path / "down.sock"), workers=1)
        server = AnalysisServer(config)
        server.start()
        done = threading.Event()

        def run():
            server.serve_forever()
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        with ServiceClient(config.address()) as client:
            response = client.shutdown()
        assert response["shutting_down"] is True
        assert done.wait(timeout=10.0), "serve_forever did not exit"

    def test_connect_failure_raises_service_error(self, tmp_path):
        with pytest.raises(ServiceError, match="cannot connect"):
            ServiceClient(str(tmp_path / "nothing.sock")).connect()

    def test_wait_until_ready_times_out(self, tmp_path):
        with pytest.raises(ServiceError, match="not ready"):
            wait_until_ready(str(tmp_path / "nothing.sock"), timeout_s=0.3)


class TestServiceConfig:
    def test_exactly_one_transport(self, tmp_path):
        with pytest.raises(ValueError):
            AnalysisServer(ServiceConfig())
        with pytest.raises(ValueError):
            AnalysisServer(ServiceConfig(socket_path="x", port=1))

    def test_address_forms(self):
        assert ServiceConfig(socket_path="/x/y.sock").address() == "unix:///x/y.sock"
        assert ServiceConfig(port=81).address() == "tcp://127.0.0.1:81"
