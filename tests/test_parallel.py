"""Unit tests for the out-of-process DIFT helper (`repro.multicore.parallel`):
ring-buffer wraparound and batching, attack parity with the inline
engine, the i64 sink-value fixup path, batch-size flag resolution, the
experiment fan-out, and the telemetry surface."""

from dataclasses import replace

import pytest

from repro import fastpath
from repro.dift import BoolTaintPolicy, DIFTEngine, PCTaintPolicy, SinkRule
from repro.fastpath import DEFAULT_PARALLEL_BATCH, FastPathConfig, parallel_batch_size
from repro.harness.experiments import run_all
from repro.lang import compile_source
from repro.multicore import ParallelHelperDIFT
from repro.telemetry import MetricsRegistry
from repro.vm import Machine, RunStatus
from repro.workloads import race_kernels
from repro.workloads.spec_like import matmul

RECORD_SINKS = lambda: [SinkRule(kind="out", action="record")]  # noqa: E731


def _inline_run(machine_factory, policy=None, sinks=None):
    m = machine_factory()
    engine = DIFTEngine(
        policy or BoolTaintPolicy(),
        sinks=RECORD_SINKS() if sinks is None else sinks,
    ).attach(m)
    res = m.run()
    return m, engine, res


def _parallel_run(machine_factory, policy=None, sinks=None, **kwargs):
    m = machine_factory()
    helper = ParallelHelperDIFT(
        policy or BoolTaintPolicy(),
        sinks=RECORD_SINKS() if sinks is None else sinks,
        **kwargs,
    ).attach(m)
    res = m.run()
    helper.finish()
    return m, helper, res


def _assert_taint_equal(engine, helper):
    assert [str(a) for a in engine.alerts] == [str(a) for a in helper.alerts]
    assert engine.stats == helper.stats
    assert engine.shadow.regs == helper.shadow.regs
    assert engine.shadow.mem_items() == helper.shadow.mem_items()
    assert engine.shadow.peak_locations == helper.shadow.peak_locations


class TestRingBuffer:
    def test_tiny_ring_wraps_and_stays_identical(self):
        # 64 records = 1536 bytes of ring for a multi-thousand-record
        # run: the write position laps the buffer many times over.
        factory = lambda: matmul(6).runner().machine()  # noqa: E731
        _, engine, _ = _inline_run(factory)
        _, helper, _ = _parallel_run(factory, batch_size=16, ring_records=64)
        _assert_taint_equal(engine, helper)
        rep = helper.report()
        assert rep.messages > 64  # really wrapped
        assert rep.bytes_shipped == (rep.messages + rep.markers) * 24
        assert rep.batches >= rep.messages * 24 // (64 * 24 // 2)

    def test_ring_too_small_rejected(self):
        with pytest.raises(ValueError):
            ParallelHelperDIFT(BoolTaintPolicy(), ring_records=32)

    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_batching_is_observably_invisible(self, batch_size):
        factory = lambda: matmul(5).runner().machine()  # noqa: E731
        _, engine, _ = _inline_run(factory)
        _, helper, _ = _parallel_run(factory, batch_size=batch_size)
        _assert_taint_equal(engine, helper)

    def test_report_accounting_consistent(self):
        factory = lambda: matmul(5).runner().machine()  # noqa: E731
        _, helper, res = _parallel_run(factory, batch_size=32)
        rep = helper.report()
        assert rep.instructions == res.instructions
        assert 0 < rep.messages <= rep.instructions
        assert rep.defs > 0
        assert rep.worker_busy_s >= 0.0
        assert 0.0 <= rep.worker_utilization <= 1.0

    def test_finish_is_idempotent(self):
        factory = lambda: matmul(4).runner().machine()  # noqa: E731
        _, helper, _ = _parallel_run(factory)
        assert helper.finish() is helper.finish()

    def test_properties_auto_finish(self):
        m = matmul(4).runner().machine()
        helper = ParallelHelperDIFT(BoolTaintPolicy(), sinks=RECORD_SINKS()).attach(m)
        m.run()
        # No explicit finish: reading the result surface must collect
        # the worker transparently.
        assert helper.stats.instructions > 0
        assert all(a.sink == "out" for a in helper.alerts)


ATTACK_SRC = """
fn safe(x) { out(1, 1); }
fn admin(x) { out(2, 1); }
fn main() {
    var fp = alloc(1);
    fp[0] = in(0);      // directly attacker-controlled pointer
    icall(fp[0], 0);
}
"""


def _attack_machine():
    cp = compile_source(ATTACK_SRC)
    m = Machine(cp.program)
    m.io.provide(0, [1])
    return m


class TestAttackParity:
    def test_record_mode_alerts_match_inline(self):
        sinks = [SinkRule(kind="icall", action="record")]
        _, engine, _ = _inline_run(_attack_machine, policy=PCTaintPolicy(), sinks=sinks)
        _, helper, _ = _parallel_run(
            _attack_machine, policy=PCTaintPolicy(), sinks=sinks
        )
        assert len(engine.alerts) == 1
        _assert_taint_equal(engine, helper)
        assert helper.report().attack is None

    def test_raise_mode_is_async_but_equivalent(self):
        sinks = [SinkRule(kind="icall", action="raise")]
        m_in = _attack_machine()
        engine = DIFTEngine(PCTaintPolicy(), sinks=sinks).attach(m_in)
        res_in = m_in.run()
        # Inline: the raise stops the guest at the sink.
        assert res_in.status is RunStatus.FAILED
        assert res_in.failure.kind == "attack_detected"

        # Parallel: the guest runs to completion; the helper core's
        # verdict arrives asynchronously with the engine state frozen
        # exactly where the inline engine raised.
        m_par = _attack_machine()
        helper = ParallelHelperDIFT(PCTaintPolicy(), sinks=sinks).attach(m_par)
        res_par = m_par.run()
        assert res_par.status is not RunStatus.FAILED
        rep = helper.report()
        assert rep.attack is not None
        assert rep.culprit_pc == engine.alerts[0].label
        _assert_taint_equal(engine, helper)


class TestSinkValueFixups:
    def test_values_beyond_i64_survive_the_24_byte_record(self):
        src = """
        fn main() {
            var x = in(0);
            var i = 0;
            while (i < 5) { x = x * x; i = i + 1; }
            out(x, 1);
        }
        """

        def factory():
            cp = compile_source(src)
            m = Machine(cp.program)
            m.io.provide(0, [3])  # 3 ** 32 >> 2 ** 63
            return m

        _, engine, _ = _inline_run(factory)
        _, helper, _ = _parallel_run(factory)
        assert len(engine.alerts) == 1
        assert engine.alerts[0].value == 3**32
        _assert_taint_equal(engine, helper)


class TestMultithreaded:
    @pytest.mark.parametrize("k", race_kernels(), ids=lambda k: k.name)
    def test_race_kernels_identical(self, k):
        factory = lambda: k.runner().machine()  # noqa: E731
        _, engine, _ = _inline_run(factory)
        _, helper, _ = _parallel_run(factory, batch_size=8)
        _assert_taint_equal(engine, helper)


class TestBatchSizeFlag:
    def test_explicit_wins_over_flags(self):
        assert parallel_batch_size(7) == 7

    def test_explicit_must_be_positive(self):
        with pytest.raises(ValueError):
            parallel_batch_size(0)

    def test_flag_off_means_unbatched(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH_PARALLEL_BATCH", raising=False)
        with fastpath.overridden(FastPathConfig.all_off()):
            assert parallel_batch_size() == 1

    def test_flag_on_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH_PARALLEL_BATCH", raising=False)
        cfg = replace(FastPathConfig.all_off(), parallel_batch=True)
        with fastpath.overridden(cfg):
            assert parallel_batch_size() == DEFAULT_PARALLEL_BATCH

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH_PARALLEL_BATCH", "37")
        cfg = replace(FastPathConfig.all_off(), parallel_batch=True)
        with fastpath.overridden(cfg):
            assert parallel_batch_size() == 37

    def test_batching_is_opt_in_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        monkeypatch.delenv("REPRO_FASTPATH_PARALLEL", raising=False)
        assert fastpath.from_env().parallel_batch is False
        monkeypatch.setenv("REPRO_FASTPATH_PARALLEL", "1")
        assert fastpath.from_env().parallel_batch is True
        # The master switch can only force batching off, never on.
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert fastpath.from_env().parallel_batch is False

    def test_helper_resolves_batch_from_flags(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH_PARALLEL_BATCH", raising=False)
        cfg = replace(FastPathConfig.all_off(), parallel_batch=True)
        with fastpath.overridden(cfg):
            helper = ParallelHelperDIFT(BoolTaintPolicy())
        assert helper.batch_size == DEFAULT_PARALLEL_BATCH


class TestExperimentFanOut:
    SELECTION = ["E9", "E7", "E10"]

    def test_workers_preserve_selection_order_and_results(self):
        sequential = run_all(self.SELECTION)
        fanned = run_all(self.SELECTION, workers=2)
        assert [r.experiment for r in fanned] == self.SELECTION
        for seq, fan in zip(sequential, fanned):
            assert seq.experiment == fan.experiment
            assert seq.headline == fan.headline

    def test_timeout_falls_back_to_sequential(self, capsys):
        results = run_all(self.SELECTION, workers=2, timeout_s=1e-6)
        assert [r.experiment for r in results] == self.SELECTION
        assert "falling back to sequential" in capsys.readouterr().err


class TestTelemetry:
    def test_channel_counters_published(self):
        factory = lambda: matmul(5).runner().machine()  # noqa: E731
        _, helper, res = _parallel_run(factory, batch_size=64)
        registry = MetricsRegistry()
        helper.publish_telemetry(registry)
        flat = registry.flat()
        rep = helper.report()
        assert flat["multicore.parallel.messages"] == rep.messages
        assert flat["multicore.parallel.instructions"] == res.instructions
        assert flat["multicore.parallel.batches"] == rep.batches
        assert flat["multicore.parallel.bytes_shipped"] == rep.bytes_shipped
        assert flat["multicore.parallel.defs"] == rep.defs
        assert flat["multicore.parallel.batch_size"] == 64
        assert flat["dift.instructions"] == res.instructions

    def test_worker_spans_ship_over_side_pipe(self):
        from repro.telemetry import NULL_TRACER, WallSpanTracer

        factory = lambda: matmul(5).runner().machine()  # noqa: E731
        _, helper, _ = _parallel_run(factory, batch_size=64)
        rep = helper.report()
        # one lifetime span plus at least one coalesced busy burst,
        # all wall-epoch-us so they line up with service-tier spans.
        names = [s["name"] for s in rep.spans]
        assert names[0] == "helper.worker"
        assert "helper.busy" in names
        lifetime = rep.spans[0]
        assert lifetime["args"]["busy_s"] >= 0.0
        for s in rep.spans[1:]:
            assert lifetime["ts"] <= s["ts"]
            assert s["ts"] + s["dur"] <= lifetime["ts"] + lifetime["dur"]
        tracer = WallSpanTracer(enabled=True)
        assert helper.publish_spans(tracer) == len(rep.spans)
        assert len(tracer.chrome_events()) == len(rep.spans)
        # cycle-clock tracers lack the retroactive interface: no-op.
        assert helper.publish_spans(NULL_TRACER) == 0
