"""Differential tests over randomly generated programs.

Cross-checks the stack's global invariants on programs nobody wrote by
hand:

* tracing/instrumentation never changes guest behaviour;
* the online naive tracer and the offline two-phase baseline build the
  same dependence graph;
* the optimized tracer's DDG supports the same backward slices as the
  naive one (the zero-byte inferred edges preserve structure);
* full replay from a log is bit-identical;
* snapshots taken mid-run resume to the same final state.
"""

import pytest

from repro.ontrac import OfflineTracer, OnlineTracer, OntracConfig
from repro.reduction import CheckpointingLogger, Replayer
from repro.slicing import backward_slice
from repro.workloads.generators import GeneratorConfig, generate

SEEDS = list(range(12))
INPUT_SEEDS = [100, 101, 102, 103]


def generated(seed, use_inputs=False):
    return generate(seed, GeneratorConfig(use_inputs=use_inputs))


@pytest.mark.parametrize("seed", SEEDS)
def test_tracing_preserves_behaviour(seed):
    gp = generated(seed)
    plain_machine, plain = gp.runner().run()
    traced_machine, tracer, traced = gp.runner().run_traced(OntracConfig())
    assert traced.status is plain.status
    assert traced.instructions == plain.instructions
    assert traced_machine.io.output(1) == plain_machine.io.output(1)
    assert traced.cycles.base == plain.cycles.base  # only overhead differs


@pytest.mark.parametrize("seed", SEEDS)
def test_online_naive_equals_offline_ddg(seed):
    gp = generated(seed)
    _, online, _ = gp.runner().run_traced(OntracConfig.unoptimized(buffer_bytes=1 << 26))
    machine = gp.runner().machine()
    offline = OfflineTracer(gp.compiled.program).attach(machine)
    machine.run(max_instructions=500_000)
    off_ddg = offline.postprocess()
    on_ddg = online.dependence_graph()
    assert set(on_ddg.nodes) == set(off_ddg.nodes)
    for seq in on_ddg.backward:
        on_edges = {(p, k) for p, k in on_ddg.backward[seq] if k.value in ("reg", "mem")}
        off_edges = {
            (p, k) for p, k in off_ddg.backward.get(seq, []) if k.value in ("reg", "mem")
        }
        assert on_edges == off_edges, f"seq {seq} differs"


@pytest.mark.parametrize("seed", SEEDS)
def test_optimized_slices_equal_naive_slices(seed):
    gp = generated(seed)
    _, naive, _ = gp.runner().run_traced(OntracConfig.unoptimized(buffer_bytes=1 << 26))
    _, optimized, _ = gp.runner().run_traced(
        OntracConfig(buffer_bytes=1 << 26, hot_trace_threshold=5)
    )
    naive_ddg = naive.dependence_graph()
    optimized_ddg = optimized.dependence_graph()
    # slice at the final out() instance (present in both graphs)
    from repro.isa import Opcode

    out_pcs = [
        pc for pc in range(len(gp.compiled.program.code))
        if gp.compiled.program.code[pc].opcode is Opcode.OUT
    ]
    for out_pc in out_pcs:
        criterion = naive_ddg.last_instance_of_pc(out_pc)
        if criterion is None or criterion not in optimized_ddg.nodes:
            continue
        a = backward_slice(naive_ddg, criterion)
        b = backward_slice(optimized_ddg, criterion)
        assert a.seqs == b.seqs, f"slice at pc {out_pc} differs"


@pytest.mark.parametrize("seed", INPUT_SEEDS)
def test_input_programs_roundtrip(seed):
    gp = generated(seed, use_inputs=True)
    m1, r1 = gp.runner().run()
    m2, r2 = gp.runner().run()
    assert m1.io.output(1) == m2.io.output(1)
    assert r1.instructions == r2.instructions


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_replay_from_log_is_identical(seed):
    gp = generated(seed, use_inputs=False)
    runner = gp.runner()
    machine = runner.machine()
    logger = CheckpointingLogger(checkpoint_interval=200).attach(machine)
    result = machine.run(max_instructions=runner.max_instructions)
    log = logger.finalize()
    outcome = Replayer(gp.compiled.program, log).replay()
    assert outcome.machine.io.output(1) == machine.io.output(1)
    assert outcome.result.instructions == result.instructions

    if len(log.checkpoints) > 1:
        mid = log.checkpoints[len(log.checkpoints) // 2]
        partial = Replayer(gp.compiled.program, log).replay(checkpoint=mid)
        assert partial.machine.io.output(1) == machine.io.output(1)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_snapshot_resume_equivalence(seed):
    from repro.vm import restore_snapshot, take_snapshot

    gp = generated(seed)
    machine = gp.runner().machine()
    machine.run(max_instructions=50)
    snap = take_snapshot(machine)
    machine.run(max_instructions=500_000)
    final_output = machine.io.output(1)

    fresh = gp.runner().machine()
    restore_snapshot(fresh, snap)
    fresh.run(max_instructions=500_000)
    assert fresh.io.output(1) == final_output


def test_generator_is_deterministic():
    a = generate(42).source
    b = generate(42).source
    assert a == b
    assert generate(43).source != a
