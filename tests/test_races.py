"""Unit tests for race detection: lockset/HB baseline, flag-sync
recognition, sync-aware filtering against kernel ground truth."""

from repro.ontrac import OnlineTracer, OntracConfig
from repro.races import (
    RaceDetector,
    SyncAwareRaceDetector,
    SyncHistory,
    SyncRecognizer,
)
from repro.reduction import CheckpointingLogger
from repro.workloads.splash_like import (
    flag_sync_kernel,
    locked_counter_kernel,
    mixed_kernel,
    race_kernels,
    true_race_kernel,
)


def analyze(kernel):
    runner = kernel.runner()
    machine = runner.machine()
    tracer = OnlineTracer(
        runner.program, OntracConfig(buffer_bytes=1 << 23, record_war_waw=True)
    ).attach(machine)
    logger = CheckpointingLogger(checkpoint_interval=1 << 30).attach(machine)
    recognizer = SyncRecognizer()
    machine.hooks.subscribe(recognizer)
    machine.run(max_instructions=runner.max_instructions)
    log = logger.finalize()
    ddg = tracer.dependence_graph()
    history = SyncHistory.from_event_log(log)
    detector = RaceDetector(ddg, history)
    aware = SyncAwareRaceDetector(detector, recognizer.flag_syncs)
    return kernel, detector, aware, recognizer


def reported_lines(kernel, reports):
    lines = set()
    for r in reports:
        for pc in (r.dependence.consumer_pc, r.dependence.producer_pc):
            line = kernel.compiled.line_of(pc)
            if line:
                lines.add(line)
    return lines


class TestSyncHistory:
    def test_lock_regions_extracted(self):
        kernel, detector, _, _ = analyze(locked_counter_kernel())
        history = detector.history
        assert history.lock_regions  # both workers locked
        for tid, regions in history.lock_regions.items():
            for lock_id, acq, rel in regions:
                assert acq < rel

    def test_spawn_and_join_extracted(self):
        kernel, detector, _, _ = analyze(true_race_kernel())
        assert 1 in detector.history.spawns
        assert detector.history.joins


class TestBaselineDetector:
    def test_locked_counter_no_races(self):
        kernel, detector, _, _ = analyze(locked_counter_kernel())
        assert detector.races() == []

    def test_lock_filter_reason_recorded(self):
        kernel, detector, _, _ = analyze(locked_counter_kernel())
        filtered = [r for r in detector.detect() if r.filtered]
        assert any("lock" in r.filtered for r in filtered)

    def test_true_race_reported(self):
        kernel, detector, _, _ = analyze(true_race_kernel())
        races = detector.races()
        assert races
        lines = reported_lines(kernel, races)
        assert lines & kernel.racy_lines

    def test_join_orders_accesses(self):
        # A write in the child and a read after join must not be a race.
        from repro.lang import compile_source
        from repro.runner import ProgramRunner

        src = """
        global cell;
        fn writer(v) { cell = v; }
        fn main() {
            var t = spawn(writer, 5);
            join(t);
            out(cell, 1);
        }
        """
        cp = compile_source(src)
        runner = ProgramRunner(cp.program)
        machine = runner.machine()
        tracer = OnlineTracer(cp.program, OntracConfig(record_war_waw=True)).attach(machine)
        logger = CheckpointingLogger(checkpoint_interval=1 << 30).attach(machine)
        machine.run()
        detector = RaceDetector(
            tracer.dependence_graph(), SyncHistory.from_event_log(logger.finalize())
        )
        assert detector.races() == []


class TestSyncRecognizer:
    def test_flag_spin_recognized(self):
        kernel, _, _, recognizer = analyze(flag_sync_kernel())
        assert recognizer.flag_syncs
        sync = recognizer.flag_syncs[0]
        assert sync.setter_tid != sync.waiter_tid
        assert sync.spins >= recognizer.spin_threshold

    def test_no_spins_in_lock_kernel(self):
        kernel, _, _, recognizer = analyze(locked_counter_kernel())
        assert recognizer.flag_syncs == []


class TestSyncAwareFiltering:
    def test_flag_kernel_fully_filtered(self):
        kernel, _, aware, _ = analyze(flag_sync_kernel())
        result = aware.detect()
        assert result.reported == []
        assert result.filtered_flag_accesses or result.filtered_by_flag_ordering

    def test_mixed_kernel_keeps_only_true_race(self):
        kernel, _, aware, _ = analyze(mixed_kernel())
        result = aware.detect()
        lines = reported_lines(kernel, result.reported)
        assert lines & kernel.racy_lines
        assert not lines & kernel.flag_lines

    def test_filter_counts_add_up(self):
        kernel, _, aware, _ = analyze(mixed_kernel())
        result = aware.detect()
        assert result.baseline_count == (
            len(result.reported)
            + len(result.filtered_flag_accesses)
            + len(result.filtered_by_flag_ordering)
            + len(result.filtered_by_locks_or_hb)
        )

    def test_ground_truth_on_all_kernels(self):
        for kernel in race_kernels():
            _, _, aware, _ = analyze(kernel)
            result = aware.detect()
            lines = reported_lines(kernel, result.reported)
            if kernel.racy_lines:
                assert lines & kernel.racy_lines, f"{kernel.name}: true race missed"
            else:
                assert not result.reported, f"{kernel.name}: false positives {lines}"
