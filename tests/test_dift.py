"""Unit tests for the DIFT core: policies, shadow state, propagation,
sources, sinks, attack detection."""

import pytest

from repro.dift import BoolTaintPolicy, DIFTEngine, PCTaintPolicy, ShadowState, SinkRule
from repro.lang import compile_source
from repro.vm import Machine, RunStatus

from .conftest import compile_and_run


def run_dift(src, inputs=None, policy=None, **engine_kw):
    cp = compile_source(src)
    m = Machine(cp.program)
    for chan, values in (inputs or {}).items():
        m.io.provide(chan, values)
    engine = DIFTEngine(policy or BoolTaintPolicy(), **engine_kw).attach(m)
    res = m.run()
    return m, res, engine, cp


# --- shadow state ----------------------------------------------------------
class TestShadow:
    def test_none_means_untainted(self):
        s = ShadowState(BoolTaintPolicy())
        s.set_reg(0, 1, True)
        s.set_reg(0, 1, None)
        assert s.reg(0, 1) is None
        assert s.tainted_regs == 0

    def test_cells_and_ranges(self):
        s = ShadowState(BoolTaintPolicy())
        for a in range(10, 15):
            s.set_cell(a, True)
        s.clear_range(11, 3)
        assert s.cell(10) is True and s.cell(14) is True
        assert s.cell(12) is None
        assert s.tainted_cells == 2

    def test_shadow_bytes_scale_with_policy(self):
        b = ShadowState(BoolTaintPolicy())
        p = ShadowState(PCTaintPolicy())
        for s in (b, p):
            s.set_cell(1, 1)
            s.set_cell(2, 1)
        assert p.shadow_bytes == 4 * b.shadow_bytes

    def test_snapshot_isolated(self):
        s = ShadowState(BoolTaintPolicy())
        s.set_cell(1, True)
        snap = s.snapshot()
        s.set_cell(2, True)
        assert snap.cell(2) is None

    @pytest.mark.parametrize("paged", [False, True])
    def test_clear_range_over_untainted_holes(self, paged):
        # Regression: a range spanning mostly-untainted addresses must
        # remove exactly the tainted cells inside it, in one pass, with
        # the tainted-cell count staying consistent.
        s = ShadowState(BoolTaintPolicy(), paged=paged)
        tainted = [3, 4, 9_000, 9_001, 50_000]
        for a in tainted:
            s.set_cell(a, True)
        assert s.tainted_cells == len(tainted)
        # Range is far larger than the tainted population and overlaps
        # two distant clusters plus the untainted gulf between them.
        s.clear_range(2, 10_000)
        assert s.tainted_cells == 1
        assert s.cell(50_000) is True
        for a in tainted[:-1]:
            assert s.cell(a) is None
        # Clearing an entirely-untainted range is a no-op.
        s.clear_range(100, 40_000)
        assert s.tainted_cells == 1
        s.clear_range(49_999, 3)
        assert s.tainted_cells == 0
        assert s.mem_items() == {}


# --- propagation ------------------------------------------------------------
class TestPropagation:
    def test_input_taints_arithmetic_chain(self):
        m, res, eng, cp = run_dift(
            """
            fn main() {
                var x = in(0);
                var y = x * 2 + 1;
                var z = 5;
                out(y, 1);
                out(z, 1);
            }
            """,
            inputs={0: [10]},
        )
        assert eng.stats.sources == 1
        assert eng.stats.tainted_instructions > 0
        # y's slot (memory) is tainted, z's is not
        tainted = set(eng.shadow.mem)
        y_values = [a for a in tainted]
        assert len(y_values) >= 1

    def test_constants_clear_taint(self):
        m, res, eng, _ = run_dift(
            """
            fn main() {
                var x = in(0);
                x = 7;          // overwritten with a constant
                out(x, 1);
            }
            """,
            inputs={0: [1]},
            sinks=[SinkRule(kind="out", action="record")],
        )
        assert res.status is RunStatus.EXITED
        assert eng.alerts == []  # the out() emits an untainted constant

    def test_taint_through_memory(self):
        m, res, eng, _ = run_dift(
            """
            global buf[4];
            fn main() {
                buf[2] = in(0);
                var y = buf[2];
                out(y, 1);
            }
            """,
            inputs={0: [5]},
            sinks=[SinkRule(kind="out", action="record")],
        )
        assert len(eng.alerts) == 1

    def test_taint_through_call_and_return(self):
        m, res, eng, _ = run_dift(
            """
            fn id(x) { return x; }
            fn main() { out(id(in(0)), 1); }
            """,
            inputs={0: [3]},
            sinks=[SinkRule(kind="out", action="record")],
        )
        assert len(eng.alerts) == 1

    def test_taint_through_spawn_argument(self):
        m, res, eng, _ = run_dift(
            """
            fn child(x) { out(x, 1); }
            fn main() {
                var t = spawn(child, in(0));
                join(t);
            }
            """,
            inputs={0: [9]},
            sinks=[SinkRule(kind="out", action="record")],
        )
        assert len(eng.alerts) == 1

    def test_alloc_clears_stale_taint_on_reuse(self):
        m, res, eng, _ = run_dift(
            """
            fn main() {
                var p = alloc(2);
                p[0] = in(0);
                free(p);
                var q = alloc(2);   // same block reused
                out(q[0], 1);       // fresh memory: untainted
            }
            """,
            inputs={0: [4]},
            sinks=[SinkRule(kind="out", action="record")],
        )
        assert eng.alerts == []

    def test_address_propagation_off_by_default(self):
        src = """
        global table[4];
        fn main() {
            table[0] = 7;
            var i = in(0);
            out(table[i], 1);   // value untainted, index tainted
        }
        """
        _, _, eng, _ = run_dift(src, inputs={0: [0]}, sinks=[SinkRule("out", action="record")])
        assert eng.alerts == []
        _, _, eng2, _ = run_dift(
            src,
            inputs={0: [0]},
            sinks=[SinkRule("out", action="record")],
            propagate_addresses=True,
        )
        assert len(eng2.alerts) == 1

    def test_source_channel_filter(self):
        src = "fn main() { out(in(0) + in(3), 1); }"
        _, _, eng, _ = run_dift(
            src,
            inputs={0: [1], 3: [2]},
            sinks=[SinkRule("out", action="record")],
            source_channels=frozenset({3}),
        )
        assert eng.stats.sources == 1
        assert len(eng.alerts) == 1  # channel-3 taint reaches the sink


# --- sinks / attacks -----------------------------------------------------------
ATTACK_SRC = """
fn greet(x) { out(100 + x, 1); }
fn admin(x) { out(9999, 1); }
fn main() {
    var buf = alloc(4);
    var fp = alloc(1);
    fp[0] = fnid(greet);
    var n = in(0);
    var i = 0;
    while (i < n) {
        buf[i] = in(0);     // no bounds check: can overwrite fp[0]
        i = i + 1;
    }
    icall(fp[0], 7);
}
"""


class TestSinks:
    def test_benign_run_not_flagged(self):
        m, res, eng, _ = run_dift(ATTACK_SRC, inputs={0: [2, 5, 6]})
        assert res.status is RunStatus.EXITED
        assert m.io.output(1) == [107]
        assert eng.alerts == []

    def test_overflow_attack_detected(self):
        m, res, eng, _ = run_dift(ATTACK_SRC, inputs={0: [5, 0, 0, 0, 0, 1]})
        assert res.status is RunStatus.FAILED
        assert res.failure.kind == "attack_detected"
        assert m.io.output(1) == []  # hijacked call never ran
        assert eng.alerts[0].sink == "icall"

    def test_pc_taint_names_root_cause(self):
        cp = compile_source(ATTACK_SRC)
        m = Machine(cp.program)
        m.io.provide(0, [5, 0, 0, 0, 0, 1])
        eng = DIFTEngine(PCTaintPolicy()).attach(m)
        res = m.run()
        assert res.failure.kind == "attack_detected"
        culprit_line = cp.line_of(eng.alerts[0].label)
        # the most recent writer of the hijacked pointer is the
        # overflowing copy statement `buf[i] = in(0);`
        assert "buf[i] = in(0)" in ATTACK_SRC.splitlines()[culprit_line - 1]
        assert res.failure.message != ""

    def test_record_action_does_not_stop_guest(self):
        m, res, eng, _ = run_dift(
            ATTACK_SRC,
            inputs={0: [5, 0, 0, 0, 0, 1]},
            sinks=[SinkRule(kind="icall", action="record")],
        )
        assert res.status is RunStatus.EXITED
        assert m.io.output(1) == [9999]  # attack succeeded, but was logged
        assert len(eng.alerts) == 1

    def test_out_sink_channel_filter(self):
        src = "fn main() { out(in(0), 1); out(in(0), 2); }"
        _, _, eng, _ = run_dift(
            src,
            inputs={0: [1, 2]},
            sinks=[SinkRule(kind="out", channels=frozenset({2}), action="record")],
        )
        assert len(eng.alerts) == 1
        assert eng.alerts[0].sink == "out"


# --- policies & accounting ----------------------------------------------------------
class TestPoliciesAndCosts:
    def test_pc_policy_label_is_latest_writer(self):
        cp = compile_source(
            """
            fn main() {
                var x = in(0);
                var y = x + 1;   // y's label must be this statement
                out(y, 1);
            }
            """
        )
        m = Machine(cp.program)
        m.io.provide(0, [1])
        eng = DIFTEngine(
            PCTaintPolicy(), sinks=[SinkRule("out", action="record")]
        ).attach(m)
        m.run()
        label = eng.alerts[0].label
        # copies preserve labels, so the label names the computation of
        # y on line 4, not the load that delivered it to out()
        assert cp.line_of(label) == 4

    def test_bool_policy_combine(self):
        p = BoolTaintPolicy()
        assert p.combine([True, True]) is True

    def test_overhead_charged_inline(self):
        src = "fn main() { var x = in(0); out(x + 1, 1); }"
        cp = compile_source(src)
        m = Machine(cp.program)
        m.io.provide(0, [1])
        DIFTEngine(BoolTaintPolicy(), sinks=[]).attach(m)
        res = m.run()
        assert res.cycles.overhead > 0
        assert res.cycles.slowdown > 1.0

    def test_overhead_suppressed_for_helper_mode(self):
        src = "fn main() { var x = in(0); out(x + 1, 1); }"
        cp = compile_source(src)
        m = Machine(cp.program)
        m.io.provide(0, [1])
        DIFTEngine(BoolTaintPolicy(), sinks=[], charge_overhead=False).attach(m)
        res = m.run()
        assert res.cycles.overhead == 0

    def test_memory_overhead_metric(self):
        m, res, eng, _ = run_dift(
            """
            global sink[64];
            fn main() {
                var i = 0;
                while (i < 64) { sink[i] = in(0); i = i + 1; }
            }
            """,
            inputs={0: list(range(64))},
            sinks=[],
        )
        assert eng.memory_overhead(m) > 0

    def test_stats_taint_rate(self):
        m, res, eng, _ = run_dift(
            "fn main() { var x = in(0); var y = x + 1; var z = 1 + 2; }",
            inputs={0: [1]},
            sinks=[],
        )
        assert 0 < eng.stats.taint_rate < 1
