"""Unit tests for the MiniC front end: lexer, parser, code generator."""

import pytest

from repro.lang import CompileError, TokKind, compile_source, parse, tokenize
from repro.vm import STDOUT, Machine, RandomScheduler, RunStatus


def run_minic(src, inputs=None, scheduler=None, max_instructions=2_000_000):
    cp = compile_source(src)
    m = Machine(cp.program, scheduler=scheduler)
    for chan, values in (inputs or {}).items():
        m.io.provide(chan, values)
    res = m.run(max_instructions=max_instructions)
    return m, res, cp


def out_of(src, **kw):
    m, res, _ = run_minic(src, **kw)
    assert res.status in (RunStatus.EXITED, RunStatus.HALTED), res
    return m.io.output(STDOUT)


# --- lexer -------------------------------------------------------------------
class TestLexer:
    def test_kinds(self):
        toks = tokenize("fn x 12 + // c\n0x1f 'A'")
        kinds = [t.kind for t in toks]
        assert kinds == [
            TokKind.KEYWORD,
            TokKind.IDENT,
            TokKind.NUMBER,
            TokKind.OP,
            TokKind.NUMBER,
            TokKind.NUMBER,
            TokKind.EOF,
        ]
        assert toks[4].value == 31
        assert toks[5].value == 65

    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert [(t.line, t.col) for t in toks[:3]] == [(1, 1), (2, 1), (3, 3)]

    def test_block_comments(self):
        toks = tokenize("a /* skip\nme */ b")
        assert [t.text for t in toks[:2]] == ["a", "b"]
        assert toks[1].line == 2

    def test_two_char_operators(self):
        toks = tokenize("<= >= == != && || << >>")
        assert [t.text for t in toks[:-1]] == ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>"]

    def test_errors(self):
        with pytest.raises(CompileError):
            tokenize("@")
        with pytest.raises(CompileError):
            tokenize("/* unterminated")
        with pytest.raises(CompileError):
            tokenize("'ab'")


# --- parser -------------------------------------------------------------------
class TestParser:
    def test_module_shape(self):
        mod = parse(
            """
            const K = 3;
            global g;
            global arr[10];
            fn f(a, b) { return a + b; }
            fn main() { out(f(1, 2), 1); }
            """
        )
        assert [c.name for c in mod.consts] == ["K"]
        assert [(g.name, g.size) for g in mod.globals] == [("g", 1), ("arr", 10)]
        assert [f.name for f in mod.functions] == ["f", "main"]
        assert mod.functions[0].params == ["a", "b"]

    def test_precedence(self):
        mod = parse("fn main() { var x = 1 + 2 * 3; }")
        init = mod.functions[0].body[0].init
        assert init.op == "+"
        assert init.right.op == "*"

    def test_else_if_chain(self):
        mod = parse(
            "fn main() { if (1) { } else if (2) { } else { return 3; } }"
        )
        stmt = mod.functions[0].body[0]
        inner = stmt.otherwise[0]
        assert inner.cond.value == 2
        assert inner.otherwise[0].value.value == 3

    @pytest.mark.parametrize(
        "src",
        [
            "fn main() { 1 + 2; }",  # bare expression statement
            "fn main() { 3 = x; }",  # bad assignment target
            "fn main() { if 1 { } }",  # missing parens
            "fn main() { var x = ; }",
            "fn main() {",  # unterminated block
            "global g[0];",  # zero-size array
            "junk",
        ],
    )
    def test_rejects(self, src):
        with pytest.raises(CompileError):
            parse(src)


# --- codegen: expressions ----------------------------------------------------------
class TestExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 / 3", 3),
            ("10 % 3", 1),
            ("-5 + 2", -3),
            ("1 << 4", 16),
            ("255 >> 4", 15),
            ("6 & 3", 2),
            ("6 | 3", 7),
            ("6 ^ 3", 5),
            ("3 < 4", 1),
            ("4 <= 4", 1),
            ("3 > 4", 0),
            ("4 >= 5", 0),
            ("4 == 4", 1),
            ("4 != 4", 0),
            ("!0", 1),
            ("!7", 0),
            ("1 && 2", 1),
            ("0 && 2", 0),
            ("0 || 0", 0),
            ("0 || 9", 1),
            ("2 + 3 == 5 && 1", 1),
        ],
    )
    def test_arith(self, expr, expected):
        assert out_of(f"fn main() {{ out({expr}, 1); }}") == [expected]

    def test_short_circuit_skips_side_effects(self):
        # The right operand of && must not run when the left is false.
        out = out_of(
            """
            global hits;
            fn bump() { hits = hits + 1; return 1; }
            fn main() {
                var a = 0 && bump();
                var b = 1 || bump();
                out(hits, 1);
                out(a + b, 1);
            }
            """
        )
        assert out == [0, 1]

    def test_deeply_nested_expression(self):
        expr = "1" + " + 1" * 20
        assert out_of(f"fn main() {{ out({expr}, 1); }}") == [21]

    def test_call_in_expression_saves_temps(self):
        # f() clobbers temps; the partial sum must survive the call.
        out = out_of(
            """
            fn f(x) { return x * 100; }
            fn main() { out(7 + f(2) + 3, 1); }
            """
        )
        assert out == [210]

    def test_nested_calls(self):
        out = out_of(
            """
            fn add(a, b) { return a + b; }
            fn main() { out(add(add(1, 2), add(3, 4)), 1); }
            """
        )
        assert out == [10]

    def test_four_params(self):
        out = out_of(
            """
            fn f(a, b, c, d) { return a * 1000 + b * 100 + c * 10 + d; }
            fn main() { out(f(1, 2, 3, 4), 1); }
            """
        )
        assert out == [1234]


# --- codegen: statements & control flow ----------------------------------------------
class TestStatements:
    def test_while_loop(self):
        assert out_of(
            "fn main() { var s = 0; var i = 1; while (i <= 10) { s = s + i; i = i + 1; } out(s, 1); }"
        ) == [55]

    def test_for_loop_with_break_continue(self):
        out = out_of(
            """
            fn main() {
                var s = 0;
                for (var i = 0; i < 100; i = i + 1) {
                    if (i == 5) { break; }
                    if (i % 2 == 0) { continue; }
                    s = s + i;
                }
                out(s, 1);
            }
            """
        )
        assert out == [4]  # 1 + 3

    def test_nested_loops(self):
        out = out_of(
            """
            fn main() {
                var s = 0;
                for (var i = 0; i < 3; i = i + 1) {
                    for (var j = 0; j < 3; j = j + 1) {
                        if (j > i) { break; }
                        s = s + 1;
                    }
                }
                out(s, 1);
            }
            """
        )
        assert out == [6]

    def test_return_without_value_yields_zero(self):
        assert out_of("fn f() { return; }\nfn main() { out(f(), 1); }") == [0]

    def test_fall_off_end_returns_zero(self):
        assert out_of("fn f() { }\nfn main() { out(f(), 1); }") == [0]

    def test_recursion_fibonacci(self):
        out = out_of(
            """
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { out(fib(10), 1); }
            """
        )
        assert out == [55]

    def test_globals_scalar_and_array(self):
        out = out_of(
            """
            global g;
            global arr[4];
            fn main() {
                g = 5;
                arr[0] = 10;
                arr[g - 4] = 20;
                out(g + arr[0] + arr[1], 1);
            }
            """
        )
        assert out == [35]

    def test_pointer_through_global(self):
        out = out_of(
            """
            global buf;
            fn fill(x) { buf[0] = x; return 0; }
            fn main() {
                buf = alloc(2);
                fill(9);
                out(buf[0], 1);
            }
            """
        )
        assert out == [9]

    def test_const_folding_reference(self):
        assert out_of("const K = 6;\nfn main() { out(K * 7, 1); }") == [42]


# --- codegen: builtins -----------------------------------------------------------
class TestBuiltins:
    def test_io(self):
        m, res, _ = run_minic(
            "fn main() { out(in(0) + in(0), 1); }", inputs={0: [20, 22]}
        )
        assert m.io.output(STDOUT) == [42]

    def test_assert_failure(self):
        m, res, _ = run_minic("fn main() { assert(1 == 2); }")
        assert res.status is RunStatus.FAILED
        assert res.failure.kind == "assert"

    def test_fail(self):
        _, res, _ = run_minic("fn main() { fail(3); }")
        assert res.failure.kind == "fail"

    def test_halt(self):
        _, res, _ = run_minic("fn worker(x) { while (1) { } }\nfn main() { spawn(worker, 0); halt(); }")
        assert res.status is RunStatus.HALTED

    def test_alloc_free_roundtrip(self):
        out = out_of(
            """
            fn main() {
                var p = alloc(3);
                p[2] = 7;
                out(p[2], 1);
                free(p);
            }
            """
        )
        assert out == [7]

    def test_fnid_and_icall(self):
        out = out_of(
            """
            fn twice(x) { return x + x; }
            fn main() {
                var f = fnid(twice);
                out(icall(f, 21), 1);
            }
            """
        )
        assert out == [42]

    def test_spawn_join_counter(self):
        src = """
        global counter;
        fn worker(n) {
            var i = 0;
            while (i < n) {
                lock(1);
                counter = counter + 1;
                unlock(1);
                i = i + 1;
            }
        }
        fn main() {
            var t1 = spawn(worker, 25);
            var t2 = spawn(worker, 25);
            join(t1); join(t2);
            out(counter, 1);
        }
        """
        for seed in (0, 3, 9):
            m, res, _ = run_minic(
                src, scheduler=RandomScheduler(seed=seed, min_quantum=1, max_quantum=8)
            )
            assert m.io.output(STDOUT) == [50]

    def test_barrier(self):
        out = out_of(
            """
            global done[2];
            fn w(i) {
                barrier_wait(7);
                done[i] = 1;
            }
            fn main() {
                barrier_init(7, 3);
                var a = spawn(w, 0);
                var b = spawn(w, 1);
                barrier_wait(7);
                join(a); join(b);
                out(done[0] + done[1], 1);
            }
            """
        )
        assert out == [2]

    def test_out_returns_value(self):
        assert out_of("fn main() { out(out(5, 1) + 1, 1); }") == [5, 6]


# --- semantic errors --------------------------------------------------------------
class TestSemanticErrors:
    @pytest.mark.parametrize(
        "src,fragment",
        [
            ("fn main() { x = 1; }", "undeclared"),
            ("fn main() { out(x, 1); }", "undeclared"),
            ("fn main() { var x = 1; var x = 2; }", "duplicate"),
            ("const K = 1;\nfn main() { K = 2; }", "const"),
            ("global g;\nfn main() { var g = 1; }", "shadows"),
            ("fn main() { break; }", "break outside"),
            ("fn main() { continue; }", "continue outside"),
            ("fn f(a, b, c, d, e) { }\nfn main() { }", "parameters"),
            ("fn main() { nosuch(); }", "undefined function"),
            ("fn f(a) { }\nfn main() { f(); }", "expects 1 argument"),
            ("fn main() { out(1, in(0)); }", "compile-time constant"),
            ("fn main() { spawn(main, 1); }", None),  # ok actually? main takes 0 params
            ("fn main() { var x = fnid(nope); }", "must name a function"),
            ("fn main() { var q = main; }", "bare function name"),
            ("global a[3];\nfn main() { a = 5; }", "cannot assign to array"),
            ("fn other() { }", "missing entry function"),
            ("global g; global g;", "duplicate symbol"),
        ],
    )
    def test_rejected(self, src, fragment):
        if fragment is None:
            compile_source(src)  # should compile fine
            return
        with pytest.raises(CompileError) as exc:
            compile_source(src)
        assert fragment in str(exc.value)

    def test_spawn_multi_param_target_rejected(self):
        with pytest.raises(CompileError):
            compile_source("fn w(a, b) { }\nfn main() { spawn(w, 1); }")


# --- metadata --------------------------------------------------------------------
class TestMetadata:
    def test_line_map_points_into_source(self):
        src = "fn main() {\n    var x = 1;\n    out(x, 1);\n}\n"
        cp = compile_source(src)
        lines = set(cp.line_map.values())
        assert 2 in lines and 3 in lines

    def test_globals_metadata(self):
        cp = compile_source("global a;\nglobal b[5];\nfn main() { }")
        addr_a, size_a = cp.globals["a"]
        addr_b, size_b = cp.globals["b"]
        assert size_a == 1 and size_b == 5
        assert addr_b == addr_a + 1

    def test_pcs_of_line_inverse(self):
        src = "fn main() {\n    out(1, 1);\n}\n"
        cp = compile_source(src)
        for pc in cp.pcs_of_line(2):
            assert cp.line_of(pc) == 2

    def test_program_validates(self):
        cp = compile_source("fn main() { out(1, 1); }")
        cp.program.validate()
