"""Edge-case coverage for smaller surfaces: memory ranges, I/O, cost
model, hook defaults, record formatting, config constructors, snapshot
of threaded state, generator configuration knobs."""

import pytest

from repro.dift import BoolTaintPolicy, DIFTEngine, PCTaintPolicy
from repro.lang import compile_source
from repro.ontrac import DepKind, DepRecord, OntracConfig
from repro.vm import (
    EOF,
    CostModel,
    CycleCounters,
    Hook,
    IOSystem,
    Machine,
    Memory,
    ProgramFailure,
    RoundRobinScheduler,
    restore_snapshot,
    take_snapshot,
)
from repro.workloads.generators import GeneratorConfig, generate


class TestMemoryRanges:
    def test_load_store_range(self):
        mem = Memory()
        mem.store_range(100, [1, 2, 3])
        assert mem.load_range(100, 3) == [1, 2, 3]
        assert mem.load_range(99, 5) == [0, 1, 2, 3, 0]

    def test_footprint_counts_distinct_cells(self):
        mem = Memory()
        mem.store(1, 5)
        mem.store(1, 6)
        mem.store(2, 7)
        assert mem.footprint == 2

    def test_alloc_size_zero_rejected(self):
        mem = Memory()
        with pytest.raises(ProgramFailure):
            mem.alloc(0)

    def test_clone_deep(self):
        mem = Memory()
        base = mem.alloc(4)
        mem.store(base, 9)
        clone = mem.clone()
        clone.store(base, 10)
        clone.free(base)
        assert mem.load(base) == 9
        assert base in mem.allocations


class TestIOSystem:
    def test_eof_logged_with_negative_index(self):
        io = IOSystem()
        value, index = io.read(0, seq=5)
        assert value == EOF and index == -1
        assert io.read_log == [(5, 0, EOF, -1)]

    def test_provide_appends(self):
        io = IOSystem()
        io.provide(1, [1])
        io.provide(1, [2])
        assert io.inputs[1] == [1, 2]

    def test_output_text_skips_invalid_codepoints(self):
        io = IOSystem()
        io.write(1, ord("a"))
        io.write(1, -5)
        io.write(1, ord("b"))
        assert io.output_text(1) == "ab"

    def test_clone_preserves_cursor(self):
        io = IOSystem()
        io.provide(0, [1, 2, 3])
        io.read(0, 0)
        clone = io.clone()
        assert clone.read(0, 1)[0] == 2


class TestCostModel:
    def test_table_dense(self):
        cm = CostModel()
        table = cm.table()
        from repro.isa import Opcode

        for op in Opcode:
            assert table[int(op)] == cm.cost(op)

    def test_counters(self):
        c = CycleCounters(base=100, overhead=50)
        assert c.total == 150
        assert c.slowdown == 1.5
        assert CycleCounters().slowdown == 1.0


class TestHookDefaults:
    def test_base_hook_is_all_noops(self):
        # subscribing a bare Hook must not affect execution
        cp = compile_source(
            """
            fn w(x) { lock(1); unlock(1); }
            fn main() {
                var p = alloc(2);
                free(p);
                var t = spawn(w, in(0));
                join(t);
                barrier_init(1, 1);
                barrier_wait(1);
                out(1, 1);
            }
            """
        )
        m = Machine(cp.program)
        m.io.provide(0, [1])
        m.hooks.subscribe(Hook())
        res = m.run()
        assert not res.failed

    def test_unsubscribe(self):
        cp = compile_source("fn main() { out(1, 1); }")
        m = Machine(cp.program)
        hook = Hook()
        m.hooks.subscribe(hook)
        m.hooks.unsubscribe(hook)
        assert not m.hooks.active


class TestRecordsAndConfigs:
    def test_record_str_forms(self):
        edge = DepRecord(DepKind.REG, 5, 1, 3, 0)
        assert "->" in str(edge)
        marker = DepRecord(DepKind.BRANCH, 5, 1)
        assert "branch" in str(marker)

    def test_config_constructors(self):
        naive = OntracConfig.unoptimized(buffer_bytes=123)
        assert naive.naive and naive.buffer_bytes == 123
        generic = OntracConfig.generic_optimizations(hot_trace_threshold=3)
        assert not generic.naive and generic.hot_trace_threshold == 3

    def test_scheduler_validation(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)

    def test_policy_describe(self):
        assert "tainted" in BoolTaintPolicy().describe(True)
        assert "42" in PCTaintPolicy().describe(42)

    def test_dift_stats_zero_division(self):
        assert DIFTEngine(BoolTaintPolicy()).stats.taint_rate == 0.0


class TestSnapshotThreaded:
    def test_snapshot_mid_threaded_run(self):
        cp = compile_source(
            """
            global total;
            fn w(n) {
                var i = 0;
                while (i < n) { lock(1); total = total + 1; unlock(1); i = i + 1; }
            }
            fn main() {
                var a = spawn(w, 8);
                var b = spawn(w, 8);
                join(a);
                join(b);
                out(total, 1);
            }
            """
        )
        m = Machine(cp.program)
        m.run(max_instructions=60)  # mid-flight, threads live/blocked
        snap = take_snapshot(m)
        m.run(max_instructions=1_000_000)
        expected = m.io.output(1)

        m2 = Machine(cp.program)
        restore_snapshot(m2, snap)
        m2.run(max_instructions=1_000_000)
        assert m2.io.output(1) == expected == [16]

    def test_snapshot_preserves_locks_and_barriers(self):
        cp = compile_source(
            """
            fn main() {
                lock(3);
                barrier_init(7, 1);
                out(1, 1);
                unlock(3);
            }
            """
        )
        m = Machine(cp.program)
        m.run(max_instructions=8)  # lock held, barrier created
        snap = take_snapshot(m)
        assert snap.mutexes and 3 in snap.mutexes
        m2 = Machine(cp.program)
        restore_snapshot(m2, snap)
        assert m2.mutexes[3].owner == 0


class TestGeneratorConfig:
    def test_knobs_respected(self):
        gp = generate(5, GeneratorConfig(num_globals=1, num_arrays=1, num_helpers=0))
        assert "g0" in gp.source and "g1" not in gp.source
        assert "h0(" not in gp.source

    def test_inputs_generated_when_requested(self):
        gp = generate(6, GeneratorConfig(use_inputs=True, input_count=3))
        assert len(gp.inputs[0]) == 3

    def test_programs_self_validate(self):
        for seed in range(5):
            gp = generate(seed)
            gp.compiled.program.validate()
