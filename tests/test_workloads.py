"""Unit tests for the workload corpora: SPEC-like kernels, the server,
SPLASH-like kernels, scientific pipelines."""

import pytest

from repro.vm import RunStatus
from repro.workloads import (
    build_server,
    lineage_suite,
    race_kernels,
    suite,
    tm_kernels,
)
from repro.workloads.server import build_server as build
from repro.workloads.spec_like import bfs, fsm, hashloop, matmul, rle, sort


class TestSpecLike:
    @pytest.mark.parametrize("workload", suite(), ids=lambda w: w.name)
    def test_kernels_run_and_emit(self, workload):
        machine, result = workload.runner().run()
        assert result.status is RunStatus.EXITED
        assert machine.io.output(1), workload.name

    def test_deterministic_outputs(self):
        for factory in (matmul, sort, hashloop, rle, bfs, fsm):
            w1, w2 = factory(), factory()
            m1, _ = w1.runner().run()
            m2, _ = w2.runner().run()
            assert m1.io.output(1) == m2.io.output(1), factory.__name__

    def test_sort_actually_sorts(self):
        w = sort(32)
        machine, result = w.runner().run()
        # the kernel asserts sortedness internally; reaching EXITED proves it
        assert result.status is RunStatus.EXITED
        first, last = machine.io.output(1)
        assert first <= last

    def test_scaling_increases_work(self):
        small = matmul(4).runner().run()[1].instructions
        large = matmul(8).runner().run()[1].instructions
        assert large > 2 * small

    def test_instruction_mixes_differ(self):
        # The suite must cover different mixes for the tracing experiments.
        stats = {w.name: w.compiled.program.stats() for w in suite()}
        branch_ratio = {
            name: s["branches"] / s["instructions"] for name, s in stats.items()
        }
        assert max(branch_ratio.values()) > 1.5 * min(branch_ratio.values())


class TestServer:
    def test_benign_completes_with_sentinel(self):
        scenario = build_server(workers=2, requests=30, busywork=5, inject_failure=False)
        machine, result = scenario.runner().run()
        assert result.status is RunStatus.EXITED
        assert machine.io.output(1)[-1] == 424242

    def test_injected_failure_fails_in_victim(self):
        scenario = build_server(workers=3, requests=60, busywork=5)
        machine, result = scenario.runner().run()
        assert result.failed
        assert result.failure.kind == "assert"
        assert result.failure.tid == scenario.victim + 1

    def test_failure_is_late(self):
        scenario = build_server(workers=2, requests=80, busywork=5)
        _, result = scenario.runner().run()
        benign = build_server(workers=2, requests=80, busywork=5, inject_failure=False)
        _, full = benign.runner().run()
        assert result.instructions > 0.5 * full.instructions

    def test_corruption_precedes_detection(self):
        scenario = build_server(workers=2, requests=60, busywork=5, check_gap=10)
        assert scenario.requests[scenario.attack_at][1] == 1  # a put
        follow_up = scenario.requests[scenario.attack_at + 10]
        assert follow_up[0] == scenario.victim and follow_up[1] == 3

    def test_request_stream_encoding(self):
        scenario = build_server(workers=2, requests=10, inject_failure=False)
        stream = scenario.inputs[0]
        assert stream[-1] == -1
        assert len(stream) == len(scenario.requests) * 4 + 1

    def test_different_seeds_different_schedules(self):
        a = build(workers=2, requests=30, seed=1, inject_failure=False)
        b = build(workers=2, requests=30, seed=2, inject_failure=False)
        assert a.requests != b.requests


class TestSplashLike:
    def test_tm_kernels_wellformed(self):
        for kernel in tm_kernels():
            assert kernel.total_ops > 0
            tids = [t.tid for t in kernel.threads]
            assert tids == sorted(set(tids))
            for barrier_id, parties in kernel.barriers.items():
                assert parties <= len(kernel.threads)

    def test_race_kernels_run_clean(self):
        for kernel in race_kernels():
            machine, result = kernel.runner().run()
            assert result.status is RunStatus.EXITED, kernel.name

    def test_ground_truth_lines_exist(self):
        for kernel in race_kernels():
            source_lines = kernel.compiled.source.splitlines() if kernel.compiled.source else []
            for line in kernel.racy_lines | kernel.flag_lines:
                assert line >= 1


class TestScientific:
    @pytest.mark.parametrize("workload", lineage_suite(), ids=lambda w: w.name)
    def test_pipelines_run(self, workload):
        machine, result = workload.runner().run()
        assert result.status is RunStatus.EXITED
        assert len(machine.io.output(1)) == workload.n_outputs

    @pytest.mark.parametrize("workload", lineage_suite(), ids=lambda w: w.name)
    def test_expected_lineage_wellformed(self, workload):
        n_inputs = len(workload.inputs[0])
        for k in range(workload.n_outputs):
            lineage = workload.expected_lineage(k)
            assert lineage, f"{workload.name}: empty lineage for output {k}"
            assert all(0 <= i < n_inputs for i in lineage)

    def test_moving_average_values(self):
        from repro.workloads.scientific import moving_average

        w = moving_average(n=6, window=3)
        machine, _ = w.runner().run()
        values = w.inputs[0]
        expected = [sum(values[k:k + 3]) // 3 for k in range(4)]
        assert machine.io.output(1) == expected
