"""Trace lake: spill-format round trips, crash recovery, the run store
and re-execution-free stored-run queries."""

import os
import signal
import struct
import subprocess
import sys
import textwrap

import pytest

from repro.lake import (
    FORMAT_VERSION,
    LakeFormatError,
    SpillingPackedTraceBuffer,
    TraceLake,
    diff_runs,
    input_hash,
    open_spill,
    postmortem,
    program_hash,
    resolve_criterion,
    slice_stored,
    spill_buffer,
    suspect_lines,
)
from repro.ontrac import (
    DepKind,
    DepRecord,
    OntracConfig,
    PackedDDG,
    PackedTraceBuffer,
)
from repro.runner import ProgramRunner
from repro.slicing import backward_slice, forward_slice
from repro.util.rng import DeterministicRng
from repro.workloads import corpus, matmul

EDGE_KINDS = [DepKind.REG, DepKind.MEM, DepKind.IREG, DepKind.IMEM,
              DepKind.CONTROL, DepKind.SUMMARY, DepKind.WAR, DepKind.WAW]


def _fill(buf, rng, n):
    """Append a seeded random dependence stream (mirrors the packed
    store's own property tests)."""
    for consumer in range(n):
        buf.append(DepRecord(DepKind.INSTR, consumer, consumer % 13,
                             tid=consumer % 3))
        if consumer:
            for _ in range(rng.randint(0, 3)):
                producer = rng.randint(0, consumer - 1)
                kind = EDGE_KINDS[rng.randint(0, len(EDGE_KINDS) - 1)]
                buf.append(DepRecord(kind, consumer, consumer % 13,
                                     producer, producer % 13,
                                     tid=consumer % 3))


def _assert_same_answers(stored, live_buf, rng, queries=4):
    """Stored-run slices must be bit-identical to the live buffer's."""
    live = PackedDDG(live_buf)
    got = PackedDDG(stored.buffer)
    assert sorted(got.node_items()) == sorted(live.node_items())
    assert stored.buffer.epoch == live_buf.epoch
    assert got.complete == live.complete
    nodes = sorted(s for s, _ in live.node_items())
    for _ in range(queries):
        crit = nodes[rng.randint(0, len(nodes) - 1)]
        kinds = frozenset(k for k in EDGE_KINDS if rng.randint(0, 1)) \
            or frozenset({DepKind.REG})
        for fn in (backward_slice, forward_slice):
            a = fn(got, crit, kinds)
            b = fn(live, crit, kinds)
            assert (a.seqs, a.pcs, a.truncated) == (b.seqs, b.pcs, b.truncated)


# --- format round trips ------------------------------------------------------
class TestSpillFormat:
    def test_post_hoc_spill_round_trip(self, tmp_path):
        rng = DeterministicRng(7)
        buf = PackedTraceBuffer(capacity_bytes=1 << 20)
        _fill(buf, rng, 200)
        path = str(tmp_path / "t.rlk")
        spill_buffer(buf, path)
        with open_spill(path) as stored:
            assert not stored.recovered
            assert stored.rows == len(buf)
            assert stored.total_rows == buf.stats.appended
            _assert_same_answers(stored, buf, rng)

    def test_spilling_buffer_matches_plain(self, tmp_path):
        """Streaming spill (seal-time sections + footer) equals the
        in-memory buffer bit for bit — including under eviction."""
        for capacity in (700, 1 << 20):
            rng = DeterministicRng(11)
            rng2 = DeterministicRng(11)
            plain = PackedTraceBuffer(capacity_bytes=capacity)
            path = str(tmp_path / f"s{capacity}.rlk")
            spilling = SpillingPackedTraceBuffer(capacity, path)
            _fill(plain, rng, 300)
            _fill(spilling, rng2, 300)
            assert spilling.epoch == plain.epoch
            spilling.close()
            spilling.close()  # idempotent
            with open_spill(path) as stored:
                assert not stored.recovered
                assert stored.buffer.stats.evicted == plain.stats.evicted
                _assert_same_answers(stored, plain, rng)
                if capacity == 700:
                    assert plain.stats.evicted > 0
                    # Evicted history is in the file even though the
                    # live window dropped it.
                    assert len(stored.index) * 1 >= stored.buffer.chunk_count

    def test_overflow_side_table_round_trip(self, tmp_path):
        """Out-of-column values (wide pcs/tids, far producers) survive
        the side-table encoding."""
        buf = PackedTraceBuffer(capacity_bytes=1 << 20)
        big_seq = 1 << 40
        buf.append(DepRecord(DepKind.INSTR, 0, 70_000, tid=66_000))
        buf.append(DepRecord(DepKind.INSTR, big_seq, 5, tid=1))
        buf.append(DepRecord(DepKind.MEM, big_seq + 1, 80_000, 0, 90_000,
                             tid=70_001))
        path = str(tmp_path / "over.rlk")
        spill_buffer(buf, path)
        with open_spill(path) as stored:
            want = [(r.kind, r.consumer_seq, r.consumer_pc, r.producer_seq,
                     r.producer_pc, r.tid) for r in buf.records]
            got = [(r.kind, r.consumer_seq, r.consumer_pc, r.producer_seq,
                    r.producer_pc, r.tid) for r in stored.buffer.records]
            assert got == want
            assert any(c.over for c in stored.buffer._chunks)

    def test_empty_run(self, tmp_path):
        buf = PackedTraceBuffer(capacity_bytes=4096)
        path = str(tmp_path / "empty.rlk")
        spill_buffer(buf, path)
        with open_spill(path) as stored:
            assert stored.rows == 0
            assert not stored.recovered
            report = postmortem(stored)
            assert report["rows"] == 0
            assert report["graph"] == {"nodes": 0, "edges": 0}
            with pytest.raises(KeyError):
                resolve_criterion(stored)

    def test_hundred_seed_stored_slices_bit_identical(self, tmp_path):
        """100 seeded random streams through the spilling buffer; the
        reopened file must answer every slice exactly like the live
        in-memory buffer — including truncation under eviction."""
        for seed in range(100):
            rng = DeterministicRng(seed)
            rng2 = DeterministicRng(seed)
            capacity = (600, 4096, 1 << 20)[seed % 3]
            n = 40 + (seed % 4) * 40
            live = PackedTraceBuffer(capacity_bytes=capacity)
            path = str(tmp_path / f"p{seed}.rlk")
            spilling = SpillingPackedTraceBuffer(capacity, path)
            _fill(live, rng, n)
            _fill(spilling, rng2, n)
            spilling.close()
            with open_spill(path) as stored:
                _assert_same_answers(stored, live, rng, queries=3)
            os.unlink(path)


# --- corruption & recovery ---------------------------------------------------
class TestRecovery:
    def _spilled(self, tmp_path, seed=3, n=400, capacity=1 << 20):
        rng = DeterministicRng(seed)
        path = str(tmp_path / "r.rlk")
        buf = SpillingPackedTraceBuffer(capacity, path)
        _fill(buf, rng, n)
        buf.close()
        return path

    def test_version_mismatch_rejected(self, tmp_path):
        path = self._spilled(tmp_path)
        with open(path, "r+b") as f:
            f.seek(8)
            f.write(struct.pack("<H", FORMAT_VERSION + 1))
        with pytest.raises(LakeFormatError, match="version"):
            open_spill(path)

    def test_not_a_spill_rejected(self, tmp_path):
        path = str(tmp_path / "junk.rlk")
        with open(path, "wb") as f:
            f.write(b"definitely not a spill file" * 4)
        with pytest.raises(LakeFormatError):
            open_spill(path)
        with open(path, "wb") as f:
            f.write(b"x")
        with pytest.raises(LakeFormatError, match="truncated"):
            open_spill(path)

    def test_torn_footer_recovers_all_sections(self, tmp_path):
        path = self._spilled(tmp_path)
        with open_spill(path) as clean:
            sections = list(clean.index)
            clean_rows = clean.rows
        # Chop the trailer: the footer index is unreachable but every
        # section is intact.
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 10)
        with open_spill(path) as stored:
            assert stored.recovered
            assert len(stored.index) == len(sections)
            assert stored.rows == clean_rows
            crit = resolve_criterion(stored)
            assert slice_stored(stored, crit).seqs

    def test_corrupt_footer_crc_recovers(self, tmp_path):
        path = self._spilled(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.seek(size - 30)  # inside the JSON footer
            f.write(b"\xff")
        with open_spill(path) as stored:
            assert stored.recovered
            assert stored.rows > 0

    def test_truncated_mid_section_keeps_prefix(self, tmp_path):
        path = self._spilled(tmp_path)
        with open_spill(path) as clean:
            sections = list(clean.index)
        assert len(sections) >= 2
        with open(path, "r+b") as f:
            f.truncate(sections[1]["off"] + 40)  # torn second section
        with open_spill(path) as stored:
            assert stored.recovered
            assert len(stored.index) == 1
            assert stored.rows == sections[0]["n"]
            assert PackedDDG(stored.buffer).complete  # prefix is self-contained
            crit = resolve_criterion(stored)
            sl = slice_stored(stored, crit)
            assert not sl.truncated or stored.buffer.stats.evicted == 0

    def test_sigkilled_writer_leaves_readable_prefix(self, tmp_path):
        """kill -9 mid-run: the spill must reopen as a recovered prefix
        with working queries — the crash-postmortem contract."""
        path = str(tmp_path / "killed.rlk")
        child = textwrap.dedent(f"""
            from repro.lake.format import SpillingPackedTraceBuffer
            from repro.ontrac import DepKind, DepRecord

            buf = SpillingPackedTraceBuffer(1 << 20, {path!r})
            seq = 0
            while True:
                buf.append(DepRecord(DepKind.INSTR, seq, seq % 13, tid=0))
                if seq:
                    buf.append(DepRecord(DepKind.REG, seq, seq % 13,
                                         seq - 1, (seq - 1) % 13, tid=0))
                seq += 1
                if seq % 2000 == 0:
                    print(seq, flush=True)
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", child],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        try:
            for line in proc.stdout:
                if int(line) >= 20_000:
                    break
        finally:
            proc.kill()
            proc.wait()
        assert proc.returncode == -signal.SIGKILL
        with open_spill(path) as stored:
            assert stored.recovered
            assert stored.rows > 0
            assert stored.buffer.monotone
            crit = resolve_criterion(stored)
            sl = slice_stored(stored, crit)
            assert sl.seqs and crit in sl.seqs


# --- the run store -----------------------------------------------------------
class TestTraceLake:
    def _record(self, lake, seed=0, scale=1):
        w = matmul(scale)
        pending = lake.begin_run(
            program=program_hash(w.compiled.source),
            input_hash=input_hash(w.inputs), seed=seed,
        )
        _, tracer, _ = w.runner().run_traced(
            OntracConfig(spill_path=pending.spill_path)
        )
        return pending.finish(tracer=tracer, compiled=w.compiled), tracer

    def test_record_list_open_resolve(self, tmp_path):
        lake = TraceLake(str(tmp_path))
        run_id, tracer = self._record(lake)
        runs = lake.runs()
        assert [r.run_id for r in runs] == [run_id]
        assert runs[0].complete
        manifest = runs[0].manifest
        assert manifest["schema"].startswith("repro.lake.manifest/")
        assert manifest["trace"]["rows"] == len(tracer.buffer)
        assert manifest["pc_lines"]
        assert lake.resolve(run_id[:10]) == run_id
        with pytest.raises(LakeFormatError, match="no such"):
            lake.resolve("nope")
        with lake.open(run_id) as stored:
            assert stored.rows == len(tracer.buffer)
            live = tracer.dependence_graph()
            crit = max(s for s, _ in live.node_items())
            a = slice_stored(stored, crit)
            b = backward_slice(live, crit)
            assert (a.seqs, a.pcs, a.truncated) == (b.seqs, b.pcs, b.truncated)

    def test_same_key_runs_stay_addressable(self, tmp_path):
        lake = TraceLake(str(tmp_path))
        first, _ = self._record(lake, seed=5)
        second, _ = self._record(lake, seed=5)
        assert first != second
        assert second.endswith("--r2")
        with pytest.raises(LakeFormatError, match="ambiguous"):
            lake.resolve(first[:10])

    def test_incomplete_run_listed_and_queryable(self, tmp_path):
        lake = TraceLake(str(tmp_path))
        pending = lake.begin_run(program="dead", input_hash="", seed=0)
        buf = SpillingPackedTraceBuffer(1 << 20, pending.spill_path)
        _fill(buf, DeterministicRng(1), 600)
        # No close(), no finish(): the writer "died" here.
        del buf
        (info,) = lake.runs()
        assert not info.complete
        with lake.open(info.run_id) as stored:
            assert stored.recovered
            assert stored.rows > 0
            assert slice_stored(stored, resolve_criterion(stored)).seqs

    def test_gc_drops_oldest_first(self, tmp_path):
        lake = TraceLake(str(tmp_path))
        ids = [self._record(lake, seed=s)[0] for s in range(3)]
        summary = lake.gc(keep_runs=2)
        assert summary["dropped"] == [ids[0]]
        assert [r.run_id for r in lake.runs()] == ids[1:]
        summary = lake.gc(max_bytes=0)
        assert summary["kept"] == 0
        assert lake.runs() == []

    def test_compact_preserves_query_observables(self, tmp_path):
        lake = TraceLake(str(tmp_path))
        pending = lake.begin_run(program="many-chunks", input_hash="")
        buf = SpillingPackedTraceBuffer(1 << 20, pending.spill_path)
        rng = DeterministicRng(9)
        _fill(buf, rng, 1500)  # several seed-size chunk sections
        run_id = pending.finish(buffer=buf)
        with lake.open(run_id) as stored:
            before = {
                "epoch": stored.buffer.epoch,
                "rows": stored.rows,
                "nodes": sorted(PackedDDG(stored.buffer).node_items()),
            }
            crit = resolve_criterion(stored)
            ref = slice_stored(stored, crit)
        summary = lake.compact(run_id)
        assert summary["sections_after"] <= summary["sections_before"]
        with lake.open(run_id) as stored:
            assert stored.buffer.epoch == before["epoch"]
            assert stored.rows == before["rows"]
            assert sorted(PackedDDG(stored.buffer).node_items()) == before["nodes"]
            got = slice_stored(stored, crit)
            assert (got.seqs, got.pcs, got.truncated) == \
                (ref.seqs, ref.pcs, ref.truncated)

    def test_telemetry_gauges(self, tmp_path):
        from repro.telemetry import MetricsRegistry

        lake = TraceLake(str(tmp_path))
        self._record(lake)
        registry = MetricsRegistry()
        lake.publish_telemetry(registry)
        flat = registry.flat()
        assert flat["lake.runs"] == 1
        assert flat["lake.bytes"] > 0
        assert flat["lake.incomplete_runs"] == 0


# --- cross-run diff ----------------------------------------------------------
class TestDiff:
    def test_diff_localizes_wrong_variable(self, tmp_path):
        lake = TraceLake(str(tmp_path))
        (bug,) = [b for b in corpus() if b.name == "wrong-variable"]
        _, tr, _ = bug.runner(failing=True).run_traced(OntracConfig())
        failing = lake.put(tr.buffer, program=program_hash(bug.source),
                           input_hash=input_hash(bug.failing_inputs),
                           compiled=bug.compiled)
        passing = []
        for inputs in (bug.failing_inputs, bug.passing_inputs):
            runner = ProgramRunner(
                bug.fixed_compiled.program,
                inputs={k: list(v) for k, v in inputs.items()},
                max_instructions=2_000_000,
            )
            _, tr, _ = runner.run_traced(OntracConfig())
            passing.append(lake.put(
                tr.buffer, program=program_hash(bug.fixed_source),
                input_hash=input_hash(inputs), compiled=bug.fixed_compiled,
            ))
        diff = diff_runs(lake, failing, passing)
        assert diff["space"] == "line"
        assert diff["suspects"]
        assert suspect_lines(diff) & bug.bug_lines

    def test_diff_without_manifests_falls_back_to_pc_space(self, tmp_path):
        lake = TraceLake(str(tmp_path))
        ids = []
        for seed in range(2):
            buf = PackedTraceBuffer(capacity_bytes=1 << 20)
            _fill(buf, DeterministicRng(seed), 60)
            ids.append(lake.put(buf, program="raw", seed=seed))
        diff = diff_runs(lake, ids[0], [ids[1]])
        assert diff["space"] == "pc"
        assert suspect_lines(diff) == set()
