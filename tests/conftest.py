"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.lang import compile_source
from repro.runner import ProgramRunner
from repro.vm import Machine, RunStatus


def compile_and_run(src, inputs=None, scheduler=None, max_instructions=2_000_000, hooks=()):
    """Compile MiniC, run it, return (machine, result, compiled)."""
    cp = compile_source(src)
    m = Machine(cp.program, scheduler=scheduler)
    for chan, values in (inputs or {}).items():
        m.io.provide(chan, values)
    for hook in hooks:
        m.hooks.subscribe(hook)
    res = m.run(max_instructions=max_instructions)
    return m, res, cp


def runner_for(src, inputs=None, scheduler_factory=None, max_instructions=2_000_000):
    """Compile MiniC into a reproducible ProgramRunner; returns (runner, compiled)."""
    cp = compile_source(src)
    runner = ProgramRunner(
        cp.program,
        inputs={k: list(v) for k, v in (inputs or {}).items()},
        scheduler_factory=scheduler_factory,
        max_instructions=max_instructions,
    )
    return runner, cp


@pytest.fixture
def minic():
    return compile_and_run
