"""Unit tests for fault location: slice-based locator, pruning behavior,
chops, value replacement ranking."""

import pytest

from repro.apps.faultloc import (
    SliceBasedFaultLocator,
    ValueProfiler,
    ValueReplacementRanker,
    best_chop,
    failure_inducing_chop,
)
from repro.ontrac import OntracConfig
from repro.workloads.buggy import (
    by_category,
    corpus,
    malformed_request,
    omission_init,
    omission_predicate,
    wrong_constant,
    wrong_operator,
    wrong_variable,
)


class TestSliceBasedLocator:
    @pytest.mark.parametrize("bug_factory", [wrong_operator, wrong_constant, wrong_variable])
    def test_bug_line_in_pruned_slice(self, bug_factory):
        bug = bug_factory()
        locator = SliceBasedFaultLocator(bug.runner(), bug.compiled, bug.expected_output())
        report = locator.locate()
        assert report.contains_bug(bug.bug_lines, pruned=False)
        assert report.contains_bug(bug.bug_lines, pruned=True)

    def test_pruned_is_subset(self):
        bug = wrong_operator()
        report = SliceBasedFaultLocator(
            bug.runner(), bug.compiled, bug.expected_output()
        ).locate()
        assert report.pruned_lines <= report.slice_lines
        assert 0.0 <= report.reduction <= 1.0

    def test_pruning_removes_correct_only_paths(self):
        # A computation feeding only the correct output must be pruned.
        bug = wrong_variable()
        report = SliceBasedFaultLocator(
            bug.runner(), bug.compiled, bug.expected_output()
        ).locate()
        # wrong-variable: face (line 5) feeds BOTH outputs; width/height feed
        # both; nothing here separates cleanly — so just check consistency.
        assert report.criterion_seq > 0

    def test_correct_run_rejected(self):
        bug = wrong_operator()
        locator = SliceBasedFaultLocator(
            bug.runner(failing=False),
            bug.compiled,
            # oracle for the passing inputs:
            [4, 8],
        )
        with pytest.raises(ValueError):
            locator.locate()

    def test_omission_bug_not_in_slice(self):
        # Negative control: slicing cannot see omission bugs.
        bug = omission_predicate()
        report = SliceBasedFaultLocator(
            bug.runner(), bug.compiled, bug.expected_output()
        ).locate()
        assert not report.contains_bug(bug.bug_lines, pruned=False)


class TestChops:
    def _traced(self, bug):
        runner = bug.runner()
        machine, tracer, result = runner.run_traced(OntracConfig(buffer_bytes=1 << 22))
        return machine, tracer.dependence_graph(), result

    def test_chop_contains_bug_on_path(self):
        from repro.isa import Opcode

        bug = wrong_operator()
        machine, ddg, _ = self._traced(bug)
        out_pc = min(  # the first output, out(area) — the wrong one
            pc for pc in range(len(bug.compiled.program.code))
            if bug.compiled.program.code[pc].opcode is Opcode.OUT
        )
        criterion = ddg.last_instance_of_pc(out_pc)
        report = best_chop(ddg, bug.compiled, criterion)
        assert report is not None
        assert report.contains_bug(bug.bug_lines)

    def test_chop_from_failure(self):
        bug = malformed_request()
        machine, ddg, result = self._traced(bug)
        assert result.failed
        criterion = max(s for s in ddg.nodes if s <= result.failure.seq)
        report = best_chop(ddg, bug.compiled, criterion)
        assert report is not None
        assert report.contains_bug(bug.bug_lines)

    def test_chop_excludes_unrelated_input(self):
        bug = wrong_operator()  # 'bad' does not use input b
        machine, ddg, _ = self._traced(bug)
        from repro.isa import Opcode

        in_pcs = [
            pc for pc in range(len(bug.compiled.program.code))
            if bug.compiled.program.code[pc].opcode is Opcode.IN
        ]
        # chop from input b to the last (bad) output: b only reaches
        # the criterion through nothing -> tiny/no chop
        b_seq = ddg.instances_of_pc(in_pcs[0])[1] if len(
            ddg.instances_of_pc(in_pcs[0])
        ) > 1 else None
        assert in_pcs  # structural sanity


class TestValueReplacement:
    def test_profiler_records_occurrences(self):
        bug = wrong_constant()
        profiler = ValueProfiler()
        bug.runner().run(hooks=(profiler,))
        assert profiler.profile
        for pc, instances in profiler.profile.items():
            occurrences = [occ for occ, _ in instances]
            assert occurrences == sorted(occurrences)

    @pytest.mark.parametrize(
        "bug_factory", [wrong_constant, wrong_variable, omission_predicate, omission_init]
    )
    def test_bug_ranked_first(self, bug_factory):
        bug = bug_factory()
        ranker = ValueReplacementRanker(
            bug.runner(),
            bug.compiled,
            bug.expected_output(),
            passing_runner=bug.runner(failing=False),
        )
        report = ranker.rank()
        assert report.ivmps, f"{bug.name}: no IVMP found"
        best_rank = min((report.rank_of_line(line) or 99) for line in bug.bug_lines)
        assert best_rank <= 2, f"{bug.name}: rank {best_rank}"

    def test_budget_respected(self):
        bug = wrong_constant()
        ranker = ValueReplacementRanker(
            bug.runner(), bug.compiled, bug.expected_output(), max_replacements=10
        )
        report = ranker.rank()
        assert report.replacements_tried <= 10

    def test_rank_of_unknown_line(self):
        bug = wrong_constant()
        ranker = ValueReplacementRanker(
            bug.runner(), bug.compiled, bug.expected_output(), max_replacements=50
        )
        report = ranker.rank()
        assert report.rank_of_line(9999) is None

    def test_honest_miss_when_value_never_observed(self):
        # wrong-operator needs 42 which never occurs: VR finds nothing.
        bug = wrong_operator()
        ranker = ValueReplacementRanker(
            bug.runner(), bug.compiled, bug.expected_output(),
            passing_runner=bug.runner(failing=False),
        )
        report = ranker.rank()
        assert report.ivmps == []


class TestCorpus:
    def test_failing_inputs_actually_fail_or_mislead(self):
        for bug in corpus():
            machine, result = bug.runner().run()
            wrong = result.failed or machine.io.output(1) != bug.expected_output()
            assert wrong, bug.name

    def test_passing_inputs_pass(self):
        for bug in corpus():
            if bug.category == "atomicity":
                continue  # schedule-dependent: no "passing inputs"
            machine, result = bug.runner(failing=False).run()
            assert not result.failed, bug.name

    def test_fixed_versions_fixed(self):
        from repro.runner import ProgramRunner

        for bug in corpus():
            runner = ProgramRunner(
                bug.fixed_compiled.program,
                inputs={k: list(v) for k, v in bug.failing_inputs.items()},
                scheduler_factory=bug.scheduler_factory,
                max_instructions=2_000_000,
            )
            machine, result = runner.run()
            assert not result.failed, bug.name

    def test_categories_cover_the_paper(self):
        categories = {bug.category for bug in corpus()}
        assert {"value", "omission", "atomicity", "overflow", "malformed"} <= categories
        assert len(by_category("omission")) >= 2
