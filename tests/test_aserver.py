"""Tests for the asyncio front door (``repro.service.aserver``).

The load-bearing contract is *structural bit-identity*: a streamed
job's terminal frame equals the blocking response byte for byte, and
reassembling every partial op reproduces that result exactly — for
every job kind, every fidelity rung, and across worker crash-retries
(where the partial ``seq`` dedup must make the replayed prefix
invisible).  The transport-free pieces (:class:`FrameAssembler`, the
stream-op fold) are unit-tested first; the integration layers stand up
real :class:`AsyncAnalysisServer` daemons on Unix/TCP sockets.
"""

import json
import socket
import struct
import threading

import pytest

from repro.service import (
    AsyncAnalysisServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceProtocolError,
    make_server,
    wait_until_ready,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    STATUS_PARTIAL,
    FrameAssembler,
    ProtocolError,
    apply_stream_op,
    encode,
    reassemble,
    recv_frame,
    send_frame,
)


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@pytest.fixture
def aserver_factory(tmp_path):
    """Start async servers on tmp Unix sockets; all stopped at teardown."""
    servers = []
    counter = [0]

    def start(**kwargs) -> AsyncAnalysisServer:
        counter[0] += 1
        if "port" not in kwargs:
            kwargs.setdefault("socket_path", str(tmp_path / f"async{counter[0]}.sock"))
        server = AsyncAnalysisServer(ServiceConfig(**kwargs)).start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


def stream_exchange(address: str, request: dict) -> tuple[list, dict]:
    """Raw streamed round trip; returns (partial frames, terminal frame)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(60.0)
    sock.connect(address)
    try:
        send_frame(sock, dict(request, stream=True))
        partials = []
        while True:
            frame = recv_frame(sock)
            if frame.get("status") == STATUS_PARTIAL:
                partials.append(frame)
                continue
            return partials, frame
    finally:
        sock.close()


# ---------------------------------------------------------------------------
# FrameAssembler
# ---------------------------------------------------------------------------
class TestFrameAssembler:
    def test_reassembles_across_arbitrary_chunk_boundaries(self):
        frames = [{"n": i, "blob": "x" * (i * 7)} for i in range(5)]
        wire = b"".join(encode(f) for f in frames)
        for chunk_size in (1, 2, 3, 5, 64):
            assembler = FrameAssembler()
            decoded = []
            for i in range(0, len(wire), chunk_size):
                assembler.feed(wire[i : i + chunk_size])
                while True:
                    frame = assembler.next_frame()
                    if frame is None:
                        break
                    decoded.append(frame)
            assert decoded == frames
            assert assembler.pending_bytes == 0

    def test_incomplete_frame_stays_pending(self):
        assembler = FrameAssembler()
        wire = encode({"k": "v"})
        assembler.feed(wire[:-1])
        assert assembler.next_frame() is None
        assert assembler.pending_bytes == len(wire) - 1
        assembler.feed(wire[-1:])
        assert assembler.next_frame() == {"k": "v"}

    def test_oversized_length_prefix_is_protocol_error(self):
        assembler = FrameAssembler()
        assembler.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="cap"):
            assembler.next_frame()

    def test_undecodable_payload_is_protocol_error(self):
        assembler = FrameAssembler()
        payload = b"not json"
        assembler.feed(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="undecodable"):
            assembler.next_frame()


# ---------------------------------------------------------------------------
# Stream-op folding
# ---------------------------------------------------------------------------
class TestStreamOps:
    def test_set_nests_dotted_paths(self):
        result = {}
        apply_stream_op(result, {"set": {"a.b.c": 1, "top": "x"}})
        assert result == {"a": {"b": {"c": 1}}, "top": "x"}

    def test_append_creates_and_extends(self):
        result = {}
        apply_stream_op(result, {"append": {"s.rows": [1, 2]}})
        apply_stream_op(result, {"append": {"s.rows": [3]}})
        assert result == {"s": {"rows": [1, 2, 3]}}

    def test_append_to_non_list_is_protocol_error(self):
        result = {"s": {"rows": 7}}
        with pytest.raises(ProtocolError, match="non-list"):
            apply_stream_op(result, {"append": {"s.rows": [1]}})

    def test_reassemble_folds_in_order(self):
        ops = [
            {"set": {"kind": "slice", "slice.pcs": []}},
            {"append": {"slice.pcs": [10, 11]}},
            {"append": {"slice.pcs": [12]}},
            {"set": {"slice.truncated": False}},
        ]
        assert reassemble(ops) == {
            "kind": "slice",
            "slice": {"pcs": [10, 11, 12], "truncated": False},
        }


# ---------------------------------------------------------------------------
# The async daemon
# ---------------------------------------------------------------------------
ALL_COMBOS = [
    ("trace", "full"), ("trace", "dift"), ("trace", "log"),
    ("slice", "full"), ("slice", "log"),
    ("attack", "full"), ("attack", "dift"), ("attack", "log"),
    ("lineage", "full"), ("lineage", "log"),
]


class TestAsyncServer:
    def test_control_verbs_and_ready(self, aserver_factory):
        server = aserver_factory(workers=1)
        health = wait_until_ready(server.config.socket_path)
        assert health["ok"] and health["workers_alive"] == 1
        with ServiceClient(server.config.socket_path) as client:
            stats = client.stats()
            assert stats["health"]["queue_capacity"] == 8
            metrics = client.metrics()
            assert "aserver.requests" in metrics["json"]["counters"]
            assert metrics["summary"]["reject_rate"] == 0.0

    @pytest.mark.parametrize("kind,fidelity", ALL_COMBOS)
    def test_streamed_equals_blocking_bit_for_bit(self, aserver_factory, kind, fidelity):
        server = aserver_factory(workers=1)
        address = server.config.socket_path
        request = {"kind": kind, "fidelity": fidelity, "workload": "matmul",
                   "cache": False}
        with ServiceClient(address) as client:
            blocking = client.submit(kind, workload="matmul", fidelity=fidelity,
                                     cache=False)
        assert blocking["status"] == "ok"
        partials, terminal = stream_exchange(address, request)
        assert terminal["status"] == "ok"
        assert canonical(terminal["result"]) == canonical(blocking["result"])
        assert partials, "streamed job produced no partial frames"
        seqs = [p["seq"] for p in partials]
        assert seqs == list(range(1, len(seqs) + 1)), "seq must be contiguous from 1"
        rebuilt = reassemble([p["op"] for p in partials])
        assert canonical(rebuilt) == canonical(terminal["result"])

    def test_streamed_cache_hit_has_no_partials(self, aserver_factory):
        server = aserver_factory(workers=1)
        address = server.config.socket_path
        request = {"kind": "slice", "workload": "sort"}
        _, cold = stream_exchange(address, request)
        partials, warm = stream_exchange(address, request)
        assert warm["cached"] and not partials
        assert canonical(warm["result"]) == canonical(cold["result"])

    def test_submit_stream_client_api(self, aserver_factory):
        server = aserver_factory(workers=1)
        seen = []
        with ServiceClient(server.config.socket_path) as client:
            response, ops = client.submit_stream(
                "slice", workload="matmul", cache=False,
                on_partial=lambda seq, op: seen.append(seq),
            )
        assert response["status"] == "ok"
        assert seen == list(range(1, len(ops) + 1))
        assert canonical(reassemble(ops)) == canonical(response["result"])

    def test_crash_retry_stream_is_exactly_once(self, aserver_factory, tmp_path):
        """A worker crash mid-stream must not duplicate or reorder ops:
        the retry replays seq from 1 and the server drops the replayed
        prefix, so the client still sees a contiguous exactly-once
        stream whose reassembly equals the terminal result."""
        server = aserver_factory(workers=1, allow_chaos=True)
        flag = str(tmp_path / "crash.flag")
        partials, terminal = stream_exchange(
            server.config.socket_path,
            {"kind": "chaos", "cache": False,
             "params": {"mode": "exit-once", "flag": flag}},
        )
        assert terminal["status"] == "ok"
        assert terminal["result"]["chaos"]["survived_retry"] is True
        seqs = [p["seq"] for p in partials]
        assert seqs == sorted(set(seqs)) == list(range(1, len(seqs) + 1))
        assert canonical(reassemble([p["op"] for p in partials])) == canonical(
            terminal["result"]
        )
        assert server.registry.flat().get("aserver.stream.duplicates_dropped", 0) >= 1

    def test_many_concurrent_blocking_clients(self, aserver_factory):
        server = aserver_factory(workers=2, queue_capacity=64)
        address = server.config.socket_path
        results, errors = [], []

        def one(i):
            try:
                with ServiceClient(address, timeout_s=60.0) as client:
                    results.append(client.submit("trace", workload="fsm",
                                                 fidelity="log", cache=False))
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not errors
        assert len(results) == 32
        assert all(r["status"] in ("ok", "degraded", "rejected") for r in results)
        flat = server.registry.flat()
        assert flat["aserver.connections"] >= 32

    def test_tcp_transport(self, aserver_factory):
        server = aserver_factory(port=0, workers=1)
        address = f"tcp://127.0.0.1:{server.config.port}"
        wait_until_ready(address)
        with ServiceClient(address) as client:
            response = client.submit("trace", workload="rle", fidelity="log",
                                     cache=False)
        assert response["status"] == "ok"

    def test_shutdown_verb_stops_serve_forever(self, aserver_factory):
        server = aserver_factory(workers=1)
        waiter = threading.Thread(target=server.serve_forever, daemon=True)
        waiter.start()
        with ServiceClient(server.config.socket_path) as client:
            assert client.shutdown()["shutting_down"] is True
        waiter.join(timeout=15.0)
        assert not waiter.is_alive()


class TestMakeServer:
    def test_explicit_flag_wins(self, tmp_path):
        config = ServiceConfig(socket_path=str(tmp_path / "a.sock"))
        assert isinstance(make_server(config, use_async=True), AsyncAnalysisServer)
        assert not isinstance(make_server(config, use_async=False), AsyncAnalysisServer)

    def test_env_default(self, tmp_path, monkeypatch):
        config = ServiceConfig(socket_path=str(tmp_path / "b.sock"))
        monkeypatch.delenv("REPRO_SERVICE_ASYNC", raising=False)
        assert not isinstance(make_server(config), AsyncAnalysisServer)
        monkeypatch.setenv("REPRO_SERVICE_ASYNC", "1")
        assert isinstance(make_server(config), AsyncAnalysisServer)


# ---------------------------------------------------------------------------
# ServiceProtocolError normalization (the regression this PR fixes)
# ---------------------------------------------------------------------------
class _BrokenServer(threading.Thread):
    """Accepts one connection, reads the request, sends ``junk``, closes."""

    def __init__(self, path: str, junk: bytes):
        super().__init__(daemon=True)
        self.path = path
        self.junk = junk
        self.listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.listener.bind(path)
        self.listener.listen(1)

    def run(self):
        conn, _ = self.listener.accept()
        try:
            recv_frame(conn)
            conn.sendall(self.junk)
        finally:
            conn.close()
            self.listener.close()


class TestProtocolErrorNormalization:
    def test_connection_dropped_mid_frame_is_typed(self, tmp_path):
        """A server dying between header and payload used to surface the
        raw short-read; the client must raise ServiceProtocolError."""
        path = str(tmp_path / "torn.sock")
        header_only = struct.pack(">I", 1024)  # announces 1 KiB, sends none
        _BrokenServer(path, header_only).start()
        client = ServiceClient(path, timeout_s=5.0)
        with pytest.raises(ServiceProtocolError):
            client.submit("trace", workload="matmul")

    def test_oversized_announcement_is_typed(self, tmp_path):
        path = str(tmp_path / "huge.sock")
        bad_header = struct.pack(">I", MAX_FRAME_BYTES + 7)
        _BrokenServer(path, bad_header).start()
        client = ServiceClient(path, timeout_s=5.0)
        with pytest.raises(ServiceProtocolError):
            client.submit("trace", workload="matmul")

    def test_clean_close_without_response_is_typed(self, tmp_path):
        path = str(tmp_path / "eof.sock")
        _BrokenServer(path, b"").start()
        client = ServiceClient(path, timeout_s=5.0)
        with pytest.raises(ServiceProtocolError, match="mid-request"):
            client.submit("trace", workload="matmul")

    def test_typed_error_is_still_a_service_error(self):
        assert issubclass(ServiceProtocolError, ServiceError)
