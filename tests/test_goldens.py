"""Golden-file tests for telemetry artifacts.

Each fixture under ``tests/goldens/`` is the normalized JSON a fully
deterministic run must reproduce byte-for-byte: two RunReports and one
Chrome trace.  Normalization strips exactly the fields documented as
nondeterministic — ``wall_time_s`` on reports, ``wall_ns`` in span
args — so any other drift (cycle model, record accounting, metric
names, span timestamps) fails the diff.

Runs are pinned to ``FastPathConfig.all_on()`` because the fast-path
introspection counters (``fastpath.dispatch_hits``,
``ontrac.store.chunks``, ``ontrac.store.resident_bytes``,
``shadow.pages_allocated``) are part of the report; everything else in
the fixtures is flag-independent by the bit-identity contract.
``ontrac.store.resident_bytes`` stays golden-stable because it is the
deterministic column-payload figure, not a ``getsizeof``/tracemalloc
measurement.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py
"""

import json
import os
from pathlib import Path

import pytest

from repro import fastpath
from repro.dift import DIFTEngine, PCTaintPolicy, SinkRule
from repro.fastpath import FastPathConfig
from repro.lang import compile_source
from repro.ontrac import OntracConfig
from repro.telemetry import Telemetry, build_report
from repro.vm import Machine
from repro.workloads.spec_like import matmul, sort

GOLDEN_DIR = Path(__file__).parent / "goldens"

ATTACK_SOURCE = """
fn safe(x) { out(1, 1); }
fn admin(x) { out(2, 1); }
fn main() {
    var fp = alloc(1);
    fp[0] = in(0);
    icall(fp[0], 0);
}
"""


# --- normalization ----------------------------------------------------------
def normalize_report(report) -> dict:
    """Report as JSON data minus the wall clock."""
    return report.to_dict(deterministic=True)


def normalize_chrome_trace(trace: dict) -> dict:
    """Chrome trace minus per-span wall-clock annotations."""
    events = []
    for ev in trace["traceEvents"]:
        ev = dict(ev)
        if "args" in ev:
            ev["args"] = {k: v for k, v in ev["args"].items() if k != "wall_ns"}
        events.append(ev)
    return {**trace, "traceEvents": events}


def dumps(data: dict) -> str:
    return json.dumps(data, indent=1, sort_keys=True) + "\n"


# --- fixture builders -------------------------------------------------------
def build_trace_report() -> dict:
    telemetry = Telemetry.on()
    runner = matmul(4).runner()
    runner.telemetry = telemetry
    _, _, result = runner.run_traced(OntracConfig())
    return normalize_report(build_report("trace", result, telemetry.registry))


def build_dift_report() -> dict:
    telemetry = Telemetry.on()
    compiled = compile_source(ATTACK_SOURCE)
    machine = Machine(compiled.program, telemetry=telemetry)
    machine.io.provide(0, [2])  # out-of-range index: hijack attempt
    engine = DIFTEngine(
        PCTaintPolicy(), sinks=[SinkRule(kind="icall", action="record")]
    ).attach(machine)
    result = machine.run()
    engine.publish_telemetry(telemetry.registry)
    return normalize_report(
        build_report("dift", result, telemetry.registry, extra={"alerts": len(engine.alerts)})
    )


def build_sort_chrome_trace() -> dict:
    telemetry = Telemetry.on()
    runner = sort(16).runner()
    runner.telemetry = telemetry
    runner.run_traced(OntracConfig())
    return normalize_chrome_trace(telemetry.tracer.to_chrome_trace())


GOLDENS = {
    "report_trace_matmul.json": build_trace_report,
    "report_dift_attack.json": build_dift_report,
    "trace_sort_traced.json": build_sort_chrome_trace,
}


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden(name):
    with fastpath.overridden(FastPathConfig.all_on()):
        produced = dumps(GOLDENS[name]())
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(produced)
    expected = path.read_text()
    assert produced == expected, f"{name} drifted from golden; see module docstring"


def test_goldens_are_normalized():
    # The stored fixtures themselves must not contain wall-clock fields.
    for name in GOLDENS:
        text = (GOLDEN_DIR / name).read_text()
        assert "wall_time_s" not in text
        assert "wall_ns" not in text
