"""Edge cases for the batch propagation kernels (reference vs array).

The differential suite proves the kernels agree on whole workloads;
these tests pin down the boundaries where a vectorized batch could
plausibly diverge: empty batches, batches split exactly at a sink
record, an ``AttackDetected`` raised mid-batch, overflow-clamped sink
payloads, fallback resolution, and an adopted array-backed shadow.
"""

import warnings
from dataclasses import replace

import pytest

from repro import fastpath
from repro.dift import BoolTaintPolicy, DIFTEngine, ShadowState, SinkRule
from repro.dift.kernel import (
    K_SINK,
    K_SKIP,
    RECORD,
    RECORD_SIZE,
    SMALL_BATCH,
    RecordStreamCapture,
    build_kernel,
)
from repro.lang import compile_source
from repro.vm import Machine, RunStatus
from repro.vm.errors import AttackDetected

from .test_dift import ATTACK_SRC

# A stream with a sink in the middle: plenty of propagation on both
# sides of the first ``out`` so splits and selection probes get real
# work before and after the boundary.
TAINT_SRC = """
fn main() {
    var buf = alloc(16);
    var acc = 0;
    var i = 0;
    while (i < 16) {
        buf[i] = in(0) + i;
        acc = acc + buf[i];
        i = i + 1;
    }
    out(acc, 1);
    var tail = 0;
    var j = 0;
    while (j < 16) {
        tail = tail + buf[j];
        j = j + 1;
    }
    out(tail, 1);
}
"""

RECORD_SINKS = [SinkRule(kind="out", action="record")]


def capture_stream(src, inputs=None):
    """Run ``src`` with no DIFT attached, capturing its record stream."""
    cp = compile_source(src)
    m = Machine(cp.program)
    for chan, values in (inputs or {}).items():
        m.io.provide(chan, values)
    cap = RecordStreamCapture().attach(m)
    res = m.run()
    cap.finish()
    return m, res, cap


def inline_run(src, inputs=None, sinks=None, kernel="reference"):
    """The ground truth: a stock engine attached to a live machine."""
    cp = compile_source(src)
    m = Machine(cp.program)
    for chan, values in (inputs or {}).items():
        m.io.provide(chan, values)
    eng = DIFTEngine(BoolTaintPolicy(), sinks=sinks, kernel=kernel).attach(m)
    res = m.run()
    return m, res, eng


def kernel_state(kern):
    """Every observable a consumer can read off a kernel."""
    return (
        str(kern.alerts),
        kern.stats,
        dict(kern.shadow.regs),
        kern.shadow.mem_items(),
        kern.shadow.peak_locations,
        kern.seq,
    )


def record_offsets(chunk, kind):
    """Byte offsets of every record of ``kind`` in a packed chunk."""
    return [
        i * RECORD_SIZE
        for i, (k, *_rest) in enumerate(RECORD.iter_unpack(chunk))
        if k == kind
    ]


@pytest.mark.parametrize("name", ["reference", "array"])
def test_empty_batch_is_a_noop(name):
    kern = build_kernel(name, BoolTaintPolicy(), sinks=RECORD_SINKS)
    effects = kern.propagate_batch(b"")
    assert effects.records == 0
    assert effects.instructions == 0
    assert effects.overhead == 0
    assert not effects.raised
    assert kern.seq == 0
    assert kernel_state(kern)[:5] == ("[]", kern.stats, {}, {}, 0)


def test_batch_split_exactly_at_sink_record():
    _, res, cap = capture_stream(TAINT_SRC, inputs={0: list(range(16))})
    assert res.status is RunStatus.EXITED
    stream = b"".join(cap.chunks)
    sink_off = record_offsets(stream, K_SINK)[0]
    # The sink must be interior — records on both sides of each split.
    assert 0 < sink_off < len(stream) - RECORD_SIZE
    assert len(stream) // RECORD_SIZE > SMALL_BATCH

    splits = {
        "whole": [stream],
        # sink record is the *last* record of the first batch
        "sink-ends-batch": [stream[: sink_off + RECORD_SIZE], stream[sink_off + RECORD_SIZE :]],
        # sink record is the *first* record of the second batch
        "sink-starts-batch": [stream[:sink_off], stream[sink_off:]],
    }
    states = {}
    for name in ("reference", "array"):
        for label, chunks in splits.items():
            kern = cap.prime(build_kernel(name, BoolTaintPolicy(), sinks=RECORD_SINKS))
            for chunk in chunks:
                kern.propagate_batch(chunk)
            states[(name, label)] = kernel_state(kern)
    baseline = states[("reference", "whole")]
    assert all(state == baseline for state in states.values()), states
    # Both sinks fired, on tainted data.
    assert baseline[1].sink_checks == 2
    assert baseline[0].count("TaintAlert") == 2


def test_raise_mid_batch_freezes_state_at_reference_point():
    # Big enough that the array kernel leaves the small-batch path; run
    # the machine *without* DIFT so execution sails past the hijacked
    # icall and the stream keeps going after the sink record.
    inputs = {0: [33] + [0] * 32 + [1]}
    src = ATTACK_SRC.replace("alloc(4)", "alloc(32)")
    _, res, cap = capture_stream(src, inputs=inputs)
    assert res.status is RunStatus.EXITED
    stream = b"".join(cap.chunks)
    n_records = len(stream) // RECORD_SIZE
    assert n_records > SMALL_BATCH
    sink_off = record_offsets(stream, K_SINK)[0]
    assert sink_off < len(stream) - RECORD_SIZE  # records follow the sink

    states, effects = {}, {}
    for name in ("reference", "array"):
        kern = cap.prime(build_kernel(name, BoolTaintPolicy(), sinks=[SinkRule(kind="icall")]))
        with pytest.raises(AttackDetected):
            kern.propagate_batch(stream)
        states[name] = kernel_state(kern)
        effects[name] = kern.raised_effects
    assert states["array"] == states["reference"]
    ref, arr = effects["reference"], effects["array"]
    assert arr.raised and ref.raised
    assert (arr.records, arr.instructions, arr.tainted, arr.overhead) == (
        ref.records,
        ref.instructions,
        ref.tainted,
        ref.overhead,
    )
    # Frozen exactly at the raising record: the sequence number equals
    # the instruction count consumed, and no post-sink record leaked in.
    assert states["reference"][5] == ref.instructions
    assert ref.instructions < cap.instructions


@pytest.mark.parametrize("name", ["reference", "array"])
def test_overflow_sink_fixup_round_trip(name):
    # 2**70 overflows the i64 record payload; the capture clamps it and
    # parks the true value in the fixup side table.
    src = """
    fn main() {
        var x = in(0);
        var big = 1;
        var i = 0;
        while (i < 70) { big = big * 2; i = i + 1; }
        out(big + x, 1);
    }
    """
    inputs = {0: [3]}
    _, _, inline_eng = inline_run(src, inputs=inputs, sinks=RECORD_SINKS)
    true_values = [al.value for al in inline_eng.alerts]
    assert true_values == [2**70 + 3]

    _, _, cap = capture_stream(src, inputs=inputs)
    assert cap.fixups  # the clamp actually happened
    kern = cap.prime(build_kernel(name, BoolTaintPolicy(), sinks=RECORD_SINKS))
    for chunk in cap.chunks:
        kern.propagate_batch(chunk)
    assert [al.value for al in kern.alerts] != true_values  # clamped on the wire
    patched = cap.patch_alerts(kern.alerts)
    assert [al.value for al in patched] == true_values
    assert [al.seq for al in patched] == [al.seq for al in inline_eng.alerts]


def test_explicit_array_request_without_numpy_warns_once(monkeypatch):
    monkeypatch.setattr(fastpath, "_numpy_available", False)
    monkeypatch.setattr(fastpath, "_fallback_warned", False)
    before = fastpath.kernel_fallbacks.get("numpy", 0)
    with pytest.warns(RuntimeWarning, match="falling back to the reference kernel"):
        eng = DIFTEngine(BoolTaintPolicy(), kernel="array")
    assert eng.kernel_name == "reference"
    assert eng.kernel_fallback == "numpy"
    # Counted every time, warned once.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        eng2 = DIFTEngine(BoolTaintPolicy(), kernel="array")
    assert eng2.kernel_fallback == "numpy"
    assert fastpath.kernel_fallbacks["numpy"] == before + 2


@pytest.mark.skipif(not fastpath.numpy_available(), reason="requires numpy")
def test_policy_fallback_is_silent_when_implicit():
    class WiderPolicy(BoolTaintPolicy):
        """Anything but the two exact scalar policies must demote."""

    before = fastpath.kernel_fallbacks.get("policy", 0)
    # Pin the config default to array (the environment may force
    # reference, which would short-circuit before the policy gate).
    config = replace(fastpath.current(), array_kernel=True)
    with warnings.catch_warnings(), fastpath.overridden(config):
        warnings.simplefilter("error")
        eng = DIFTEngine(WiderPolicy())  # default kernel resolution
    assert eng.kernel_name == "reference"
    assert eng.kernel_fallback == "policy"
    assert fastpath.kernel_fallbacks["policy"] == before + 1


@pytest.mark.skipif(not fastpath.numpy_available(), reason="requires numpy")
def test_adopted_array_shadow_matches_reference():
    _, _, cap = capture_stream(TAINT_SRC, inputs={0: list(range(16))})
    policy = BoolTaintPolicy()
    adopted = ShadowState(policy, array=True)
    arr = cap.prime(build_kernel("array", policy, sinks=RECORD_SINKS, shadow=adopted))
    ref = cap.prime(build_kernel("reference", BoolTaintPolicy(), sinks=RECORD_SINKS))
    for chunk in cap.chunks:
        arr.propagate_batch(chunk)
        ref.propagate_batch(chunk)
    assert arr.shadow is adopted  # the columnar store was used in place
    assert kernel_state(arr) == kernel_state(ref)
