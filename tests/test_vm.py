"""Unit tests for the VM: interpreter semantics, threads/sync, scheduling,
hooks, interventions, snapshots."""

import pytest

from repro.isa import Instruction, Opcode, assemble
from repro.vm import (
    EOF,
    STDOUT,
    CostModel,
    Hook,
    Intervention,
    Machine,
    Memory,
    ProgramFailure,
    RandomScheduler,
    ReplayDivergenceError,
    RoundRobinScheduler,
    RunStatus,
    ScriptedScheduler,
    restore_snapshot,
    stack_top,
    take_snapshot,
)


def run(src, inputs=None, scheduler=None, args=(), max_instructions=1_000_000):
    m = Machine(assemble(src), scheduler=scheduler, args=args)
    for chan, values in (inputs or {}).items():
        m.io.provide(chan, values)
    res = m.run(max_instructions=max_instructions)
    return m, res


# --- arithmetic -------------------------------------------------------------
class TestALU:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, -1),
            ("mul", -3, 4, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),  # trunc toward zero (C semantics)
            ("mod", 7, 2, 1),
            ("mod", -7, 2, -1),
            ("and", 6, 3, 2),
            ("or", 6, 3, 7),
            ("xor", 6, 3, 5),
            ("shl", 3, 2, 12),
            ("shr", 12, 2, 3),
            ("seq", 5, 5, 1),
            ("sne", 5, 5, 0),
            ("slt", 3, 4, 1),
            ("sle", 4, 4, 1),
            ("sgt", 3, 4, 0),
            ("sge", 4, 4, 1),
        ],
    )
    def test_binops(self, op, a, b, expected):
        m, res = run(
            f"""
            .func main 0
                li r1, {a}
                li r2, {b}
                {op} r3, r1, r2
                out r3, 1
                halt
            .end
            """
        )
        assert res.status is RunStatus.HALTED
        assert m.io.output(STDOUT) == [expected]

    def test_unary_and_moves(self):
        m, _ = run(
            """
            .func main 0
                li r1, 0
                not r2, r1
                neg r3, r2
                mov r4, r3
                addi r5, r4, 10
                muli r6, r5, 3
                out r2, 1
                out r6, 1
                halt
            .end
            """
        )
        assert m.io.output(STDOUT) == [1, 27]

    def test_div_by_zero_fails(self):
        m, res = run(
            """
            .func main 0
                li r1, 1
                li r2, 0
                div r3, r1, r2
                halt
            .end
            """
        )
        assert res.status is RunStatus.FAILED
        assert res.failure.kind == "div_zero"
        assert res.failure.pc == 2

    def test_bad_shift_fails(self):
        _, res = run(
            """
            .func main 0
                li r1, 1
                li r2, -1
                shl r3, r1, r2
                halt
            .end
            """
        )
        assert res.failure.kind == "bad_shift"


# --- memory ------------------------------------------------------------------
class TestMemory:
    def test_load_store(self):
        m, _ = run(
            """
            .func main 0
                li r1, 2000
                li r2, 99
                store r2, r1, 5
                load r3, r1, 5
                out r3, 1
                halt
            .end
            """
        )
        assert m.io.output(STDOUT) == [99]

    def test_uninitialized_reads_zero(self):
        m, _ = run(
            """
            .func main 0
                li r1, 5000
                load r2, r1, 0
                out r2, 1
                halt
            .end
            """
        )
        assert m.io.output(STDOUT) == [0]

    def test_push_pop(self):
        m, _ = run(
            """
            .func main 0
                li r1, 11
                li r2, 22
                push r1
                push r2
                pop r3
                pop r4
                out r3, 1
                out r4, 1
                halt
            .end
            """
        )
        assert m.io.output(STDOUT) == [22, 11]

    def test_sp_initialized_per_thread(self):
        assert stack_top(0) != stack_top(1)

    def test_alloc_free(self):
        m, _ = run(
            """
            .func main 0
                li r1, 8
                alloc r2, r1
                li r3, 5
                store r3, r2, 0
                load r4, r2, 0
                out r4, 1
                free r2
                halt
            .end
            """
        )
        assert m.io.output(STDOUT) == [5]
        assert m.memory.total_allocs == 1
        assert m.memory.total_frees == 1

    def test_consecutive_allocs_adjacent(self):
        mem = Memory()
        a = mem.alloc(10)
        b = mem.alloc(10)
        assert b == a + 10  # overflow from a corrupts b

    def test_freed_block_reused_exact_size(self):
        mem = Memory()
        a = mem.alloc(10)
        mem.free(a)
        b = mem.alloc(10)
        assert b == a

    def test_alloc_padding_separates_blocks(self):
        mem = Memory()
        mem.alloc_padding = 4
        a = mem.alloc(10)
        b = mem.alloc(10)
        assert b - a == 14

    def test_bad_free_fails(self):
        _, res = run(
            """
            .func main 0
                li r1, 12345
                free r1
                halt
            .end
            """
        )
        assert res.failure.kind == "bad_free"

    def test_block_of(self):
        mem = Memory()
        base = mem.alloc(10)
        assert mem.block_of(base + 3) == (base, 10)
        assert mem.block_of(base + 10) is None

    def test_overflow_corrupts_neighbor(self):
        mem = Memory()
        a = mem.alloc(4)
        b = mem.alloc(4)
        mem.store(a + 5, 77)  # out of bounds for a, lands in b
        assert mem.load(b + 1) == 77


# --- control flow ---------------------------------------------------------------
class TestControl:
    def test_loop(self):
        m, _ = run(
            """
            .func main 0
                li r0, 0
                li r1, 5
            loop:
                add r0, r0, r1
                addi r1, r1, -1
                br r1, loop
                out r0, 1
                halt
            .end
            """
        )
        assert m.io.output(STDOUT) == [15]

    def test_call_ret(self):
        m, _ = run(
            """
            .func main 0
                li r0, 20
                call double
                out r0, 1
                halt
            .end
            .func double 1
                add r0, r0, r0
                ret
            .end
            """
        )
        assert m.io.output(STDOUT) == [40]

    def test_recursion(self):
        # factorial(5) with caller-save via stack
        m, _ = run(
            """
            .func main 0
                li r0, 5
                call fact
                out r0, 1
                halt
            .end
            .func fact 1
                li r1, 1
                sgt r2, r0, r1
                br r2, rec
                li r0, 1
                ret
            rec:
                push r0
                addi r0, r0, -1
                call fact
                pop r1
                mul r0, r0, r1
                ret
            .end
            """
        )
        assert m.io.output(STDOUT) == [120]

    def test_icall(self):
        m, _ = run(
            """
            .func main 0
                li r1, fn:square
                li r0, 6
                icall r1
                out r0, 1
                halt
            .end
            .func square 1
                mul r0, r0, r0
                ret
            .end
            """
        )
        assert m.io.output(STDOUT) == [36]

    def test_icall_invalid_target_fails(self):
        _, res = run(
            """
            .func main 0
                li r1, 999
                icall r1
                halt
            .end
            """
        )
        assert res.failure.kind == "bad_icall"

    def test_main_return_exits(self):
        _, res = run(".func main 0\n    li r0, 0\n    ret\n.end\n")
        assert res.status is RunStatus.EXITED

    def test_assert_pass_and_fail(self):
        _, ok = run(".func main 0\n    li r0, 1\n    assert r0\n    halt\n.end\n")
        assert ok.status is RunStatus.HALTED
        _, bad = run(".func main 0\n    li r0, 0\n    assert r0\n    halt\n.end\n")
        assert bad.failure.kind == "assert"

    def test_fail_instruction(self):
        _, res = run(".func main 0\n    fail 7\n.end\n")
        assert res.failure.kind == "fail"
        assert "7" in res.failure.message

    def test_instruction_limit(self):
        _, res = run(
            ".func main 0\nspin:\n    jmp spin\n.end\n",
            max_instructions=100,
        )
        assert res.status is RunStatus.LIMIT
        assert res.instructions == 100


# --- I/O ------------------------------------------------------------------------
class TestIO:
    def test_input_sequence(self):
        m, _ = run(
            """
            .func main 0
                in r1, 0
                in r2, 0
                add r3, r1, r2
                out r3, 1
                halt
            .end
            """,
            inputs={0: [10, 32]},
        )
        assert m.io.output(STDOUT) == [42]

    def test_input_exhaustion_gives_eof(self):
        m, _ = run(
            """
            .func main 0
                in r1, 0
                out r1, 1
                halt
            .end
            """,
            inputs={0: []},
        )
        assert m.io.output(STDOUT) == [EOF]

    def test_read_log_records_indices(self):
        m, _ = run(
            ".func main 0\n    in r1, 0\n    in r2, 0\n    halt\n.end\n",
            inputs={0: [5, 6]},
        )
        assert [(c, v, i) for _, c, v, i in m.io.read_log] == [(0, 5, 0), (0, 6, 1)]

    def test_text_helpers(self):
        m = Machine(assemble(".func main 0\n    halt\n.end\n"))
        m.io.provide_text(0, "hi")
        assert m.io.inputs[0] == [104, 105]
        m.io.write(1, 104)
        m.io.write(1, 105)
        assert m.io.output_text(1) == "hi"


# --- threads & sync ----------------------------------------------------------------
COUNTER = """
.func main 0
    li r1, 100      ; shared counter address
    li r2, 0
    store r2, r1, 0
    li r3, fn:worker
    li r4, 0
    spawn r5, worker, r4
    spawn r6, worker, r4
    join r5
    join r6
    load r7, r1, 0
    out r7, 1
    halt
.end
.func worker 1
    li r1, 100
    li r2, 1        ; lock id
    li r3, 50       ; iterations
loop:
    lock r2
    load r4, r1, 0
    addi r4, r4, 1
    store r4, r1, 0
    unlock r2
    addi r3, r3, -1
    br r3, loop
    ret
.end
"""


class TestThreads:
    def test_spawn_join_result(self):
        m, res = run(
            """
            .func main 0
                li r1, 21
                spawn r2, double, r1
                join r2
                halt
            .end
            .func double 1
                add r0, r0, r0
                ret
            .end
            """
        )
        assert res.status is RunStatus.HALTED
        assert m.threads[1].result == 42

    @pytest.mark.parametrize("seed", [0, 1, 7, 123])
    def test_locked_counter_correct_under_any_schedule(self, seed):
        m, res = run(COUNTER, scheduler=RandomScheduler(seed=seed, min_quantum=1, max_quantum=7))
        assert res.status is RunStatus.HALTED
        assert m.io.output(STDOUT) == [100]

    def test_unlocked_counter_can_lose_updates(self):
        # Remove locking: with small quanta some interleaving loses updates.
        src = COUNTER.replace("    lock r2\n", "").replace("    unlock r2\n", "")
        lost = False
        for seed in range(12):
            m, res = run(src, scheduler=RandomScheduler(seed=seed, min_quantum=1, max_quantum=4))
            assert res.status is RunStatus.HALTED
            if m.io.output(STDOUT) != [100]:
                lost = True
        assert lost, "expected at least one seed to exhibit the race"

    def test_deadlock_detected(self):
        _, res = run(
            """
            .func main 0
                li r1, 1
                lock r1
                spawn r2, other, r1
                join r2
                halt
            .end
            .func other 1
                li r1, 1
                lock r1
                ret
            .end
            """
        )
        assert res.status is RunStatus.DEADLOCK

    def test_bad_unlock_fails(self):
        _, res = run(
            """
            .func main 0
                li r1, 1
                unlock r1
                halt
            .end
            """
        )
        assert res.failure.kind == "bad_unlock"

    def test_relock_fails(self):
        _, res = run(
            """
            .func main 0
                li r1, 1
                lock r1
                lock r1
                halt
            .end
            """
        )
        assert res.failure.kind == "relock"

    def test_barrier_releases_all(self):
        m, res = run(
            """
            .func main 0
                li r1, 1
                li r2, 3
                barinit r1, r2
                li r3, 0
                spawn r4, w, r3
                spawn r5, w, r3
                barwait r1
                out r1, 1
                join r4
                join r5
                halt
            .end
            .func w 1
                li r1, 1
                barwait r1
                ret
            .end
            """
        )
        assert res.status is RunStatus.HALTED
        assert m.io.output(STDOUT) == [1]

    def test_uninitialized_barrier_fails(self):
        _, res = run(".func main 0\n    li r1, 9\n    barwait r1\n    halt\n.end\n")
        assert res.failure.kind == "bad_barrier"

    def test_lock_grant_is_fifo_deterministic(self):
        src = """
        .func main 0
            li r1, 1
            lock r1
            li r2, 0
            spawn r3, w, r2
            li r2, 1
            spawn r4, w, r2
            unlock r1
            join r3
            join r4
            halt
        .end
        .func w 1
            li r1, 1
            lock r1
            out r0, 1
            unlock r1
            ret
        .end
        """
        m1, _ = run(src, scheduler=RoundRobinScheduler(quantum=3))
        m2, _ = run(src, scheduler=RoundRobinScheduler(quantum=3))
        assert m1.io.output(STDOUT) == m2.io.output(STDOUT)


# --- schedulers -----------------------------------------------------------------
class TestSchedulers:
    def test_round_robin_rotates(self):
        s = RoundRobinScheduler(quantum=10)
        assert s.pick([0, 1, 2], None) == (0, 10)
        assert s.pick([0, 1, 2], 0) == (1, 10)
        assert s.pick([0, 1, 2], 1) == (2, 10)
        assert s.pick([0, 1, 2], 2) == (0, 10)

    def test_round_robin_skips_missing(self):
        s = RoundRobinScheduler(quantum=5)
        s.pick([0, 1, 2], None)
        assert s.pick([0, 2], 0)[0] == 2

    def test_random_reproducible(self):
        a = RandomScheduler(seed=42)
        b = RandomScheduler(seed=42)
        picks_a = [a.pick([0, 1, 2], None) for _ in range(20)]
        picks_b = [b.pick([0, 1, 2], None) for _ in range(20)]
        assert picks_a == picks_b

    def test_random_fork_continues_identically(self):
        a = RandomScheduler(seed=7)
        for _ in range(5):
            a.pick([0, 1], None)
        b = a.fork()
        assert [a.pick([0, 1], None) for _ in range(10)] == [
            b.pick([0, 1], None) for _ in range(10)
        ]

    def test_scripted_follows_segments(self):
        s = ScriptedScheduler([(0, 5), (1, 3)])
        assert s.pick([0, 1], None) == (0, 5)
        assert s.pick([0, 1], 0) == (1, 3)
        assert s.exhausted

    def test_scripted_divergence_raises(self):
        s = ScriptedScheduler([(3, 5)])
        with pytest.raises(ReplayDivergenceError):
            s.pick([0, 1], None)

    def test_scripted_tail_falls_back(self):
        s = ScriptedScheduler([], tail_quantum=9)
        assert s.pick([1], None) == (1, 9)

    def test_schedule_replay_reproduces_run(self):
        m1, res1 = run(COUNTER, scheduler=RandomScheduler(seed=3, min_quantum=1, max_quantum=9))
        m2, res2 = run(COUNTER, scheduler=ScriptedScheduler(res1.schedule))
        assert res2.status is res1.status
        assert m2.io.output(STDOUT) == m1.io.output(STDOUT)
        assert res2.schedule == res1.schedule


# --- hooks ------------------------------------------------------------------------
class Recorder(Hook):
    def __init__(self):
        self.events = []
        self.named = []

    def on_instruction(self, ev):
        self.events.append(ev)

    def on_lock(self, tid, lock_id, seq):
        self.named.append(("lock", tid, lock_id))

    def on_unlock(self, tid, lock_id, seq):
        self.named.append(("unlock", tid, lock_id))

    def on_input(self, tid, channel, value, index, seq):
        self.named.append(("in", channel, value, index))

    def on_alloc(self, tid, base, size, seq):
        self.named.append(("alloc", base, size))

    def on_thread_start(self, tid, fid, arg, parent):
        self.named.append(("start", tid, parent))

    def on_failure(self, info):
        self.named.append(("failure", info.kind))


class TestHooks:
    def test_event_stream_matches_execution(self):
        m = Machine(assemble(
            """
            .func main 0
                li r1, 7
                addi r2, r1, 1
                out r2, 1
                halt
            .end
            """
        ))
        rec = m.hooks.subscribe(Recorder())
        m.run()
        assert [e.instr.opcode for e in rec.events] == [
            Opcode.LI,
            Opcode.ADDI,
            Opcode.OUT,
            Opcode.HALT,
        ]
        assert rec.events[0].reg_writes == ((1, 7),)
        assert rec.events[1].reg_reads == ((1, 7),)
        assert rec.events[1].reg_writes == ((2, 8),)
        assert [e.seq for e in rec.events] == [0, 1, 2, 3]

    def test_memory_events_carry_addresses(self):
        m = Machine(assemble(
            """
            .func main 0
                li r1, 3000
                li r2, 5
                store r2, r1, 2
                load r3, r1, 2
                halt
            .end
            """
        ))
        rec = m.hooks.subscribe(Recorder())
        m.run()
        assert rec.events[2].mem_writes == ((3002, 5),)
        assert rec.events[3].mem_reads == ((3002, 5),)

    def test_branch_outcome_in_event(self):
        m = Machine(assemble(
            """
            .func main 0
                li r1, 1
                br r1, target
                nop
            target:
                halt
            .end
            """
        ))
        rec = m.hooks.subscribe(Recorder())
        m.run()
        assert rec.events[1].taken is True

    def test_named_callbacks(self):
        m = Machine(assemble(
            """
            .func main 0
                in r1, 0
                li r2, 4
                alloc r3, r2
                li r4, 1
                lock r4
                unlock r4
                li r5, 0
                spawn r6, w, r5
                join r6
                halt
            .end
            .func w 1
                ret
            .end
            """
        ))
        m.io.provide(0, [9])
        rec = m.hooks.subscribe(Recorder())
        m.run()
        kinds = [n[0] for n in rec.named]
        assert kinds == ["in", "alloc", "lock", "unlock", "start"]
        assert ("in", 0, 9, 0) in rec.named

    def test_failure_hook(self):
        m = Machine(assemble(".func main 0\n    fail 1\n.end\n"))
        rec = m.hooks.subscribe(Recorder())
        m.run()
        assert ("failure", "fail") in rec.named

    def test_no_hooks_no_events(self):
        m = Machine(assemble(SIMPLE_SRC))
        assert not m.hooks.active
        m.run()  # must not crash building events

    def test_attack_detected_from_hook_stops_run(self):
        from repro.vm import AttackDetected

        class Tripwire(Hook):
            def on_instruction(self, ev):
                if ev.instr.opcode is Opcode.OUT:
                    raise AttackDetected("tainted sink", culprit_pc=ev.pc)

        m = Machine(assemble(
            ".func main 0\n    li r1, 5\n    out r1, 1\n    halt\n.end\n"
        ))
        m.hooks.subscribe(Tripwire())
        res = m.run()
        assert res.status is RunStatus.FAILED
        assert res.failure.kind == "attack_detected"


SIMPLE_SRC = ".func main 0\n    li r0, 1\n    halt\n.end\n"


# --- interventions -------------------------------------------------------------
class TestInterventions:
    def test_branch_switch_changes_path(self):
        class SwitchFirst(Intervention):
            def branch_outcome(self, instr, occurrence, default):
                return not default

        src = """
        .func main 0
            li r1, 0
            brz r1, yes
            out r1, 1
            halt
        yes:
            li r2, 9
            out r2, 1
            halt
        .end
        """
        m = Machine(assemble(src))
        m.run()
        assert m.io.output(STDOUT) == [9]  # natural path

        m2 = Machine(assemble(src))
        m2.intervention = SwitchFirst()
        m2.run()
        assert m2.io.output(STDOUT) == [0]  # switched path

    def test_value_replacement(self):
        class ReplaceAt(Intervention):
            def __init__(self, pc, occurrence, value):
                self.pc, self.occurrence, self.value = pc, occurrence, value

            def transform_def(self, instr, occurrence, value):
                if instr.index == self.pc and occurrence == self.occurrence:
                    return self.value
                return value

        src = """
        .func main 0
            li r1, 2
            muli r2, r1, 10
            out r2, 1
            halt
        .end
        """
        m = Machine(assemble(src))
        m.intervention = ReplaceAt(pc=1, occurrence=0, value=777)
        m.run()
        assert m.io.output(STDOUT) == [777]

    def test_occurrence_counting(self):
        class CountBranches(Intervention):
            def __init__(self):
                self.seen = []

            def branch_outcome(self, instr, occurrence, default):
                self.seen.append(occurrence)
                return default

        src = """
        .func main 0
            li r1, 3
        loop:
            addi r1, r1, -1
            br r1, loop
            halt
        .end
        """
        m = Machine(assemble(src))
        iv = CountBranches()
        m.intervention = iv
        m.run()
        assert iv.seen == [0, 1, 2]


# --- cost model & snapshots ------------------------------------------------------
class TestCostAndSnapshot:
    def test_cycles_accumulate(self):
        m, res = run(SIMPLE_SRC)
        assert res.cycles.base > 0
        assert res.cycles.overhead == 0
        assert res.cycles.slowdown == 1.0

    def test_overhead_accounting(self):
        m = Machine(assemble(SIMPLE_SRC))
        m.add_overhead(100)
        res = m.run()
        assert res.cycles.overhead == 100
        assert res.cycles.slowdown > 1.0

    def test_custom_cost_model(self):
        cm = CostModel(costs={Opcode.LI: 50}, default=1)
        m = Machine(assemble(SIMPLE_SRC), cost_model=cm)
        res = m.run()
        assert res.cycles.base == 51  # LI=50 + HALT=1

    def test_snapshot_restore_reproduces(self):
        src = """
        .func main 0
            li r1, 0
            li r2, 10
        loop:
            add r1, r1, r2
            addi r2, r2, -1
            br r2, loop
            out r1, 1
            halt
        .end
        """
        m = Machine(assemble(src))
        # run a few instructions, snapshot, run to completion
        m.run(max_instructions=8)
        snap = take_snapshot(m)
        res1 = m.run(max_instructions=1_000_000)
        out1 = m.io.output(STDOUT)
        # restore and re-run the continuation
        restore_snapshot(m, snap)
        m.halted = False
        res2 = m.run(max_instructions=1_000_000)
        assert m.io.output(STDOUT) == out1 == [55]

    def test_snapshot_isolated_from_later_writes(self):
        m = Machine(assemble(SIMPLE_SRC))
        snap = take_snapshot(m)
        m.memory.store(5000, 1)
        assert snap.memory.load(5000) == 0

    def test_snapshot_size_cells(self):
        m = Machine(assemble(SIMPLE_SRC))
        snap = take_snapshot(m)
        assert snap.size_cells >= len(m.threads[0].regs)
