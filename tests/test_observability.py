"""Observability: tracing, metrics exposition, flight recorder.

Unit tests cover the pure pieces (Prometheus rendering, quantile
estimation, the wall-clock tracer, the flight-recorder ring); the
live-daemon tests start real servers on tmp Unix sockets and assert the
end-to-end properties the tools rely on — one Chrome trace per traced
job whose client/server/admission/worker spans share a trace id and
nest, a ``metrics`` request kind with well-formed exposition text, and
a crash dump artifact on worker death (chaos and deadline-cancel paths,
``allow_chaos`` making them deterministic).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.service import AnalysisServer, ServiceClient, ServiceConfig
from repro.service.observe import NULL_OBSERVABILITY, ServiceObservability
from repro.telemetry import MetricsRegistry, validate_chrome_trace
from repro.telemetry.obs import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    MetricsWindow,
    WallSpanTracer,
    chrome_trace,
    histogram_quantile,
    latency_summary,
    new_trace_id,
    render_prometheus,
    span_event,
    wall_now_us,
)


@pytest.fixture
def server_factory(tmp_path):
    """Start servers on tmp Unix sockets; all stopped at teardown."""
    servers = []
    counter = [0]

    def start(**kwargs) -> AnalysisServer:
        counter[0] += 1
        kwargs.setdefault("socket_path", str(tmp_path / f"svc{counter[0]}.sock"))
        kwargs.setdefault("obs_dir", str(tmp_path / "obs"))
        server = AnalysisServer(ServiceConfig(**kwargs)).start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


# ---------------------------------------------------------------------------
# prometheus exposition + quantiles
# ---------------------------------------------------------------------------
class TestExposition:
    def test_counter_gauge_histogram_render(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("service.jobs.received").inc(5)
        reg.gauge("service.queue.depth").set(3)
        h = reg.histogram("service.latency.total_s", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE service_jobs_received_total counter" in lines
        assert "service_jobs_received_total 5" in lines
        assert "service_queue_depth 3" in lines
        # cumulative buckets: 1 under 0.1, 2 under 1.0, 3 under +Inf
        assert 'service_latency_total_s_bucket{le="0.1"} 1' in lines
        assert 'service_latency_total_s_bucket{le="1.0"} 2' in lines
        assert 'service_latency_total_s_bucket{le="+Inf"} 3' in lines
        assert "service_latency_total_s_count 3" in lines
        assert text.endswith("\n")
        # every sample line is "name[{labels}] value"
        for line in lines:
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name.replace("_", "").replace("{", "").replace("}", "")

    def test_quantiles_interpolate_and_handle_edges(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # p50 lands in the (1, 2] bucket
        q = histogram_quantile(h.as_dict(), 0.5)
        assert 1.0 <= q <= 2.0
        # overflow observations clamp to the last finite bound
        h.observe(100.0)
        assert histogram_quantile(h.as_dict(), 0.999) == 4.0
        empty = reg.histogram("empty", buckets=(1.0,))
        assert histogram_quantile(empty.as_dict(), 0.5) is None

    def test_latency_summary_derives_rates(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("service.jobs.received").inc(10)
        reg.counter("service.jobs.completed").inc(7)
        reg.counter("service.jobs.rejected").inc(2)
        h = reg.histogram("service.latency.total_s", buckets=(0.1, 1.0))
        for _ in range(7):
            h.observe(0.05)
        summary = latency_summary(reg)
        assert summary["jobs_received"] == 10
        assert summary["reject_rate"] == pytest.approx(0.2)
        assert summary["p50_ms"] is not None and summary["p50_ms"] <= 100.0


# ---------------------------------------------------------------------------
# wall tracer + flight recorder + window
# ---------------------------------------------------------------------------
class TestObsPrimitives:
    def test_wall_tracer_retroactive_spans_filter_by_trace(self):
        tracer = WallSpanTracer(enabled=True)
        t0 = wall_now_us()
        tracer.span_at("a", t0, 10, trace_id="t1")
        tracer.span_at("b", t0 + 5, 3, trace_id="t2")
        tracer.instant_at("mark", t0 + 1, trace_id="t1")
        all_events = tracer.chrome_events()
        only_t1 = tracer.chrome_events(trace_id="t1")
        assert len(all_events) == 3
        assert {e["name"] for e in only_t1} == {"a", "mark"}
        assert all(e["pid"] == os.getpid() for e in only_t1)
        trace = chrome_trace(all_events)
        validate_chrome_trace(trace)

    def test_wall_tracer_ring_is_bounded(self):
        tracer = WallSpanTracer(enabled=True, max_events=8)
        for i in range(50):
            tracer.span_at(f"s{i}", i, 1)
        events = tracer.chrome_events()
        assert len(events) == 8
        assert events[-1]["name"] == "s49"

    def test_flight_recorder_ring_and_dump(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        snap = rec.snapshot()
        assert len(snap) == 4
        assert [e["i"] for e in snap] == [6, 7, 8, 9]
        assert snap[0]["seq"] < snap[-1]["seq"]
        path = tmp_path / "dump.json"
        rec.dump(str(path), reason="unit-test", slot=3)
        data = json.loads(path.read_text())
        assert data["schema"] == FLIGHT_SCHEMA
        assert data["reason"] == "unit-test"
        assert data["slot"] == 3
        assert len(data["events"]) == 4

    def test_metrics_window_is_bounded(self):
        reg = MetricsRegistry(enabled=True)
        win = MetricsWindow(capacity=3)
        for i in range(7):
            reg.counter("c").inc()
            win.sample(reg)
        series = win.series()
        assert len(win) == 3
        assert series[-1]["values"]["c"] == 7

    def test_service_observability_crash_dump(self, tmp_path):
        obs = ServiceObservability(
            MetricsRegistry(enabled=True), dump_dir=str(tmp_path)
        )
        obs.event("worker.crash", slot=1, pid=42)
        path = obs.crash_dump("worker-crash", slot=1)
        assert path is not None and os.path.exists(path)
        data = json.loads(open(path).read())
        assert data["reason"] == "worker-crash"
        assert any(e["kind"] == "worker.crash" for e in data["events"])
        payload = obs.metrics_payload(dump=False)
        assert payload["dumps"] == [path]
        obs.stop()

    def test_null_observability_is_inert(self, tmp_path):
        assert NULL_OBSERVABILITY.enabled is False
        NULL_OBSERVABILITY.event("anything", x=1)
        NULL_OBSERVABILITY.span_at("s", 0, 1)
        assert NULL_OBSERVABILITY.crash_dump("r") is None
        assert NULL_OBSERVABILITY.trace_events("t") == []
        assert NULL_OBSERVABILITY.metrics_payload() == {}
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# live daemon: tracing, metrics kind, crash dumps
# ---------------------------------------------------------------------------
class TestLiveObservability:
    def test_traced_job_yields_one_nested_chrome_trace(self, server_factory, tmp_path):
        server = server_factory(workers=1)
        trace_path = tmp_path / "job.trace.json"
        with ServiceClient(server.config.address()) as client:
            response, trace = client.submit_traced(
                "trace", workload="hashloop", scale=1,
                trace_path=str(trace_path),
            )
        assert response["status"] == "ok"
        validate_chrome_trace(trace)
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        by_name = {e["name"]: e for e in events}
        for required in ("client.request", "server.handle",
                         "server.admission", "worker.execute"):
            assert required in by_name, f"missing span {required}"
        ids = {e["args"]["trace_id"] for e in events if "trace_id" in e.get("args", {})}
        assert len(ids) == 1
        assert ids == {response["trace"]["trace_id"]}

        def covers(outer, inner):
            return (outer["ts"] <= inner["ts"]
                    and outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"])

        assert covers(by_name["client.request"], by_name["server.handle"])
        assert covers(by_name["server.handle"], by_name["server.admission"])
        assert covers(by_name["server.handle"], by_name["worker.execute"])
        # the file on disk is the same trace
        on_disk = json.loads(trace_path.read_text())
        assert on_disk == trace

    def test_engine_spans_ride_along_marked_as_modeled_cycles(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            response, trace = client.submit_traced("trace", workload="hashloop")
        modeled = [e for e in trace["traceEvents"]
                   if e.get("args", {}).get("clock") == "modeled-cycles"]
        assert modeled, "expected re-based engine spans in the job trace"
        worker = next(e for e in trace["traceEvents"]
                      if e["name"] == "worker.execute")
        assert all(e["ts"] >= worker["ts"] for e in modeled)

    def test_metrics_kind_exposes_prometheus_and_summary(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            client.submit("trace", workload="hashloop")
            metrics = client.metrics()
        assert metrics["json"]["counters"]["service.jobs.received"] >= 1
        text = metrics["prometheus"]
        assert "# TYPE service_jobs_received_total counter" in text
        assert metrics["summary"]["jobs_received"] >= 1
        assert metrics["session"]
        assert isinstance(metrics["series"], list) and metrics["series"]

    def test_metrics_dump_writes_flight_artifact(self, server_factory):
        server = server_factory(workers=1)
        with ServiceClient(server.config.address()) as client:
            client.submit("trace", workload="hashloop")
            metrics = client.metrics(dump=True)
        path = metrics["dump_path"]
        assert path and os.path.exists(path)
        data = json.loads(open(path).read())
        assert data["reason"] == "on-demand"

    def test_worker_crash_dumps_flight_recorder(self, server_factory, tmp_path):
        server = server_factory(workers=1, allow_chaos=True)
        with ServiceClient(server.config.address()) as client:
            response = client.submit("chaos", params={"mode": "exit"}, cache=False)
        assert response["status"] == "error"
        dumps = [p for p in (tmp_path / "obs").iterdir()
                 if p.name.startswith("flight-")]
        assert dumps, "worker crash must produce a flight-recorder artifact"
        data = json.loads(dumps[0].read_text())
        assert data["schema"] == FLIGHT_SCHEMA
        assert data["reason"] == "worker-crash"
        assert data["slot"] == 0
        kinds = [e["kind"] for e in data["events"]]
        assert "worker.crash" in kinds
        assert "dispatch" in kinds

    def test_deadline_cancel_dumps_flight_recorder(self, server_factory, tmp_path):
        server = server_factory(workers=1, allow_chaos=True, degrade=False)
        with ServiceClient(server.config.address()) as client:
            response = client.submit(
                "chaos", params={"mode": "hang", "sleep_s": 30.0},
                deadline_s=0.3, cache=False,
            )
        assert response["status"] == "timeout"
        reasons = []
        for p in (tmp_path / "obs").iterdir():
            reasons.append(json.loads(p.read_text())["reason"])
        assert "deadline-cancel" in reasons

    def test_observe_disabled_daemon_serves_without_traces(self, server_factory):
        server = server_factory(workers=1, observe=False)
        assert server.obs is NULL_OBSERVABILITY
        with ServiceClient(server.config.address()) as client:
            response = client.submit("trace", workload="hashloop", trace=True)
            metrics = client.metrics()
        assert response["status"] == "ok"
        assert "trace" not in response
        # registry-derived exposition still works without the obs layer
        assert metrics["json"]["counters"]["service.jobs.received"] >= 1
        assert "session" not in metrics


# ---------------------------------------------------------------------------
# span_event helper
# ---------------------------------------------------------------------------
def test_span_event_shape():
    e = span_event("x", 10, 5, pid=1, tid=2, trace_id="abc")
    assert e == {"ph": "X", "name": "x", "cat": "service", "pid": 1,
                 "tid": 2, "ts": 10, "dur": 5, "args": {"trace_id": "abc"}}
    tid = new_trace_id()
    assert len(tid) == 16 and int(tid, 16) >= 0
