"""Unit tests for the security monitor / attack corpus and the
fault-avoidance framework / patch file."""

import pytest

from repro.apps.faultavoid import (
    EnvironmentPatch,
    FaultAvoidanceFramework,
    FaultSignature,
    FilterInputStrategy,
    PadAllocationsStrategy,
    PatchFile,
    RescheduleStrategy,
)
from repro.apps.security import AttackMonitor, attack_corpus
from repro.vm import RunStatus
from repro.workloads.buggy import (
    atomicity_violation,
    heap_overflow,
    malformed_request,
)


# --- security ---------------------------------------------------------------
class TestAttackCorpus:
    @pytest.mark.parametrize("scenario", attack_corpus(), ids=lambda s: s.name)
    def test_benign_runs_complete_unflagged(self, scenario):
        report = AttackMonitor.for_scenario(scenario).monitor(
            scenario.runner(attack=False), scenario.compiled, scenario.name
        )
        assert not report.detected
        assert report.result.status is RunStatus.EXITED

    @pytest.mark.parametrize("scenario", attack_corpus(), ids=lambda s: s.name)
    def test_attacks_detected_and_stopped(self, scenario):
        report = AttackMonitor.for_scenario(scenario).monitor(
            scenario.runner(attack=True), scenario.compiled, scenario.name
        )
        assert report.detected
        assert report.stopped_by_dift
        assert not report.hijack_succeeded

    @pytest.mark.parametrize("scenario", attack_corpus(), ids=lambda s: s.name)
    def test_pc_taint_names_root_cause(self, scenario):
        report = AttackMonitor.for_scenario(scenario).monitor(
            scenario.runner(attack=True), scenario.compiled, scenario.name
        )
        assert report.culprit_line in scenario.root_cause_lines

    @pytest.mark.parametrize("scenario", attack_corpus(), ids=lambda s: s.name)
    def test_bool_policy_detects_but_cannot_explain(self, scenario):
        report = AttackMonitor.for_scenario(scenario, policy="bool").monitor(
            scenario.runner(attack=True), scenario.compiled, scenario.name
        )
        assert report.detected
        assert report.culprit_pc == -1

    def test_attack_succeeds_without_dift(self):
        scenario = attack_corpus()[0]  # fptr overflow -> grant_admin
        machine, result = scenario.runner(attack=True).run()
        assert result.status is RunStatus.EXITED
        assert 9999 in machine.io.output(1)  # privileged action executed


# --- fault avoidance -------------------------------------------------------------
class TestStrategies:
    def test_reschedule_avoids_atomicity(self):
        bug = atomicity_violation()
        outcome = FaultAvoidanceFramework().avoid(bug.runner())
        assert outcome.avoided
        assert outcome.patch.strategy == "reschedule"

    def test_padding_avoids_overflow(self):
        bug = heap_overflow()
        outcome = FaultAvoidanceFramework().avoid(bug.runner())
        assert outcome.avoided
        assert outcome.patch.strategy == "pad-allocations"

    def test_filter_avoids_malformed_and_names_position(self):
        bug = malformed_request()
        outcome = FaultAvoidanceFramework().avoid(bug.runner())
        assert outcome.avoided
        assert outcome.patch.strategy == "filter-input"
        # position 3 holds the zero divisor in the failing input stream
        assert 3 in outcome.patch.params["positions"]

    def test_non_failing_run_rejected(self):
        bug = malformed_request()
        with pytest.raises(ValueError):
            FaultAvoidanceFramework().avoid(bug.runner(failing=False))

    def test_attempts_recorded(self):
        bug = heap_overflow()
        outcome = FaultAvoidanceFramework().avoid(bug.runner())
        assert outcome.attempts
        assert outcome.attempts[-1].succeeded
        assert all(not a.succeeded for a in outcome.attempts[:-1])

    def test_strategy_order_depends_on_failure_kind(self):
        fw = FaultAvoidanceFramework()
        first_for_div = fw._strategy_order("div_zero")[0]
        first_for_free = fw._strategy_order("bad_free")[0]
        assert isinstance(first_for_div, FilterInputStrategy)
        assert isinstance(first_for_free, PadAllocationsStrategy)


class TestPatchFile:
    def test_signature_matching(self):
        sig = FaultSignature(kind="assert", pc=10)
        assert sig.matches("assert", 10)
        assert not sig.matches("assert", 11)
        assert not sig.matches("div_zero", 10)
        assert FaultSignature(kind="assert", pc=-1).matches("assert", 123)

    def test_find_returns_matching_patch(self):
        pf = PatchFile()
        patch = EnvironmentPatch(
            signature=FaultSignature("assert", 5), strategy="pad-allocations",
            params={"padding": 2},
        )
        pf.record(patch)
        assert pf.find("assert", 5) is patch
        assert pf.find("assert", 6) is None

    def test_protected_run_applies_padding(self):
        bug = heap_overflow()
        pf = PatchFile()
        outcome = FaultAvoidanceFramework(pf).avoid(bug.runner())
        machine, result, patch = pf.protected_run(
            bug.runner(), outcome.failure_kind, outcome.failure_pc
        )
        assert not result.failed
        assert machine.memory.alloc_padding == patch.params["padding"]

    def test_protected_run_filters_input(self):
        bug = malformed_request()
        pf = PatchFile()
        outcome = FaultAvoidanceFramework(pf).avoid(bug.runner())
        machine, result, _ = pf.protected_run(
            bug.runner(), outcome.failure_kind, outcome.failure_pc
        )
        assert not result.failed
        assert machine.io.output(1)  # the server still answered

    def test_unpatched_failure_still_fails(self):
        bug = heap_overflow()
        pf = PatchFile()  # empty patch file
        machine, result, patch = pf.protected_run(bug.runner(), "assert", 999999)
        assert patch is None
        assert result.failed

    def test_lookup_overhead_charged(self):
        bug = malformed_request()
        pf = PatchFile()
        FaultAvoidanceFramework(pf).avoid(bug.runner())
        machine, result, _ = pf.protected_run(bug.runner(), "div_zero", -1)
        # -1 pc never matches; but lookup cost is charged regardless
        assert result.cycles.overhead >= pf.lookup_cycles

    def test_apply_to_runner_does_not_mutate_original(self):
        bug = malformed_request()
        runner = bug.runner()
        original_inputs = {k: list(v) for k, v in runner.inputs.items()}
        patch = EnvironmentPatch(
            signature=FaultSignature("div_zero", -1),
            strategy="filter-input",
            params={"positions": [3], "replacement": 1, "channel": 0},
        )
        patch.apply_to_runner(runner)
        assert runner.inputs == original_inputs
