"""Tests for the consistent-hash router tier (``repro.service.router``).

Three layers, cheapest first:

* :class:`HashRing` units + the two monotone-placement properties
  (a join moves keys only *onto* the new node; a leave moves only the
  removed node's keys), checked over 100 seeded topologies.
* Router integration over real in-process daemons: placement
  stickiness, streamed relay bit-identity, the router-level cache,
  drain/undrain, health mark-down/up with flight-recorder events.
* Chaos: scripted fake backends that crash mid-stream (proving
  exactly-once partial relay across a reroute), always-reject
  (back-pressure cooldown), or hang (never marked routable); plus a
  kill-one-real-backend-mid-burst run asserting zero hung clients.
"""

import random
import socket
import threading
import time

import pytest

from repro.service import (
    AnalysisServer,
    HashRing,
    RouterConfig,
    RouterServer,
    ServiceClient,
    ServiceConfig,
    execute_job_stream,
    reassemble,
    recv_frame,
    resolve_spec,
    routing_key,
    send_frame,
    wait_until_ready,
)
from repro.service.protocol import ProtocolError, STATUS_PARTIAL

from tests.test_aserver import canonical

WORKLOADS = ("matmul", "sort", "hashloop", "rle", "bfs", "fsm")


# ---------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------
class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        nodes = ["a", "b", "c"]
        one, two = HashRing(nodes, vnodes=32), HashRing(reversed(nodes), vnodes=32)
        for i in range(200):
            key = f"key-{i}"
            assert one.node(key) == two.node(key)

    def test_placement_is_roughly_balanced(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        counts = {"a": 0, "b": 0, "c": 0}
        for i in range(1200):
            counts[ring.node(f"key-{i}")] += 1
        for node, count in counts.items():
            assert count > 120, f"node {node} got only {count}/1200 keys"

    def test_join_moves_keys_only_onto_the_new_node(self):
        """The consistent-hashing contract, over 100 seeded topologies:
        adding a node relocates ~K/N keys and every relocated key lands
        on the new node — no surviving node's keys shuffle around."""
        for seed in range(100):
            rng = random.Random(seed)
            nodes = [f"node-{seed}-{i}" for i in range(rng.randint(2, 6))]
            keys = [f"key-{seed}-{i}" for i in range(200)]
            ring = HashRing(nodes, vnodes=32)
            before = {k: ring.node(k) for k in keys}
            ring.add(f"node-{seed}-new")
            moved = 0
            for k in keys:
                after = ring.node(k)
                if after != before[k]:
                    assert after == f"node-{seed}-new", (
                        f"seed {seed}: key moved between surviving nodes"
                    )
                    moved += 1
            bound = 3 * len(keys) / (len(nodes) + 1)
            assert moved <= bound, f"seed {seed}: {moved} keys moved (> {bound:.0f})"

    def test_leave_moves_only_the_removed_nodes_keys(self):
        for seed in range(100):
            rng = random.Random(1000 + seed)
            nodes = [f"node-{seed}-{i}" for i in range(rng.randint(3, 6))]
            keys = [f"key-{seed}-{i}" for i in range(200)]
            ring = HashRing(nodes, vnodes=32)
            before = {k: ring.node(k) for k in keys}
            victim = rng.choice(nodes)
            ring.remove(victim)
            for k in keys:
                after = ring.node(k)
                if after != before[k]:
                    assert before[k] == victim, (
                        f"seed {seed}: a surviving node's key moved on leave"
                    )
                assert after != victim

    def test_exclude_reroutes_without_mutating_placement(self):
        ring = HashRing(["a", "b", "c"], vnodes=32)
        key = "some-program"
        owner = ring.node(key)
        fallback = ring.node(key, exclude={owner})
        assert fallback is not None and fallback != owner
        assert ring.node(key) == owner, "exclusion must not mutate the ring"
        assert ring.node(key, exclude={"a", "b", "c"}) is None

    def test_add_remove_and_validation(self):
        ring = HashRing(vnodes=4)
        assert len(ring) == 0 and ring.node("k") is None
        ring.add("a")
        ring.add("a")
        assert ring.nodes() == ["a"] and ring.node("k") == "a"
        ring.remove("a")
        ring.remove("a")
        assert len(ring) == 0
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(["a"], vnodes=0)

    def test_routing_key_is_stable_and_chaos_safe(self):
        slice_a = resolve_spec({"kind": "slice", "workload": "matmul"})
        slice_b = resolve_spec({"kind": "slice", "workload": "matmul"})
        assert routing_key(slice_a) == routing_key(slice_b)
        chaos_a = resolve_spec(
            {"kind": "chaos", "params": {"mode": "exit"}}, allow_chaos=True
        )
        chaos_b = resolve_spec(
            {"kind": "chaos", "params": {"mode": "hang"}}, allow_chaos=True
        )
        assert routing_key(chaos_a).startswith("chaos:")
        assert routing_key(chaos_a) != routing_key(chaos_b)


# ---------------------------------------------------------------------------
# Fixtures: real backends, fake backends, routers
# ---------------------------------------------------------------------------
@pytest.fixture
def backend_factory(tmp_path):
    servers = []
    counter = [0]

    def start(**kwargs) -> str:
        counter[0] += 1
        kwargs.setdefault("socket_path", str(tmp_path / f"be{counter[0]}.sock"))
        kwargs.setdefault("workers", 1)
        server = AnalysisServer(ServiceConfig(**kwargs)).start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


@pytest.fixture
def router_factory(tmp_path):
    routers = []
    counter = [0]

    def start(backends, **kwargs) -> RouterServer:
        counter[0] += 1
        kwargs.setdefault("socket_path", str(tmp_path / f"rt{counter[0]}.sock"))
        kwargs.setdefault("health_interval_s", 0.05)
        router = RouterServer(RouterConfig(backends=list(backends), **kwargs))
        router.start()
        routers.append(router)
        return router

    yield start
    for router in routers:
        router.stop(drain_timeout_s=2.0)


class FakeBackend(threading.Thread):
    """A scriptable frame-speaking daemon for chaos scenarios.

    Answers ``health`` like a healthy daemon; the first *job* frame on a
    connection is handed to ``on_job(conn, request)`` and the connection
    closed after it returns.  ``silent=True`` reads the request and then
    never answers anything — the hang variant the router must mark down
    by probe timeout rather than wait on.
    """

    def __init__(self, path: str, on_job=None, silent: bool = False):
        super().__init__(daemon=True)
        self.path = path
        self.on_job = on_job
        self.silent = silent
        self.job_requests = 0
        self._stopped = False
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(16)
        self.start()

    def run(self):
        while not self._stopped:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn):
        try:
            while True:
                request = recv_frame(conn)
                if request is None:
                    return
                if self.silent:
                    time.sleep(30.0)
                    return
                if request.get("kind") == "health":
                    send_frame(conn, {"status": "ok", "health": {
                        "ok": True, "workers_alive": 1,
                        "queue_depth": 0, "queue_capacity": 8,
                    }})
                    continue
                self.job_requests += 1
                if self.on_job is not None:
                    self.on_job(conn, request)
                return
        except (OSError, ProtocolError):
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self):
        self._stopped = True
        self._listener.close()


def pick_workload_for(ring_backends: list[str], target: str, vnodes: int = 64,
                      kind: str = "slice") -> str:
    """A workload whose routing key lands on ``target`` — lets chaos
    tests steer a job onto the scripted backend deterministically."""
    ring = HashRing(ring_backends, vnodes=vnodes)
    for workload in WORKLOADS:
        spec = resolve_spec({"kind": kind, "workload": workload})
        if ring.node(routing_key(spec)) == target:
            return workload
    pytest.skip(f"no workload hashes onto {target} in this topology")


def true_ops(request: dict) -> list:
    """The exact op stream a faithful worker would emit for ``request``."""
    ops = []
    spec = resolve_spec(request, allow_chaos=True)
    execute_job_stream(spec.payload(), lambda op: ops.append(op))
    return ops


# ---------------------------------------------------------------------------
# Router integration over real daemons
# ---------------------------------------------------------------------------
class TestRouterIntegration:
    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            RouterServer(RouterConfig(backends=[],
                                      socket_path=str(tmp_path / "r.sock")))
        with pytest.raises(ValueError, match="exactly one"):
            RouterServer(RouterConfig(backends=["x.sock"]))
        with pytest.raises(ValueError, match="exactly one"):
            RouterServer(RouterConfig(backends=["x.sock"],
                                      socket_path=str(tmp_path / "r.sock"), port=0))

    def test_relays_jobs_and_health_reports_role(self, backend_factory, router_factory):
        backends = [backend_factory().config.socket_path for _ in range(2)]
        router = router_factory(backends)
        address = router.config.socket_path
        health = wait_until_ready(address)
        assert health["role"] == "router"
        assert health["backends_routable"] == 2
        with ServiceClient(address) as client:
            for workload in ("matmul", "fsm"):
                response = client.submit("trace", workload=workload,
                                         fidelity="log", cache=False)
                assert response["status"] == "ok", response
            stats = client.stats()
            assert stats["health"]["backends_total"] == 2
            summary = client.metrics()["summary"]
            assert summary["jobs_received"] >= 2

    def test_placement_sticks_to_one_backend(self, backend_factory, router_factory):
        backends = [backend_factory().config.socket_path for _ in range(3)]
        router = router_factory(backends)
        with ServiceClient(router.config.socket_path) as client:
            for _ in range(4):
                assert client.submit("slice", workload="sort",
                                     cache=False)["status"] == "ok"
            per_backend = {
                a: b["jobs_relayed"]
                for a, b in client.health()["backends"].items()
            }
        assert sorted(per_backend.values()) == [0, 0, 4], per_backend

    def test_streamed_relay_is_bit_identical(self, backend_factory, router_factory):
        backend = backend_factory()
        router = router_factory([backend.config.socket_path])
        with ServiceClient(backend.config.socket_path) as direct:
            blocking = direct.submit("slice", workload="matmul", cache=False)
        with ServiceClient(router.config.socket_path) as client:
            response, ops = client.submit_stream("slice", workload="matmul",
                                                 cache=False)
        assert response["status"] == "ok"
        assert ops, "router relayed no partial frames"
        assert canonical(response["result"]) == canonical(blocking["result"])
        assert canonical(reassemble(ops)) == canonical(response["result"])
        assert router.registry.flat()["router.stream.frames"] == len(ops)

    def test_router_cache_skips_the_backend(self, backend_factory, router_factory):
        backend = backend_factory()
        router = router_factory([backend.config.socket_path])
        with ServiceClient(router.config.socket_path) as client:
            cold = client.submit("attack", workload="fsm")
            relayed_after_cold = client.health()["backends"][
                backend.config.socket_path]["jobs_relayed"]
            warm = client.submit("attack", workload="fsm")
            relayed_after_warm = client.health()["backends"][
                backend.config.socket_path]["jobs_relayed"]
        assert warm.get("cached") is True
        assert canonical(warm["result"]) == canonical(cold["result"])
        assert relayed_after_warm == relayed_after_cold
        assert router.registry.flat()["router.cache.hits"] == 1

    def test_drain_diverts_new_jobs_and_undrain_restores(
        self, backend_factory, router_factory
    ):
        backends = [backend_factory().config.socket_path for _ in range(2)]
        router = router_factory(backends)
        with ServiceClient(router.config.socket_path) as client:
            workload = pick_workload_for(backends, backends[0],
                                         vnodes=router.config.vnodes)
            assert client.submit("slice", workload=workload,
                                 cache=False)["status"] == "ok"
            drain = client.request({"kind": "drain", "backend": backends[0]})
            assert drain["drain"]["draining"] is True
            assert client.health()["backends_routable"] == 1
            before = client.health()["backends"][backends[0]]["jobs_relayed"]
            assert client.submit("slice", workload=workload,
                                 cache=False)["status"] == "ok"
            after = client.health()["backends"][backends[0]]["jobs_relayed"]
            assert after == before, "drained backend still received a job"
            client.request({"kind": "undrain", "backend": backends[0]})
            assert client.health()["backends_routable"] == 2
            bogus = client.request({"kind": "drain", "backend": "nope.sock"})
            assert bogus["status"] == "error" and "unknown backend" in bogus["error"]
        events = [e["kind"] for e in router.obs.flight.snapshot()]
        assert "router.backend.drain" in events
        assert "router.backend.undrain" in events

    def test_all_backends_drained_means_unroutable(
        self, backend_factory, router_factory
    ):
        backend = backend_factory()
        router = router_factory([backend.config.socket_path])
        with ServiceClient(router.config.socket_path) as client:
            client.request({"kind": "drain",
                            "backend": backend.config.socket_path})
            assert client.health()["ok"] is False
            response = client.submit("trace", workload="rle", cache=False)
        assert response["status"] == "error"
        assert "no healthy backend" in response["error"]
        assert router.registry.flat()["router.jobs.unroutable"] == 1

    def test_markdown_markup_cycle(self, backend_factory, router_factory, tmp_path):
        """Stopping a backend flips it down (flight event, probes) and
        jobs reroute; a fresh daemon on the same socket flips it up."""
        victim = backend_factory()
        victim_path = victim.config.socket_path
        survivor = backend_factory()
        router = router_factory([victim_path, survivor.config.socket_path],
                                down_after=2)
        victim.stop()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if router.registry.flat().get("router.backend.markdowns", 0) >= 1:
                break
            time.sleep(0.05)
        else:
            pytest.fail("backend never marked down after stop")
        events = [e["kind"] for e in router.obs.flight.snapshot()]
        assert "router.backend.down" in events
        with ServiceClient(router.config.socket_path) as client:
            assert client.health()["backends_routable"] == 1
            response = client.submit("trace", workload="bfs",
                                     fidelity="log", cache=False)
            assert response["status"] == "ok", response
        AnalysisServer(ServiceConfig(socket_path=victim_path, workers=1)).start()
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if router.health()["backends_routable"] == 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("restarted backend never marked back up")
            assert "router.backend.up" in [
                e["kind"] for e in router.obs.flight.snapshot()
            ]
        finally:
            with ServiceClient(victim_path) as client:
                client.shutdown()


# ---------------------------------------------------------------------------
# Chaos: crash-reroute, back-pressure, hangs, kill-mid-burst
# ---------------------------------------------------------------------------
class TestRouterChaos:
    def test_crash_mid_stream_reroutes_exactly_once(
        self, backend_factory, router_factory, tmp_path
    ):
        """The flaky backend streams the TRUE first 3 ops, then dies.
        The replacement replays from seq 1; the router's monotone relay
        cursor drops the replayed prefix, so the client's op stream is
        gap-free, duplicate-free, and reassembles to the terminal
        result byte for byte."""
        real = backend_factory()
        flaky_path = str(tmp_path / "flaky.sock")

        def crash_after_three(conn, request):
            ops = true_ops(request)
            assert len(ops) > 3, "need a stream longer than the crash point"
            for seq, op in enumerate(ops[:3], start=1):
                send_frame(conn, {"status": STATUS_PARTIAL, "seq": seq, "op": op})
            # abrupt close mid-job: the router sees a torn exchange

        flaky = FakeBackend(flaky_path, on_job=crash_after_three)
        backends = [flaky_path, real.config.socket_path]
        router = router_factory(backends, retries=1)
        workload = pick_workload_for(backends, flaky_path,
                                     vnodes=router.config.vnodes)
        seen = []
        with ServiceClient(router.config.socket_path) as direct:
            response, ops = direct.submit_stream(
                "slice", workload=workload, cache=False,
                on_partial=lambda seq, op: seen.append(seq),
            )
        flaky.stop()
        assert response["status"] == "ok", response
        assert flaky.job_requests == 1
        assert seen == list(range(1, len(ops) + 1)), "stream has gaps or dupes"
        assert canonical(reassemble(ops)) == canonical(response["result"])
        flat = router.registry.flat()
        assert flat["router.jobs.rerouted"] == 1
        assert flat["router.stream.duplicates_dropped"] == 3
        assert "router.reroute" in [e["kind"] for e in router.obs.flight.snapshot()]

    def test_reroute_exhaustion_returns_error_not_hang(
        self, router_factory, tmp_path
    ):
        def crash(conn, request):
            pass  # close immediately: torn exchange on every attempt

        paths = [str(tmp_path / f"crash{i}.sock") for i in range(2)]
        fakes = [FakeBackend(p, on_job=crash) for p in paths]
        router = router_factory(paths, retries=1)
        t0 = time.monotonic()
        with ServiceClient(router.config.socket_path, timeout_s=30.0) as client:
            response = client.submit("trace", workload="sort", cache=False)
        for fake in fakes:
            fake.stop()
        assert response["status"] == "error"
        assert "failed mid-job" in response["error"]
        assert time.monotonic() - t0 < 20.0, "exhaustion must not stall"
        assert router.registry.flat()["router.jobs.failed"] == 1

    def test_rejected_backend_enters_cooldown(self, router_factory, tmp_path):
        """One REJECTED response puts the backend in cooldown: the next
        job for its keys is shed at the router — the saturated daemon
        sees exactly one request."""
        def reject(conn, request):
            send_frame(conn, {"status": "rejected", "reason": "saturated",
                              "retry_after_s": 5.0})

        path = str(tmp_path / "reject.sock")
        fake = FakeBackend(path, on_job=reject)
        router = router_factory([path])
        with ServiceClient(router.config.socket_path) as client:
            first = client.submit("trace", workload="matmul", cache=False)
            second = client.submit("trace", workload="matmul", cache=False)
        fake.stop()
        assert first["status"] == "rejected" and first["reason"] == "saturated"
        assert second["status"] == "rejected"
        assert "backpressure" in second["reason"]
        assert 0 < second["retry_after_s"] <= 5.0
        assert fake.job_requests == 1, "cooldown must shed locally"
        assert router.registry.flat()["router.backpressure.signals"] >= 1

    def test_hung_backend_is_never_routable(
        self, backend_factory, router_factory, tmp_path
    ):
        """The hang variant: a backend that accepts but never answers
        must fail its probes by timeout and never attract jobs."""
        real = backend_factory()
        hung_path = str(tmp_path / "hung.sock")
        hung = FakeBackend(hung_path, silent=True)
        router = router_factory([hung_path, real.config.socket_path],
                                health_timeout_s=0.2)
        with ServiceClient(router.config.socket_path) as client:
            health = client.health()
            assert health["backends_routable"] == 1
            assert health["backends"][hung_path]["healthy"] is False
            for _ in range(3):
                assert client.submit("trace", workload="hashloop",
                                     fidelity="log",
                                     cache=False)["status"] == "ok"
        hung.stop()

    def test_kill_one_backend_mid_burst_zero_hangs(
        self, router_factory, tmp_path
    ):
        """The headline chaos run: 24 threaded clients against 1 router
        + 3 backends; one backend is SIGKILLed mid-burst (real daemon
        processes — a kill must close its sockets abruptly, which an
        in-process graceful stop never does).  Every client must get a
        terminal frame (zero hangs), rerouting keeps the success rate
        total, and the mark-down lands in the flight recorder."""
        import subprocess
        import sys

        procs, backends = [], []
        for i in range(3):
            path = str(tmp_path / f"kb{i}.sock")
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--socket", path,
                 "--workers", "2", "--queue", "32"],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            ))
            backends.append(path)
        try:
            for path in backends:
                wait_until_ready(path, timeout_s=30.0)
            self._run_burst(router_factory, backends, procs)
        finally:
            for proc in procs:
                proc.kill()
                proc.wait(timeout=10.0)

    def _run_burst(self, router_factory, backends, procs):
        router = router_factory(backends, retries=2, down_after=2)
        address = router.config.socket_path
        results, latencies = [], []
        lock = threading.Lock()

        def one(i):
            t0 = time.monotonic()
            with ServiceClient(address, timeout_s=120.0) as client:
                response = client.submit(
                    "trace", workload=WORKLOADS[i % len(WORKLOADS)],
                    fidelity="log", scale=1 + i % 2, cache=False,
                )
            with lock:
                results.append(response)
                latencies.append(time.monotonic() - t0)

        threads = [threading.Thread(target=one, args=(i,), daemon=True)
                   for i in range(24)]
        for i, t in enumerate(threads):
            t.start()
            if i == 8:
                procs[0].kill()  # the kill, mid-burst (SIGKILL, no drain)
        for t in threads:
            t.join(timeout=150.0)
        hung = [t for t in threads if t.is_alive()]
        assert not hung, f"{len(hung)} clients hung after backend kill"
        assert len(results) == 24
        ok = [r for r in results if r["status"] in ("ok", "degraded")]
        assert len(ok) == 24, [r for r in results if r not in ok][:3]
        latencies.sort()
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        assert p99 < 60.0, f"p99 {p99:.1f}s blew the chaos budget"
        # The probe loop notices the corpse asynchronously; a fast
        # burst can finish before the mark-down lands.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            events = [e["kind"] for e in router.obs.flight.snapshot()]
            if "router.backend.down" in events:
                break
            time.sleep(0.1)
        else:
            pytest.fail("killed backend never marked down")
