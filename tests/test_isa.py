"""Unit tests for the ISA layer: instructions, assembler, programs, CFG,
dominance, static dataflow."""

import pytest

from repro.isa import (
    CFG,
    EXIT_BLOCK,
    MNEMONICS,
    NUM_REGS,
    OP_TABLE,
    SP,
    AssemblyError,
    Dominance,
    Instruction,
    Opcode,
    Operand,
    ProgramBuilder,
    ProgramError,
    assemble,
    block_dataflow,
    branch_ipdom_table,
    build_cfgs,
    link,
    path_dataflow,
    reg_name,
)


# --- instruction table ---------------------------------------------------
class TestOpTable:
    def test_every_opcode_has_a_spec(self):
        for op in Opcode:
            assert op in OP_TABLE, f"missing spec for {op}"

    def test_mnemonics_unique_and_complete(self):
        assert len(MNEMONICS) == len(OP_TABLE)
        for name, op in MNEMONICS.items():
            assert OP_TABLE[op].mnemonic == name

    def test_control_ops_marked(self):
        for op in (Opcode.JMP, Opcode.BR, Opcode.BRZ, Opcode.CALL, Opcode.RET, Opcode.HALT):
            assert OP_TABLE[op].is_control

    def test_branches_fall_through_but_jmp_does_not(self):
        assert OP_TABLE[Opcode.BR].falls_through
        assert OP_TABLE[Opcode.BRZ].falls_through
        assert not OP_TABLE[Opcode.JMP].falls_through
        assert not OP_TABLE[Opcode.RET].falls_through

    def test_memory_flags(self):
        assert OP_TABLE[Opcode.LOAD].reads_memory
        assert OP_TABLE[Opcode.STORE].writes_memory
        assert OP_TABLE[Opcode.PUSH].writes_memory
        assert OP_TABLE[Opcode.POP].reads_memory

    def test_defs_and_uses(self):
        instr = Instruction(Opcode.ADD, (1, 2, 3))
        assert instr.defs == (1,)
        assert instr.uses == (2, 3)
        store = Instruction(Opcode.STORE, (4, 5, 0))
        assert store.defs == ()
        assert store.uses == (4, 5)

    def test_reg_name(self):
        assert reg_name(0) == "r0"
        assert reg_name(SP) == "sp"

    def test_format_round_trip_mnemonic(self):
        instr = Instruction(Opcode.ADDI, (1, 2, -5))
        assert instr.format() == "addi r1, r2, -5"


# --- assembler -----------------------------------------------------------
SIMPLE = """
.func main 0
    li r0, 1
    halt
.end
"""


class TestAssembler:
    def test_simple_program(self):
        p = assemble(SIMPLE)
        assert len(p.code) == 2
        assert p.code[0].opcode is Opcode.LI
        assert p.entry_function.name == "main"

    def test_comments_and_blank_lines(self):
        p = assemble(
            """
            ; leading comment
            .func main 0
                li r0, 1   # trailing comment

                halt
            .end
            """
        )
        assert len(p.code) == 2

    def test_labels_forward_and_backward(self):
        p = assemble(
            """
            .func main 0
            top:
                jmp bottom
            mid:
                jmp top
            bottom:
                brz r0, mid
                halt
            .end
            """
        )
        assert p.code[0].operands == (2,)  # jmp bottom
        assert p.code[1].operands == (0,)  # jmp top
        assert p.code[2].operands == (0, 1)  # brz r0, mid

    def test_hex_char_and_negative_immediates(self):
        p = assemble(
            """
            .func main 0
                li r0, 0x10
                li r1, -3
                li r2, 'A'
                halt
            .end
            """
        )
        assert p.code[0].operands == (0, 16)
        assert p.code[1].operands == (1, -3)
        assert p.code[2].operands == (2, 65)

    def test_fn_immediate_forward_reference(self):
        p = assemble(
            """
            .func main 0
                li r0, fn:target
                icall r0
                halt
            .end
            .func target 0
                ret
            .end
            """
        )
        assert p.code[0].operands == (0, 1)

    def test_call_and_spawn_resolution(self):
        p = assemble(
            """
            .func main 0
                call helper
                li r1, 7
                spawn r0, helper, r1
                halt
            .end
            .func helper 0
                ret
            .end
            """
        )
        assert p.code[0].operands == (1,)
        assert p.code[2].operands == (0, 1, 1)

    def test_sp_alias(self):
        p = assemble(".func main 0\n    addi sp, sp, -4\n    halt\n.end\n")
        assert p.code[0].operands == (SP, SP, -4)

    @pytest.mark.parametrize(
        "src,fragment",
        [
            (".func main 0\n    bogus r0\n.end\n", "unknown mnemonic"),
            (".func main 0\n    li r0\n.end\n", "expects 2 operand"),
            (".func main 0\n    li r99, 1\n.end\n", "register out of range"),
            (".func main 0\n    jmp nowhere\n    halt\n.end\n", "undefined label"),
            (".func main 0\n    call nope\n    halt\n.end\n", "unknown function"),
            (".func main 0\n    halt\n.end\n.func main 0\n    halt\n.end\n", "duplicate function"),
            (".func main 0\nx:\nx:\n    halt\n.end\n", "duplicate label"),
            (".func main 0\n    halt\n", "missing .end"),
            ("    li r0, 1\n", "outside"),
            (".func main 0\n    li r0, fn:ghost\n    halt\n.end\n", "unknown function"),
        ],
    )
    def test_errors(self, src, fragment):
        with pytest.raises(AssemblyError) as exc:
            assemble(src)
        assert fragment in str(exc.value)

    def test_missing_entry(self):
        with pytest.raises(ProgramError):
            assemble(".func other 0\n    halt\n.end\n")

    def test_fall_off_end_rejected(self):
        with pytest.raises(ProgramError):
            assemble(".func main 0\n    li r0, 1\n.end\n")

    def test_disassemble_round_trip(self):
        src = """
        .func main 0
            li r0, 3
        loop:
            addi r0, r0, -1
            br r0, loop
            call helper
            halt
        .end
        .func helper 1
            li r0, 9
            ret
        .end
        """
        p1 = assemble(src)
        p2 = assemble(p1.disassemble())
        assert [i.format() for i in p1.code] == [i.format() for i in p2.code]
        assert p2.functions["helper"].num_params == 1


# --- program/link ---------------------------------------------------------
class TestProgram:
    def test_link_rebases_labels(self):
        f1 = [
            Instruction(Opcode.JMP, (1,)),
            Instruction(Opcode.HALT, ()),
        ]
        f2 = [
            Instruction(Opcode.JMP, (0,)),
            Instruction(Opcode.RET, ()),
        ]
        p = link([("main", 0, f1), ("f", 0, f2)])
        assert p.code[0].operands == (1,)
        assert p.code[2].operands == (2,)  # rebased by +2

    def test_function_of(self):
        p = assemble(SIMPLE)
        assert p.function_of(0).name == "main"

    def test_stats(self):
        p = assemble(
            """
            .func main 0
                load r0, r1, 0
                store r0, r1, 1
                brz r0, done
            done:
                halt
            .end
            """
        )
        s = p.stats()
        assert s == {
            "instructions": 4,
            "functions": 1,
            "branches": 1,
            "loads": 1,
            "stores": 1,
        }


# --- builder ---------------------------------------------------------------
class TestBuilder:
    def test_builder_matches_assembler(self):
        b = ProgramBuilder()
        f = b.function("main")
        loop = f.label("loop")
        f.emit(Opcode.LI, 0, 3)
        f.place(loop)
        f.emit(Opcode.ADDI, 0, 0, -1)
        f.emit(Opcode.BR, 0, loop)
        f.emit(Opcode.HALT)
        p = b.build()
        q = assemble(
            """
            .func main 0
                li r0, 3
            loop:
                addi r0, r0, -1
                br r0, loop
                halt
            .end
            """
        )
        assert [i.format() for i in p.code] == [i.format() for i in q.code]

    def test_func_ref_by_name(self):
        b = ProgramBuilder()
        main = b.function("main")
        main.emit(Opcode.CALL, "helper")
        main.emit(Opcode.LI, 0, "helper")  # function-id immediate
        main.emit(Opcode.HALT)
        h = b.function("helper")
        h.emit(Opcode.RET)
        p = b.build()
        assert p.code[0].operands == (1,)
        assert p.code[1].operands == (0, 1)

    def test_unplaced_label_rejected(self):
        b = ProgramBuilder()
        f = b.function("main")
        ghost = f.label()
        f.emit(Opcode.JMP, ghost)
        f.emit(Opcode.HALT)
        with pytest.raises(ProgramError):
            b.build()

    def test_wrong_arity_rejected(self):
        b = ProgramBuilder()
        f = b.function("main")
        with pytest.raises(ProgramError):
            f.emit(Opcode.ADD, 0, 1)


# --- CFG --------------------------------------------------------------------
DIAMOND = """
.func main 0
    in r0, 0
    brz r0, els
    li r1, 1
    jmp join
els:
    li r1, 2
join:
    out r1, 1
    halt
.end
"""


class TestCFG:
    def test_diamond_blocks(self):
        p = assemble(DIAMOND)
        cfg = CFG(p, p.functions["main"])
        assert len(cfg.blocks) == 4
        b0, b1, b2, b3 = cfg.blocks
        assert b0.succs == [2, 1]  # brz: target then fallthrough (order-insensitive check below)
        assert set(b0.succs) == {1, 2}
        assert b1.succs == [3]
        assert b2.succs == [3]
        assert b3.succs == []

    def test_call_does_not_split_block(self):
        p = assemble(
            """
            .func main 0
                li r0, 1
                call helper
                li r1, 2
                halt
            .end
            .func helper 0
                ret
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        assert len(cfg.blocks) == 1

    def test_block_of_maps_every_instruction(self):
        p = assemble(DIAMOND)
        cfg = CFG(p, p.functions["main"])
        fn = p.functions["main"]
        for idx in range(fn.entry, fn.end):
            bid = cfg.block_of[idx]
            assert idx in cfg.blocks[bid]

    def test_exit_blocks(self):
        p = assemble(DIAMOND)
        cfg = CFG(p, p.functions["main"])
        assert cfg.exit_blocks() == [3]

    def test_loop_back_edge(self):
        p = assemble(
            """
            .func main 0
                li r0, 5
            loop:
                addi r0, r0, -1
                br r0, loop
                halt
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        body = cfg.blocks[1]
        assert 1 in body.succs  # self loop

    def test_build_cfgs_covers_all_functions(self):
        p = assemble(SIMPLE + "\n.func aux 0\n    ret\n.end\n")
        cfgs = build_cfgs(p)
        assert set(cfgs) == {"main", "aux"}


# --- dominance ----------------------------------------------------------------
class TestDominance:
    def _diamond(self):
        p = assemble(DIAMOND)
        cfg = CFG(p, p.functions["main"])
        return cfg, Dominance(cfg)

    def test_idom_diamond(self):
        cfg, dom = self._diamond()
        assert dom.idom[1] == 0
        assert dom.idom[2] == 0
        assert dom.idom[3] == 0

    def test_ipdom_diamond(self):
        cfg, dom = self._diamond()
        assert dom.immediate_postdominator(0) == 3
        assert dom.immediate_postdominator(1) == 3
        assert dom.immediate_postdominator(2) == 3
        assert dom.immediate_postdominator(3) == EXIT_BLOCK

    def test_postdominates(self):
        cfg, dom = self._diamond()
        assert dom.postdominates(3, 0)
        assert dom.postdominates(3, 1)
        assert not dom.postdominates(1, 0)
        assert dom.postdominates(2, 2)

    def test_dominates(self):
        cfg, dom = self._diamond()
        assert dom.dominates(0, 3)
        assert not dom.dominates(1, 3)

    def test_control_dependence_diamond(self):
        cfg, dom = self._diamond()
        cd = dom.control_dependence()
        assert cd[1] == {0}
        assert cd[2] == {0}
        assert cd[3] == set()

    def test_control_dependence_loop_self(self):
        p = assemble(
            """
            .func main 0
                li r0, 5
            loop:
                addi r0, r0, -1
                br r0, loop
                halt
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        cd = Dominance(cfg).control_dependence()
        assert cd[1] == {1}

    def test_branch_ipdom_table(self):
        p = assemble(DIAMOND)
        cfg = CFG(p, p.functions["main"])
        dom = Dominance(cfg)
        table = branch_ipdom_table(cfg, dom)
        # the brz at global index 1 reconverges at the 'join' block start
        assert table == {1: cfg.blocks[3].start}

    def test_infinite_loop_function(self):
        # No exit: post-dominance must still terminate and be sane.
        p = assemble(
            """
            .func main 0
            spin:
                jmp spin
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        dom = Dominance(cfg)
        assert dom.immediate_postdominator(0) in (EXIT_BLOCK, 0)


# --- static dataflow ---------------------------------------------------------
class TestStaticDataflow:
    def test_in_block_chain_is_static(self):
        p = assemble(
            """
            .func main 0
                li r0, 1
                li r1, 2
                add r2, r0, r1
                add r3, r2, r0
                halt
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        flow = block_dataflow(cfg, 0)
        assert flow.static_edges[2] == {0: 0, 1: 1}
        assert flow.static_edges[3] == {2: 2, 0: 0}
        assert flow.dynamic_use_count == 0

    def test_live_in_uses_are_dynamic(self):
        p = assemble(
            """
            .func main 0
                add r2, r0, r1
                halt
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        flow = block_dataflow(cfg, 0)
        assert flow.live_in_uses[0] == (0, 1)
        assert flow.static_dep_count == 0

    def test_call_kills_definitions(self):
        p = assemble(
            """
            .func main 0
                li r0, 1
                call helper
                add r1, r0, r0
                halt
            .end
            .func helper 0
                ret
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        flow = block_dataflow(cfg, 0)
        # after the call, r0's definition is unknown statically
        assert 2 not in flow.static_edges
        assert flow.live_in_uses[2] == (0, 0)

    def test_push_pop_sp_chain(self):
        p = assemble(
            """
            .func main 0
                li r0, 7
                push r0
                pop r1
                halt
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        flow = block_dataflow(cfg, 0)
        # pop's implicit sp use is satisfied by push's implicit sp def
        assert flow.static_edges[2][SP] == 1
        # push's sp use is live-in (first touch)
        assert SP in flow.live_in_uses[1]

    def test_path_dataflow_across_blocks(self):
        p = assemble(
            """
            .func main 0
                li r0, 1
                brz r0, skip
                add r1, r0, r0
            skip:
                halt
            .end
            """
        )
        cfg = CFG(p, p.functions["main"])
        flow = path_dataflow(cfg, [0, 1])
        # r0 defined in block 0, used in block 1: static along the path
        assert flow.static_edges[2] == {0: 0}

    def test_path_dataflow_requires_connected_blocks(self):
        p = assemble(DIAMOND)
        cfg = CFG(p, p.functions["main"])
        with pytest.raises(ValueError):
            path_dataflow(cfg, [1, 2])

    def test_num_regs_sane(self):
        assert 0 < SP < NUM_REGS
