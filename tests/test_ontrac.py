"""Unit tests for ONTRAC: records, buffer, DDG, control dependence,
the online tracer (all optimizations), and the offline baseline."""

import pytest

from repro.isa import Opcode, assemble
from repro.lang import compile_source
from repro.ontrac import (
    RECORD_BYTES,
    ControlDependenceTracker,
    DepKind,
    DepRecord,
    OfflineTracer,
    OnlineTracer,
    OntracConfig,
    TraceBuffer,
    build_ddg,
)
from repro.runner import ProgramRunner
from repro.vm import Hook, Machine, RunStatus


def trace_minic(src, inputs=None, config=None, max_instructions=2_000_000):
    cp = compile_source(src)
    runner = ProgramRunner(cp.program, inputs=inputs or {}, max_instructions=max_instructions)
    m, tracer, res = runner.run_traced(config)
    return m, tracer, res, cp


LOOP_SRC = """
global data[32];
fn main() {
    var n = in(0);
    var i = 0;
    while (i < 32) {
        data[i] = i * 2 + n;
        i = i + 1;
    }
    var s = 0;
    i = 0;
    while (i < 32) {
        s = s + data[i];
        i = i + 1;
    }
    out(s, 1);
}
"""


# --- records & buffer --------------------------------------------------------
class TestRecordsAndBuffer:
    def test_record_bytes_complete(self):
        for kind in DepKind:
            assert kind in RECORD_BYTES

    def test_inferred_records_cost_nothing(self):
        assert RECORD_BYTES[DepKind.IREG] == 0
        assert RECORD_BYTES[DepKind.IMEM] == 0
        assert RECORD_BYTES[DepKind.REG] > 0

    def test_buffer_eviction_by_bytes(self):
        buf = TraceBuffer(capacity_bytes=20)
        for i in range(10):
            buf.append(DepRecord(DepKind.REG, i, i, i - 1, i - 1))  # 6 bytes each
        assert buf.current_bytes <= 20
        assert buf.stats.evicted > 0
        assert buf.oldest_seq > 0

    def test_buffer_window(self):
        buf = TraceBuffer(capacity_bytes=1000)
        buf.append(DepRecord(DepKind.REG, 5, 0, 1, 0))
        buf.append(DepRecord(DepKind.REG, 17, 0, 2, 0))
        assert buf.window_instructions() == 13
        assert buf.covers_seq(10)
        assert not buf.covers_seq(3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity_bytes=0)

    def test_bigger_buffer_longer_window(self):
        # The core scaling claim behind E3.
        windows = []
        for cap in (2_000, 8_000):
            m, t, res, _ = trace_minic(LOOP_SRC, inputs={0: [1]},
                                       config=OntracConfig(buffer_bytes=cap))
            windows.append(t.buffer.window_instructions())
        assert windows[1] > windows[0]


# --- DDG ------------------------------------------------------------------------
class TestDDG:
    def test_build_and_query(self):
        records = [
            DepRecord(DepKind.REG, 2, 10, 1, 9),
            DepRecord(DepKind.MEM, 3, 11, 2, 10),
            DepRecord(DepKind.BRANCH, 4, 12),
        ]
        ddg = build_ddg(records)
        assert ddg.pc_of(3) == 11
        assert ddg.producers(3) == [(2, DepKind.MEM)]
        assert ddg.consumers(2) == [(3, DepKind.MEM)]
        assert 4 in ddg.nodes  # branch record adds a node
        assert ddg.edge_count == 2

    def test_instances_of_pc(self):
        records = [
            DepRecord(DepKind.REG, 5, 7, 1, 6),
            DepRecord(DepKind.REG, 9, 7, 5, 7),
        ]
        ddg = build_ddg(records)
        assert ddg.instances_of_pc(7) == [5, 9]
        assert ddg.last_instance_of_pc(7) == 9
        assert ddg.last_instance_of_pc(999) is None

    def test_kind_filter(self):
        records = [
            DepRecord(DepKind.REG, 2, 1, 1, 0),
            DepRecord(DepKind.CONTROL, 2, 1, 0, 0),
        ]
        ddg = build_ddg(records)
        assert len(ddg.producers(2, kinds={DepKind.REG})) == 1
        assert len(ddg.producers(2)) == 2


# --- online control dependence ------------------------------------------------------
class TestControlDependence:
    def _events_for(self, src, inputs=None):
        cp = compile_source(src)
        m = Machine(cp.program)
        for chan, values in (inputs or {}).items():
            m.io.provide(chan, values)
        tracker = ControlDependenceTracker(cp.program)
        parents = []

        class Rec(Hook):
            def on_instruction(self, ev):
                parent = tracker.observe(ev)
                parents.append((ev.pc, parent.branch_pc if parent else None))

        m.hooks.subscribe(Rec())
        m.run()
        return parents, cp

    def test_if_region(self):
        src = (
            "fn main() {\n"  # line 1
            "    var x = in(0);\n"  # line 2
            "    if (x > 0) {\n"  # line 3: the predicate
            "        out(1, 1);\n"  # line 4: guarded
            "    }\n"
            "    out(2, 1);\n"  # line 6: after the join point
            "}\n"
        )
        parents, cp = self._events_for(src, inputs={0: [5]})
        by_line = {}
        for pc, parent_pc in parents:
            line = cp.line_of(pc)
            by_line.setdefault(line, set()).add(
                cp.line_of(parent_pc) if parent_pc is not None else None
            )
        # the out(1,1) inside the if depends on the line-3 predicate
        assert by_line[4] == {3}
        # the out(2,1) after the join point does not
        assert by_line[6] == {None}

    def test_loop_parent_is_loop_branch(self):
        parents, cp = self._events_for(
            """
            fn main() {
                var i = 3;
                while (i > 0) { i = i - 1; }
                out(i, 1);
            }
            """
        )
        body_parents = {p for pc, p in parents if cp.line_of(pc) == 4 and p is not None}
        assert body_parents  # loop body instructions have a branch parent
        after = [p for pc, p in parents if cp.line_of(pc) == 5]
        assert set(after) == {None}

    def test_stack_bounded_across_iterations(self):
        cp = compile_source(
            "fn main() { var i = 200; while (i > 0) { i = i - 1; } }"
        )
        m = Machine(cp.program)
        tracker = ControlDependenceTracker(cp.program)

        class Rec(Hook):
            def on_instruction(self, ev):
                tracker.observe(ev)
                assert len(tracker.open_regions(ev.tid)) <= 4

        m.hooks.subscribe(Rec())
        assert m.run().status is RunStatus.EXITED

    def test_callee_inherits_caller_region(self):
        parents, cp = self._events_for(
            """
            fn helper() { out(7, 1); }
            fn main() {
                var x = in(0);
                if (x) { helper(); }
            }
            """,
            inputs={0: [1]},
        )
        helper_parents = {p for pc, p in parents if cp.line_of(pc) == 2 and p is not None}
        assert helper_parents, "helper body should be control dependent on the if"

    def test_recursion_depth_scoping(self):
        # Each recursive invocation's branch regions close on return.
        parents, cp = self._events_for(
            """
            fn f(n) {
                if (n > 0) { f(n - 1); }
                return 0;
            }
            fn main() { f(4); out(1, 1); }
            """
        )
        final_out = [p for pc, p in parents if cp.line_of(pc) == 6 and
                     cp.program.code[pc].opcode is Opcode.OUT]
        assert set(final_out) == {None}


# --- online tracer ---------------------------------------------------------------
class TestOnlineTracer:
    def test_naive_matches_offline_ddg(self):
        cp = compile_source(LOOP_SRC)
        r1 = ProgramRunner(cp.program, inputs={0: [3]})
        m1, online, _ = r1.run_traced(OntracConfig.unoptimized())

        m2 = r1.machine()
        offline = OfflineTracer(cp.program).attach(m2)
        m2.run()
        off_ddg = offline.postprocess()
        on_ddg = online.dependence_graph()
        assert on_ddg.stats()["edges"] == off_ddg.stats()["edges"]
        assert set(on_ddg.nodes) == set(off_ddg.nodes)

    def test_optimizations_reduce_bytes_monotonically(self):
        configs = [
            OntracConfig.unoptimized(),
            OntracConfig(infer_traces=False, elide_redundant_loads=False),
            OntracConfig(hot_trace_threshold=8),
            OntracConfig(hot_trace_threshold=8, input_forward_slice=True),
        ]
        rates = []
        for config in configs:
            _, t, _, _ = trace_minic(LOOP_SRC, inputs={0: [3]}, config=config)
            rates.append(t.stats.bytes_per_instruction)
        assert rates == sorted(rates, reverse=True), rates
        assert rates[0] > 8.0  # naive is in the >8 B/instr regime
        assert rates[-1] < 2.0  # fully optimized is in the ~1 B/instr regime

    def test_optimized_ddg_preserves_data_edges(self):
        # Inferred (0-byte) edges must keep the dependence structure
        # equivalent to naive tracing for data+control slicing purposes.
        from repro.slicing import DEFAULT_KINDS, slice_at_last_output

        cp = compile_source(LOOP_SRC)
        out_pc = max(
            pc for pc in range(len(cp.program.code))
            if cp.program.code[pc].opcode is Opcode.OUT
        )
        sizes = []
        for config in (OntracConfig.unoptimized(), OntracConfig(hot_trace_threshold=8)):
            runner = ProgramRunner(cp.program, inputs={0: [3]})
            _, tracer, _ = runner.run_traced(config)
            sl = slice_at_last_output(tracer.dependence_graph(), out_pc, kinds=DEFAULT_KINDS)
            sizes.append(len(sl.seqs))
        assert sizes[0] == sizes[1]

    def test_redundant_load_elision_counts(self):
        src = """
        global g;
        fn main() {
            g = 5;
            var s = 0;
            var i = 0;
            while (i < 20) { s = s + g; i = i + 1; }   // same load, same producer
            out(s, 1);
        }
        """
        _, t, _, _ = trace_minic(src, config=OntracConfig(infer_traces=False))
        assert t.stats.skipped.get("redundant_load", 0) >= 19

    def test_hot_traces_form(self):
        _, t, _, _ = trace_minic(
            LOOP_SRC, inputs={0: [1]}, config=OntracConfig(hot_trace_threshold=5)
        )
        assert t.stats.hot_traces > 0
        assert t.stats.skipped.get("static_trace", 0) > 0

    def test_input_filter_skips_non_derived(self):
        _, t, _, _ = trace_minic(
            LOOP_SRC, inputs={0: [1]}, config=OntracConfig(input_forward_slice=True)
        )
        assert t.stats.skipped.get("input_filter", 0) > 0

    def test_selective_tracing_summarizes_through_untraced(self):
        src = """
        fn scramble(x) { return (x * 3 + 1) * 2; }   // untraced
        fn main() {
            var a = in(0);
            var b = scramble(a);
            out(b, 1);
        }
        """
        cp = compile_source(src)
        runner = ProgramRunner(cp.program, inputs={0: [4]})
        _, tracer, _ = runner.run_traced(
            OntracConfig(selective_functions=frozenset({"main"}))
        )
        ddg = tracer.dependence_graph()
        stats = ddg.stats()
        assert stats.get("summary", 0) > 0, stats
        # Chain preserved: slicing from the output reaches the in() of main.
        from repro.slicing import slice_at_last_output

        out_pc = max(
            pc for pc in range(len(cp.program.code))
            if cp.program.code[pc].opcode is Opcode.OUT
            and cp.program.code[pc].function == "main"
        )
        sl = slice_at_last_output(ddg, out_pc)
        in_pcs = {
            pc for pc in sl.pcs if cp.program.code[pc].opcode is Opcode.IN
        }
        assert in_pcs, "dependence chain through untraced scramble() was broken"

    def test_selective_tracing_stores_fewer_bytes(self):
        rates = []
        for sel in (None, frozenset({"main"})):
            src = """
            fn work(x) { var i = 0; var s = x; while (i < 50) { s = s + i; i = i + 1; } return s; }
            fn main() { out(work(in(0)), 1); }
            """
            _, t, _, _ = trace_minic(src, inputs={0: [1]},
                                     config=OntracConfig(selective_functions=sel))
            rates.append(t.stats.stored_bytes)
        assert rates[1] < rates[0]

    def test_overhead_charged(self):
        m, t, res, _ = trace_minic(LOOP_SRC, inputs={0: [1]})
        assert res.cycles.overhead > 0
        assert res.cycles.slowdown > 2

    def test_multithreaded_cross_thread_mem_edges(self):
        src = """
        global cell;
        fn writer(v) { cell = v; }
        fn main() {
            var t = spawn(writer, 42);
            join(t);
            out(cell, 1);
        }
        """
        m, t, res, cp = trace_minic(src, config=OntracConfig())
        ddg = t.dependence_graph()
        cross = [
            (c, p)
            for c, edges in ddg.backward.items()
            for p, k in edges
            if k == DepKind.MEM and ddg.nodes[c].tid != ddg.nodes[p].tid
        ]
        assert cross, "main's read of cell must depend on writer's store"

    def test_war_waw_recording(self):
        src = """
        global cell;
        fn writer(v) { cell = v; }
        fn main() {
            cell = 1;
            var x = cell;
            var t = spawn(writer, 2);
            join(t);
            out(x, 1);
        }
        """
        _, t, _, _ = trace_minic(src, config=OntracConfig(record_war_waw=True))
        stats = t.dependence_graph().stats()
        assert stats.get("war", 0) >= 1 or stats.get("waw", 0) >= 1

    def test_window_limits_slice_reach(self):
        # With a tiny buffer the early writes fall out of the window.
        m, t, res, cp = trace_minic(
            LOOP_SRC, inputs={0: [1]}, config=OntracConfig(buffer_bytes=256)
        )
        ddg = t.dependence_graph()
        assert not ddg.complete
        assert t.buffer.stats.evicted > 0


# --- offline baseline ---------------------------------------------------------------
class TestOffline:
    def test_offline_costs_dwarf_online(self):
        cp = compile_source(LOOP_SRC)
        runner = ProgramRunner(cp.program, inputs={0: [2]})

        m1, online, res1 = runner.run_traced(OntracConfig())
        online_slowdown = res1.cycles.slowdown

        m2 = runner.machine()
        off = OfflineTracer(cp.program).attach(m2)
        res2 = m2.run()
        off.postprocess()
        offline_slowdown = (res2.cycles.base + off.stats.total_overhead_cycles) / res2.cycles.base

        assert offline_slowdown > 5 * online_slowdown
        assert offline_slowdown > 100

    def test_trace_bytes_16_per_instruction(self):
        cp = compile_source("fn main() { out(1 + 2, 1); }")
        m = Machine(cp.program)
        off = OfflineTracer(cp.program).attach(m)
        m.run()
        assert off.stats.trace_bytes == off.stats.instructions * 16
