"""Tests for the unified telemetry layer (metrics, spans, reports)."""

import json

import pytest

from repro.dift.engine import DIFTEngine, SinkRule
from repro.dift.policy import PCTaintPolicy
from repro.lang import compile_source
from repro.ontrac import OntracConfig
from repro.runner import ProgramRunner
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    RunReport,
    SpanTracer,
    Telemetry,
    build_report,
    validate_chrome_trace,
    validate_report,
)
from repro.vm import Machine
from repro.vm.cost import CycleCounters

LOOP_SOURCE = """
fn main() {
    var i = 0;
    var s = 0;
    while (i < 25) {
        s = s + in(0);
        i = i + 1;
    }
    out(s, 1);
}
"""

ATTACK_SOURCE = """
fn safe(x) { out(1, 1); }
fn admin(x) { out(2, 1); }
fn main() {
    var fp = alloc(1);
    fp[0] = in(0);
    icall(fp[0], 0);
}
"""


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        reg.gauge("g").set(3.5)
        reg.gauge("hwm").set_max(10)
        reg.gauge("hwm").set_max(7)  # lower value must not win
        reg.histogram("h", buckets=(1, 10)).observe(5)
        snap = reg.as_dict()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 3.5
        assert snap["gauges"]["hwm"] == 10
        assert snap["histograms"]["h"]["count"] == 1

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(100)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(3)
        assert reg.as_dict() == {}
        assert reg.flat() == {}
        # the no-op instruments are shared singletons
        assert reg.counter("a") is reg.counter("b")

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("seg", buckets=(1, 4, 16))
        for v in (0, 1, 2, 4, 5, 16, 17, 1000):
            h.observe(v)
        # counts: <=1, <=4, <=16, overflow
        assert h.counts == [2, 2, 2, 2]
        assert h.total == 8
        assert h.sum == 1045
        assert h.as_dict()["buckets"] == [1, 4, 16]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(4, 1))

    def test_flat_merges_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        assert reg.flat() == {"c": 2, "g": 7}

    def test_concurrent_hammering_loses_no_updates(self):
        # Regression for the service tier: handler threads, the pool's
        # verdict threads and the sampler all mutate one registry.  Each
        # instrument carries its own mutator lock (reads stay lock-free;
        # see the metrics module docstring), so N threads x M increments
        # must land exactly N*M — unsynchronized `+=` would drop updates.
        import threading

        reg = MetricsRegistry(enabled=True)
        threads_n, iters = 8, 2000
        barrier = threading.Barrier(threads_n)

        def hammer(i: int) -> None:
            barrier.wait()
            for k in range(iters):
                reg.counter("hits").inc()
                reg.gauge("hwm").set_max(i * iters + k)
                reg.histogram("lat", buckets=(10, 100)).observe(k % 200)
                if k % 100 == 0:  # concurrent snapshot readers
                    reg.as_dict()
                    reg.flat()

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        snap = reg.as_dict()
        assert snap["counters"]["hits"] == threads_n * iters
        assert snap["gauges"]["hwm"] == threads_n * iters - 1
        hist = snap["histograms"]["lat"]
        assert hist["count"] == threads_n * iters
        assert sum(hist["counts"]) == threads_n * iters


class TestSpanTracer:
    def test_disabled_tracer_hands_out_null_span(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("x") as s:
            pass
        assert tracer.events == []
        assert tracer.span("a") is tracer.span("b")

    def test_cycle_clock_stamps_ts_and_dur(self):
        clock = iter([10, 25])
        tracer = SpanTracer(cycle_clock=lambda: next(clock))
        span = tracer.span("region")
        span.end(items=3)
        assert span.ts == 10 and span.dur == 15
        assert span.args["items"] == 3

    def test_bind_clock_only_once(self):
        tracer = SpanTracer()
        tracer.bind_clock(lambda: 7)
        tracer.bind_clock(lambda: 99)  # must not rebind
        assert tracer.now() == 7

    def test_chrome_trace_schema_roundtrip(self, tmp_path):
        tracer = SpanTracer(cycle_clock=lambda: 5)
        tracer.name_thread(0, "main")
        tracer.span("work", cat="vm", tid=0).end()
        tracer.instant("failure", cat="vm", tid=0, pc=3)
        path = tmp_path / "trace.json"
        tracer.write(path)
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        phases = [e["ph"] for e in loaded["traceEvents"]]
        assert phases == ["M", "X", "i"]
        meta = loaded["traceEvents"][0]
        assert meta["args"]["name"] == "main"

    def test_validate_rejects_malformed_traces(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "a"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q", "name": "a"}]})


class TestRunReport:
    def test_roundtrip_and_validation(self, tmp_path):
        report = RunReport(
            tool="run", status="exited", instructions=10,
            base_cycles=40, overhead_cycles=8, metrics={"counters": {}},
        )
        path = tmp_path / "rep.json"
        report.write(path)
        data = json.loads(path.read_text())
        validate_report(data)
        back = RunReport.from_dict(data)
        assert back.total_cycles == 48
        assert back.slowdown == pytest.approx(1.2)

    def test_validation_failures(self):
        good = RunReport(
            tool="run", status="exited", instructions=1,
            base_cycles=2, overhead_cycles=0,
        ).to_dict()
        with pytest.raises(ValueError):
            validate_report({**good, "total_cycles": 99})
        with pytest.raises(ValueError):
            validate_report({**good, "schema": "bogus/v0"})
        bad = dict(good)
        del bad["instructions"]
        with pytest.raises(ValueError):
            validate_report(bad)

    def test_deterministic_dict_excludes_wall_time(self):
        report = RunReport(
            tool="run", status="exited", instructions=1,
            base_cycles=1, overhead_cycles=0, wall_time_s=1.23,
        )
        assert "wall_time_s" in report.to_dict()
        assert "wall_time_s" not in report.to_dict(deterministic=True)


class TestCycleCountersSlowdown:
    def test_empty_run_is_1x(self):
        assert CycleCounters().slowdown == 1.0

    def test_overhead_without_base_is_infinite(self):
        c = CycleCounters()
        c.overhead = 10
        assert c.slowdown == float("inf")

    def test_normal_ratio(self):
        c = CycleCounters()
        c.base, c.overhead = 100, 50
        assert c.slowdown == pytest.approx(1.5)


class TestInstrumentedRuns:
    def _runner(self, telemetry=None):
        compiled = compile_source(LOOP_SOURCE)
        return ProgramRunner(
            compiled.program, inputs={0: [1, 2, 3]}, telemetry=telemetry
        )

    def test_vm_metrics_match_run_result(self):
        telemetry = Telemetry.on()
        _, result = self._runner(telemetry).run()
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["vm.instructions"] == result.instructions
        per_class = sum(
            v for k, v in counters.items() if k.startswith("vm.instructions.")
        )
        assert per_class == result.instructions
        assert counters["vm.scheduler.segments"] == len(result.schedule)
        gauges = telemetry.registry.as_dict()["gauges"]
        assert gauges["vm.cycles.base"] == result.cycles.base
        assert gauges["vm.cycles.total"] == result.cycles.total

    def test_dift_metrics_match_alerts(self):
        compiled = compile_source(ATTACK_SOURCE)
        telemetry = Telemetry.on()
        machine = Machine(compiled.program, telemetry=telemetry)
        machine.io.provide(0, [1])
        engine = DIFTEngine(
            PCTaintPolicy(), sinks=[SinkRule(kind="icall", action="record")]
        ).attach(machine)
        result = machine.run()
        engine.publish_telemetry(telemetry.registry)
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["dift.alerts"] == len(engine.alerts) == 1
        assert counters["dift.instructions"] == result.instructions
        assert counters["vm.instructions"] == result.instructions

    def test_two_runs_produce_identical_reports(self):
        def one_report():
            telemetry = Telemetry.on()
            runner = self._runner(telemetry)
            _, tracer, result = runner.run_traced(OntracConfig())
            report = build_report("trace", result, telemetry.registry)
            return (
                report.to_json(deterministic=True),
                json.dumps(
                    {
                        k: {kk: vv for kk, vv in ev.items() if kk != "args"}
                        for k, ev in enumerate(
                            telemetry.tracer.to_chrome_trace()["traceEvents"]
                        )
                    },
                    sort_keys=True,
                ),
            )

        assert one_report() == one_report()

    def test_disabled_telemetry_keeps_cycles_identical(self):
        # E1 acceptance: telemetry must never perturb the cycle model.
        _, _, plain = self._runner(None).run_traced(OntracConfig())
        _, _, observed = self._runner(Telemetry.on()).run_traced(OntracConfig())
        assert plain.cycles.base == observed.cycles.base
        assert plain.cycles.overhead == observed.cycles.overhead
        assert plain.instructions == observed.instructions

    def test_null_telemetry_records_nothing(self):
        _, result = self._runner(None).run()
        assert NULL_TELEMETRY.registry.as_dict() == {}
        assert NULL_TELEMETRY.tracer.events == []
        assert result.instructions > 0
