"""Unit tests for the packed columnar dependence store.

Everything here holds the packed store to the legacy
:class:`TraceBuffer` contract record for record: same surviving
records under eviction, same :class:`BufferStats` accounting (including
the shared ``eviction_passes`` counter), same window arithmetic — plus
the packed-only invariants (sentinel overflow round-trips, the
monotone-order fallback, epoch-keyed cache invalidation, deterministic
resident-byte accounting).
"""

import pytest

from repro.ontrac import (
    DepKind,
    DepRecord,
    OntracConfig,
    PackedDDG,
    PackedTraceBuffer,
    ROW_PAYLOAD_BYTES,
    TraceBuffer,
    build_ddg,
)
from repro.ontrac.packed import _MAX_CHUNK_ROWS, _SEED_CHUNK_ROWS
from repro.slicing import DEFAULT_KINDS, backward_slice, forward_slice
from repro.workloads.spec_like import matmul


def record_tuple(r):
    return (r.kind, r.consumer_seq, r.consumer_pc, r.producer_seq,
            r.producer_pc, r.tid, r.bytes)


def stats_tuple(stats):
    return (stats.appended, stats.appended_bytes, stats.evicted,
            stats.evicted_bytes, stats.peak_bytes, stats.eviction_passes)


def make_records(n, pc_base=0, tid=0):
    """A monotone, tracer-shaped record stream: one INSTR row per seq
    plus a REG edge back to the previous seq."""
    records = []
    for seq in range(n):
        records.append(DepRecord(DepKind.INSTR, seq, pc_base + seq % 97, tid=tid))
        if seq:
            records.append(
                DepRecord(DepKind.REG, seq, pc_base + seq % 97,
                          producer_seq=seq - 1, producer_pc=pc_base + (seq - 1) % 97,
                          tid=tid)
            )
    return records


def fill_both(records, capacity=1 << 20):
    legacy = TraceBuffer(capacity_bytes=capacity)
    packed = PackedTraceBuffer(capacity_bytes=capacity)
    for r in records:
        legacy.append(r)
        packed.append(r)
    return legacy, packed


# --- record/stats parity with the legacy buffer -----------------------------
def test_roundtrip_matches_legacy():
    legacy, packed = fill_both(make_records(1000))
    assert len(packed) == len(legacy)
    assert [record_tuple(r) for r in packed] == [record_tuple(r) for r in legacy]
    assert stats_tuple(packed.stats) == stats_tuple(legacy.stats)
    assert packed.oldest_seq == legacy.oldest_seq
    assert packed.newest_seq == legacy.newest_seq
    assert packed.window_instructions() == legacy.window_instructions()


@pytest.mark.parametrize("capacity", [64, 512, 4096])
def test_eviction_matches_legacy(capacity):
    legacy, packed = fill_both(make_records(2000), capacity=capacity)
    assert [record_tuple(r) for r in packed] == [record_tuple(r) for r in legacy]
    assert stats_tuple(packed.stats) == stats_tuple(legacy.stats)
    assert packed.stats.evicted > 0
    assert packed.window_instructions() == legacy.window_instructions()
    for seq in (0, legacy.oldest_seq - 1, legacy.oldest_seq, legacy.newest_seq):
        assert packed.covers_seq(seq) == legacy.covers_seq(seq)


def test_records_view_indexing():
    _, packed = fill_both(make_records(700))
    view = packed.records
    assert record_tuple(view[0]) == record_tuple(next(iter(packed)))
    assert record_tuple(view[-1]) == record_tuple(list(packed)[-1])
    assert record_tuple(view[len(view) - 1]) == record_tuple(view[-1])
    with pytest.raises(IndexError):
        view[len(view)]


def test_chunk_growth_and_spans():
    _, packed = fill_both(make_records(3 * _MAX_CHUNK_ROWS))
    assert packed.chunk_count > 1
    caps = [c.cap for c in packed.live_chunks()]
    assert caps[0] == _SEED_CHUNK_ROWS and caps[-1] == _MAX_CHUNK_ROWS
    # Every seq's rows are found exactly once, even across chunk seams.
    for seq in (0, 1, _SEED_CHUNK_ROWS, _MAX_CHUNK_ROWS, packed.newest_seq):
        rows = [c.record_at(r)
                for c, lo, hi in packed.consumer_spans(seq)
                for r in range(lo, hi)]
        assert rows, seq
        assert all(r.consumer_seq == seq for r in rows)
        expected = 1 if seq == 0 else 2  # INSTR + REG back-edge
        assert len(rows) == expected


def test_sentinel_overflow_roundtrip():
    big_pc = 1 << 20      # exceeds the 16-bit pc column
    big_tid = 1 << 17     # exceeds the 16-bit tid column
    packed = PackedTraceBuffer()
    packed.append(DepRecord(DepKind.INSTR, 0, big_pc, tid=big_tid))
    packed.append(DepRecord(DepKind.INSTR, 1, 3, tid=1))
    # Negative delta (producer after consumer) must take the overflow slot.
    packed.append(DepRecord(DepKind.MEM, 2, big_pc + 1,
                            producer_seq=50, producer_pc=big_pc + 2, tid=big_tid))
    got = [record_tuple(r) for r in packed]
    assert got == [
        (DepKind.INSTR, 0, big_pc, -1, -1, big_tid, 4),
        (DepKind.INSTR, 1, 3, -1, -1, 1, 4),
        (DepKind.MEM, 2, big_pc + 1, 50, big_pc + 2, big_tid, 8),
    ]
    # The flat edge view decodes the same overflow values.
    ranges, kinds, pseqs, ppcs = packed.flat_edges()
    lo, hi = ranges[2]
    assert pseqs[lo] == 50 and ppcs[lo] == big_pc + 2


def test_monotone_fallback_still_answers_queries():
    records = make_records(300)
    legacy, _ = fill_both(records)
    packed = PackedTraceBuffer()
    shuffled = records[50:] + records[:50]  # out-of-order direct appends
    for r in shuffled:
        packed.append(r)
    assert not packed.monotone
    ddg = PackedDDG(packed)
    assert not ddg.indexable
    # Queries fall back to the materialized legacy graph and still work.
    ref = build_ddg(legacy)
    sl_ref = backward_slice(ref, 200)
    sl = backward_slice(ddg, 200)
    assert (sl.seqs, sl.pcs, sl.truncated) == (sl_ref.seqs, sl_ref.pcs, sl_ref.truncated)


def test_epoch_invalidates_ddg_caches_and_flat_view():
    _, packed = fill_both(make_records(100))
    ddg = PackedDDG(packed)
    flat1 = packed.flat_edges()
    assert packed.flat_edges() is flat1  # cached while quiescent
    before = backward_slice(ddg, 99)
    packed.append(DepRecord(DepKind.REG, 100, 7, producer_seq=40, producer_pc=40 % 97))
    assert packed.flat_edges() is not flat1
    after = backward_slice(ddg, 100)  # same DDG object follows the buffer
    assert 100 in after.seqs and 40 in after.seqs  # new edge is visible
    assert after.seqs == {100} | backward_slice(ddg, 40).seqs
    # Prior results are unaffected by the append.
    again = backward_slice(ddg, 99)
    assert (again.seqs, again.pcs) == (before.seqs, before.pcs)


def test_resident_bytes_is_deterministic_column_payload():
    _, packed = fill_both(make_records(1000))
    expected = sum(c.cap * ROW_PAYLOAD_BYTES for c in packed.live_chunks())
    assert packed.resident_bytes() == expected
    packed.release()
    assert packed.resident_bytes() == 0
    assert len(packed) == 0


def test_tracer_integration_matches_legacy_store():
    runner = matmul(4).runner()
    _, packed_tracer, _ = runner.run_traced(OntracConfig(packed_store=True))
    runner = matmul(4).runner()
    _, legacy_tracer, _ = runner.run_traced(OntracConfig(packed_store=False))
    assert isinstance(packed_tracer.buffer, PackedTraceBuffer)
    assert [record_tuple(r) for r in packed_tracer.buffer] == \
        [record_tuple(r) for r in legacy_tracer.buffer]
    ddg = packed_tracer.dependence_graph()
    ref = legacy_tracer.dependence_graph()
    assert isinstance(ddg, PackedDDG) and ddg.indexable
    crit = max(ref.nodes)
    for slicer in (backward_slice, forward_slice):
        a, b = slicer(ddg, crit, DEFAULT_KINDS), slicer(ref, crit, DEFAULT_KINDS)
        assert (a.seqs, a.pcs, a.truncated) == (b.seqs, b.pcs, b.truncated)


# --- eviction-stats symmetry between the two overflow entry points ----------
def _overflow_stats(use_direct_path):
    """Same over-capacity stream through append() vs direct-append +
    evict_overflow(); the BufferStats must come out identical."""
    buf = TraceBuffer(capacity_bytes=64)
    for r in make_records(100):
        if use_direct_path:
            buf.records.append(r)
            buf.current_bytes += r.bytes
            stats = buf.stats
            stats.appended += 1
            stats.appended_bytes += r.bytes
            if buf.current_bytes > stats.peak_bytes:
                stats.peak_bytes = buf.current_bytes
            buf.evict_overflow()
        else:
            buf.append(r)
    return buf


def test_eviction_stats_symmetric_across_entry_points():
    via_append = _overflow_stats(use_direct_path=False)
    via_direct = _overflow_stats(use_direct_path=True)
    assert stats_tuple(via_append.stats) == stats_tuple(via_direct.stats)
    assert via_append.stats.eviction_passes > 0
    assert [record_tuple(r) for r in via_append] == \
        [record_tuple(r) for r in via_direct]
