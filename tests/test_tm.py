"""Unit tests for the TM monitoring simulation: transactions, conflicts,
rollback, livelocks, synchronization-aware resolution."""

import pytest

from repro.tm import (
    Op,
    OpKind,
    ParallelWorkload,
    Resolution,
    ThreadProgram,
    TMConfig,
    TransactionalMonitor,
    unmonitored_cycles,
)
from repro.workloads.splash_like import barrier_stencil, flag_pipeline, lock_reduction, tm_kernels


def monitor(workload, resolution=Resolution.NAIVE, **cfg):
    config = TMConfig(resolution=resolution, **cfg)
    return TransactionalMonitor(workload, config).run()


def two_threads(ops0, ops1, barriers=None, name="test"):
    return ParallelWorkload(
        name,
        [ThreadProgram(0, ops0), ThreadProgram(1, ops1)],
        barriers=barriers or {},
    )


class TestBasics:
    def test_single_thread_completes(self):
        w = two_threads([Op.write(1), Op.read(1), Op.local(3)], [])
        res = monitor(w)
        assert res.completed and not res.livelock
        assert res.commits >= 1
        assert res.aborts == 0

    def test_unmonitored_cycles(self):
        w = two_threads([Op.local(5), Op.write(1)], [Op.local(2)])
        assert unmonitored_cycles(w) == 8

    def test_monitoring_overhead_positive(self):
        w = two_threads([Op.write(i) for i in range(10)], [Op.read(100 + i) for i in range(10)])
        res = monitor(w)
        assert res.overhead > 0

    def test_disjoint_threads_no_conflicts(self):
        w = two_threads([Op.write(i) for i in range(20)],
                        [Op.write(100 + i) for i in range(20)])
        res = monitor(w)
        assert res.completed and res.aborts == 0

    def test_writes_visible_after_commit(self):
        w = two_threads([Op.write(5)], [])
        tm = TransactionalMonitor(w, TMConfig())
        tm.run()
        assert 5 in tm.memory  # flushed at thread completion

    def test_op_constructors(self):
        assert Op.read(3).kind is OpKind.READ
        assert Op.lock(1).target == 1
        assert Op.local(7).cost == 7


class TestConflicts:
    def test_write_write_conflict_aborts(self):
        # Both threads hammer the same cell in long transactions.
        w = two_threads(
            [Op.write(1), Op.local(1)] * 10,
            [Op.write(1), Op.local(1)] * 10,
        )
        res = monitor(w, txn_ops=8)
        assert res.aborts > 0

    def test_rollback_discards_buffered_writes(self):
        # Thread 1's conflicting txn must not leak its buffered write.
        w = two_threads(
            [Op.read(1)] * 6 + [Op.local(2)] * 4,
            [Op.write(1), Op.write(2)] + [Op.local(1)] * 4,
        )
        tm = TransactionalMonitor(w, TMConfig(txn_ops=4))
        res = tm.run()
        # whatever happened, committed memory only contains committed txns
        assert res.completed or res.livelock

    def test_wasted_ops_counted(self):
        w = two_threads(
            [Op.write(1), Op.local(1)] * 8,
            [Op.write(1), Op.local(1)] * 8,
        )
        res = monitor(w, txn_ops=8)
        if res.aborts:
            assert res.wasted_ops >= 0


class TestLivelocks:
    def test_flag_spin_livelocks_naive(self):
        w = two_threads(
            [Op.local(3)] + [Op.write(10 + i) for i in range(6)] + [Op.flag_set(99)],
            [Op.flag_wait(99), Op.read(10)],
            name="flag",
        )
        res = monitor(w, resolution=Resolution.NAIVE, txn_ops=16, max_steps=20_000)
        assert res.livelock and not res.completed

    def test_flag_spin_completes_sync_aware(self):
        w = two_threads(
            [Op.local(3)] + [Op.write(10 + i) for i in range(6)] + [Op.flag_set(99)],
            [Op.flag_wait(99), Op.read(10)],
            name="flag",
        )
        res = monitor(w, resolution=Resolution.SYNC_AWARE, txn_ops=16)
        assert res.completed and not res.livelock
        assert res.detected_spins >= 1

    def test_barrier_livelock_naive_vs_sync_aware(self):
        kernel = barrier_stencil(threads=3, cells_per_thread=10, phases=2)
        naive = monitor(kernel, resolution=Resolution.NAIVE, max_steps=50_000)
        aware = monitor(kernel, resolution=Resolution.SYNC_AWARE)
        assert naive.livelock
        assert aware.completed and not aware.livelock

    def test_sync_aware_cheaper_when_both_complete(self):
        # Short transactions let the naive policy finish the flag kernel;
        # sync-aware must still be no worse.
        kernel = flag_pipeline(stages=2, items=3)
        naive = monitor(kernel, resolution=Resolution.NAIVE, txn_ops=2, max_steps=100_000)
        aware = monitor(kernel, resolution=Resolution.SYNC_AWARE, txn_ops=2)
        assert aware.completed
        if naive.completed:
            assert aware.monitored_cycles <= naive.monitored_cycles * 1.5

    def test_suite_kernels_all_complete_sync_aware(self):
        for kernel in tm_kernels():
            res = monitor(kernel, resolution=Resolution.SYNC_AWARE)
            assert res.completed, kernel.name
            assert not res.livelock


class TestSyncOps:
    def test_lock_mutual_exclusion(self):
        kernel = lock_reduction(threads=2, iterations=5)
        res = monitor(kernel, resolution=Resolution.SYNC_AWARE)
        assert res.completed

    def test_barrier_requires_all_parties(self):
        # One thread never arrives: no progress -> reported as livelock.
        w = ParallelWorkload(
            "half-barrier",
            [
                ThreadProgram(0, [Op.barrier(1)]),
                ThreadProgram(1, [Op.local(1)] * 3),  # never arrives
            ],
            barriers={1: 2},
        )
        res = monitor(w, resolution=Resolution.SYNC_AWARE, no_progress_limit=200,
                      max_steps=5_000)
        assert not res.completed

    def test_detected_syncs_counted(self):
        kernel = lock_reduction(threads=2, iterations=4)
        res = monitor(kernel, resolution=Resolution.SYNC_AWARE)
        assert res.detected_syncs > 0
