"""Aggregate BENCH_*.json benchmark snapshots into BENCH_trend.json.

Each ``BENCH_<name>.json`` in the repo root is one experiment's headline
numbers for the current checkout (written by ``repro experiment --bench``
or the CI benchmarks job; ``BENCH_lake.json`` carries the trace-lake
stored-query latencies and spill overhead).  This tool folds them into a
per-commit trend file so regressions are visible across the PR sequence:

    {"schema": "repro.bench_trend/v1",
     "entries": [{"commit": "...", "commit_date": "...",
                  "experiments": {"service": {...headline...}, ...}}]}

Re-running on the same commit replaces that commit's entry (benchmarks
are rerun, not appended), so the file stays one-entry-per-commit and the
latest numbers win.

Usage: python tools/bench_trend.py [--root DIR] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

TREND_SCHEMA = "repro.bench_trend/v1"


def _git(root: Path, *args: str) -> str:
    out = subprocess.run(
        ["git", *args], cwd=root, capture_output=True, text=True, check=True
    )
    return out.stdout.strip()


def collect_bench(root: Path) -> dict[str, dict]:
    """Headline dicts of every BENCH_*.json in ``root``, keyed by experiment."""
    experiments: dict[str, dict] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name == "BENCH_trend.json":
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"bench_trend: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if not isinstance(data, dict):
            print(f"bench_trend: skipping {path.name}: not an object", file=sys.stderr)
            continue
        name = data.get("experiment") or path.stem[len("BENCH_"):]
        headline = data.get("headline")
        entry = {"headline": headline if isinstance(headline, dict) else {}}
        if data.get("notes"):
            entry["notes"] = data["notes"]
        experiments[name] = entry
    return experiments


def headline_deltas(prev_entry: dict | None, latest_entry: dict) -> list[str]:
    """Per-experiment numeric drift vs the previous commit's entry.

    Every lookup is ``.get``-tolerant: experiments appear and disappear
    across the PR sequence (a new BENCH_*.json mid-history must not
    KeyError against entries that predate it), and headline keys are
    free to evolve.  New experiments/keys report as ``new``.
    """
    lines: list[str] = []
    prev_exps = (prev_entry or {}).get("experiments") or {}
    for name, entry in sorted((latest_entry.get("experiments") or {}).items()):
        headline = entry.get("headline") or {}
        prev_headline = (prev_exps.get(name) or {}).get("headline") or {}
        for key, value in sorted(headline.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            old = prev_headline.get(key)
            if isinstance(old, (int, float)) and not isinstance(old, bool):
                delta = value - old
                lines.append(f"{name}.{key}: {old:g} -> {value:g} ({delta:+g})")
            else:
                lines.append(f"{name}.{key}: {value:g} (new)")
    return lines


def update_trend(root: Path, out: Path) -> dict:
    experiments = collect_bench(root)
    if not experiments:
        raise SystemExit("bench_trend: no BENCH_*.json files found")
    commit = _git(root, "rev-parse", "HEAD")
    commit_date = _git(root, "show", "-s", "--format=%cI", "HEAD")

    trend = {"schema": TREND_SCHEMA, "entries": []}
    if out.exists():
        try:
            prev = json.loads(out.read_text())
            if prev.get("schema") == TREND_SCHEMA:
                trend["entries"] = [
                    e for e in prev.get("entries", []) if e.get("commit") != commit
                ]
        except (OSError, ValueError) as exc:
            print(f"bench_trend: resetting corrupt {out.name}: {exc}", file=sys.stderr)

    trend["entries"].append(
        {"commit": commit, "commit_date": commit_date, "experiments": experiments}
    )
    trend["entries"].sort(key=lambda e: e.get("commit_date", ""))
    out.write_text(json.dumps(trend, indent=1, sort_keys=True) + "\n")
    return trend


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repo root (default: tool's parent)")
    parser.add_argument("--out", default=None, help="output file (default: ROOT/BENCH_trend.json)")
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    out = Path(args.out) if args.out else root / "BENCH_trend.json"
    trend = update_trend(root, out)
    latest = trend["entries"][-1]
    names = ", ".join(sorted(latest["experiments"]))
    print(
        f"bench_trend: {out} now has {len(trend['entries'])} entr"
        f"{'y' if len(trend['entries']) == 1 else 'ies'}; "
        f"latest {latest['commit'][:12]} covers: {names}"
    )
    prev = trend["entries"][-2] if len(trend["entries"]) > 1 else None
    for line in headline_deltas(prev, latest):
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
