"""Regenerate EXPERIMENTS.md by running every experiment (E1..E12 plus
the extra `slicing`, `parallel`, `service`, `router`, `kernel` and
`summaries` wall-clock experiments).

Usage: python tools/generate_experiments_md.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.experiments import ALL_EXPERIMENTS, run_experiment  # noqa: E402

COMMENTARY = {
    "E1": (
        "Online tracing lands in the paper's ~19x band and the offline "
        "collect-then-post-process baseline is an order of magnitude beyond "
        "it, dominated by the post-processing pass — the gap that motivated "
        "ONTRAC. Absolute values depend on the cost model's constants; the "
        "ratio structure (who wins, by what order) is the reproduced claim."
    ),
    "E2": (
        "The ablation ladder is strictly monotone: intra-block static "
        "inference removes most register dependences, hot traces and "
        "redundant-load elision shave memory dependences, and the "
        "forward-slice-of-input filter delivers the final large cut. Naive "
        "vs fully-optimized spans roughly an order of magnitude "
        "(paper: 16 -> 0.8 B/instr, a 20x cut; ours is workload-mix "
        "dependent but the same shape)."
    ),
    "E3": (
        "The window grows linearly in buffer bytes at a size-invariant "
        "instructions-per-KB rate, so the 16 MB point is extrapolated "
        "(running >10M interpreted instructions per configuration is "
        "wasteful). The extrapolated window is within ~2-3x of the paper's "
        "20M instructions; the exact constant tracks bytes/instruction, "
        "i.e. E2."
    ),
    "E4": (
        "With the hardware-interconnect channel the end-to-end overhead "
        "averages in the paper's ~48% band, the shared-memory software "
        "channel is several times worse (enqueue cost on the main core "
        "dominates), and both beat inline DIFT on the main core — the "
        "paper's motivation for the helper-core design."
    ),
    "E5": (
        "The case-study shape holds at our (thousandsfold smaller) scale: "
        "logging is near-free, full tracing is orders beyond it, the "
        "traced replay covers a few percent of the execution, thread "
        "reduction drops the non-interacting workers, the failure still "
        "reproduces, and the dependence count collapses. The paper's "
        "976M->3175 is a 307,000x cut on a 14.8 s run; our cut scales "
        "with run length by construction (window size is fixed by the "
        "checkpoint interval while total dependences grow with the run)."
    ),
    "E6": (
        "Every naive-policy kernel livelocks (flag spin and barrier both "
        "reproduce [9]'s scenarios; the lock kernel wedges on a lock held "
        "inside an abortable transaction), while the sync-aware policy "
        "completes all kernels with zero livelocks and single-digit "
        "monitoring overhead."
    ),
    "E7": (
        "Plain dynamic slices never contain the omission bugs (column 2 is "
        "all zeros) — the defining property of execution-omission errors. "
        "Predicate switching verifies the implicit dependence with about "
        "one re-execution per bug, matching the paper's 'small number of "
        "verifications'; relevant slicing also catches them but "
        "conservatively (sizes shown for comparison)."
    ),
    "E8": (
        "Value replacement ranks the bug line at the top for the "
        "wrong-constant, wrong-variable and both omission bugs — including "
        "the omission bugs slicing misses (column 'slice has bug' = 0), "
        "reproducing the paper's 'uniformly handles all errors' claim. "
        "wrong-operator is an honest miss: the correct value (a*b) never "
        "occurs anywhere in the run's value profile, so no observed-value "
        "replacement can produce the correct output."
    ),
    "E9": (
        "The lockset+happens-before baseline already suppresses "
        "lock-protected accesses; dynamic synchronization recognition then "
        "filters every benign flag-synchronization race and every access "
        "ordered through a recognized flag — while still reporting each "
        "seeded true race (final column)."
    ),
    "E10": (
        "All three of §3.2's environment-fault classes are captured, "
        "avoided by the class-appropriate environment change, recorded as "
        "an environment patch, and the patched 'future run' completes "
        "cleanly with only patch-lookup overhead."
    ),
    "E11": (
        "All attacks are detected at the sink and stopped before the "
        "hijacked action executes; benign runs are never flagged. The "
        "PC-taint label names the root-cause statement in 3/3 scenarios "
        "(the bool-vs-PC ablation in bench_e11 shows boolean taint detects "
        "but cannot explain)."
    ),
    "E12": (
        "Lineage is exact against ground truth on every workload and both "
        "representations; the modeled slowdown stays far below the paper's "
        "40x bound (our interpreter already absorbs what valgrind "
        "infrastructure cost them). The memory story is regime-dependent "
        "exactly as [12] describes: on overlapping/clustered resident sets "
        "(cumulative-sum) roBDDs beat naive sets by the naive/robdd ratio "
        "in the headline, while on scattered singleton lineage "
        "(scatter-pick) naive sets win — see the clustering ablation in "
        "bench_e12."
    ),
    "slicing": (
        "Another wall-clock experiment: the packed columnar store answers "
        "the same criterion batch >=3x faster than the legacy object-deque "
        "pipeline (which must build one DDGNode + edge-list entry per "
        "record before its first query) with every slice's (seqs, pcs, "
        "truncated) asserted identical. The residency rows separate the "
        "paper's *modeled* bytes/instruction (the wire format ONTRAC "
        "accounts, ~3.7 B/instr here) from the *measured* tracemalloc "
        "bytes the store actually occupies: the legacy deque of record "
        "objects runs ~55x over the modeled figure, the packed 15-byte "
        "column rows land within ~12x (allocator-granular chunks, "
        "consumer index included) — a >=4x real-memory cut at an equal "
        "window, which is the resource E3 trades for history."
    ),
    "parallel": (
        "The one experiment whose currency *is* wall-clock: a real worker "
        "process consumes the shared-memory ring and runs the unmodified "
        "DIFT engine, with every workload's alerts, taint sets and stats "
        "asserted identical to the inline run. The host-independent claim "
        "is the app-core CPU row — `time.process_time` never counts the "
        "worker, so offloading cuts the application core's DIFT cost "
        ">=1.5x regardless of CPU count. The per-workload wall rows are "
        "host-dependent: on a single usable CPU the parent and worker "
        "time-share one core and parity is the ceiling, which "
        "`usable_cpus` records and `projected_multicore_speedup` "
        "extrapolates past. Batching is the lever (batch_size=1 is ~2x "
        "slower than inline; >=256 amortizes the ring publishes) — see "
        "README 'Parallel helper' and benchmarks/bench_parallel.py."
    ),
    "service": (
        "The deployment shape, measured live: real daemons on Unix "
        "sockets with worker processes, admission control and a result "
        "cache. The scaling row is host-dependent (recorded by "
        "`usable_cpus`; on one CPU four workers time-share a core, and "
        "benchmarks/bench_service.py gates its >=1.5x assertion on >=2 "
        "CPUs). The overload row is host-independent policy: at 2.5x "
        "admission capacity every request is answered — fidelity sheds "
        "first (full -> dift -> log, §2.2's cheap-logging/"
        "expensive-replay split as a live ladder), REJECTED only at the "
        "capacity wall, zero hangs. The SLO row reads the overload "
        "daemon's own `service.latency.total_s` histogram back through "
        "`histogram_quantile` — the same p50/p95/p99 and shed rate "
        "`repro stats` exposes as Prometheus text on a production "
        "daemon — so the overload policy is characterized in latency "
        "terms, not just response counts. The cache row is the "
        "determinism argument operationalized: execution is a pure "
        "function of the job spec, so the repeat is served from "
        "canonical JSON bit-identical to the cold result, orders of "
        "magnitude faster. Every job in this table is traceable end to "
        "end: `submit --trace` merges client/server/admission/"
        "queue/exec/worker spans (wall-epoch-µs, plus the engine's "
        "modeled-cycle spans re-based inside the worker span) into one "
        "Chrome trace, e.g.\n\n"
        "```\n"
        "client.request          |==============================|\n"
        "  server.handle           |==========================|\n"
        "    server.admission      |=|\n"
        "    pool.queue              |====|\n"
        "    pool.exec                    |=================|\n"
        "      worker.execute              |===============|\n"
        "        engine spans               |... modeled-cycles ...|\n"
        "```\n\n"
        "and worker crashes / deadline cancels dump the flight "
        "recorder's last-N structured events to a JSON artifact for "
        "post-mortem."
    ),
    "router": (
        "The scale-out tier, measured live: 1 router + 3 daemons, hit by "
        "hundreds of simultaneous clients. The load row is the zero-hang "
        "contract at fan-out scale — every client gets a terminal frame, "
        "with overload answered by degraded/rejected (the backends' "
        "admission ladder republished through the router as "
        "back-pressure), never silence. The SLO row reads the *router's "
        "own* `router.latency.total_s` histogram — the same "
        "`histogram_quantile` rollup as the service's, one tier up, with "
        "`router.*` shed/reject rates beside it (gated in "
        "benchmarks/bench_router.py). The placement row shows consistent "
        "hashing doing its job: programs (not requests) are the sharding "
        "unit, so repeat analyses of one program land on one backend's "
        "warm cache, and the spread across backends is intentionally "
        "unequal but never degenerate. The streamed-relay row is the "
        "tier-transparency argument: a `stream: true` job relayed "
        "through the router reassembles byte-identical to the same job "
        "answered blocking by a backend directly — partial frames are "
        "forwarded with a monotone seq cursor, so even a backend crash "
        "mid-stream (rerouted, replayed, deduplicated) leaves the "
        "client's op stream gap-free and exactly-once "
        "(tests/test_router.py proves the crash case; this experiment "
        "measures the healthy path). The cache row closes the loop: "
        "repeats are absorbed at the router without a backend round "
        "trip."
    ),
    "kernel": (
        "Pure propagation throughput, with execution factored out: each "
        "workload's packed record stream (the same 24-byte wire format "
        "the ring ships) is captured once, then replayed through both "
        "propagation kernels. The reference kernel is the per-record "
        "engine loop, verbatim; the array kernel decodes each batch into "
        "numpy columns, screens taint-free batches in O(1), probes a "
        "taint-reachability fixpoint to select the records that can "
        "touch taint, and replays only those through a tightened scalar "
        "loop — falling back to whole-batch replay when a probe shows "
        "selection won't pay (dense register taint). The >=3x gate "
        "(benchmarks/bench_kernel.py) is on the suite aggregate; "
        "per-workload rows vary with taint density. The identity column "
        "is the contract: alerts, stats, shadow taint sets and the "
        "peak-location high-water mark must be bit-identical per "
        "workload, and `REPRO_FASTPATH_KERNEL=reference` in CI re-runs "
        "every equivalence suite on the pure-python side of the seam."
    ),
    "summaries": (
        "Call-granular elision on top of the batch kernel: the first "
        "execution of a CALL-delimited region is distilled into a taint "
        "transfer function (input footprint, output labels, stats deltas, "
        "sink trips), and later calls whose pre-state matches apply it in "
        "O(footprint) instead of replaying the region record by record. "
        "Validity is a two-part guard — footprint labels at entry plus "
        "exact byte equality of the region's records — so an aliased "
        "store, divergent branch or changed sink payload falls back to "
        "full propagation and re-learns; sites alternating between "
        "stable taint patterns keep one summary per footprint (variants) "
        "instead of thrashing. The base side of every row is the *array* "
        "kernel, not the reference loop — the >=5x call-heavy and >=2x "
        "aggregate gates (benchmarks/bench_summaries.py) are on top of "
        "the vectorized fast path, and each timed pass pays its own "
        "learning (fresh cache). The call-free spec workloads ride along "
        "to show the marker machinery costs them nothing, the "
        "50%-polymorphic member must show invalidations with identity "
        "held, and the record ledger must reconcile exactly: every "
        "consumed record is a marker, an elided region record, or a "
        "record the inner kernel actually propagated."
    ),
    "lake": (
        "The trace lake's whole value is that none of these answers "
        "re-executed anything: every per-workload row queries an mmap'd "
        "spill file (sealed packed chunks + footer index) and must match "
        "the live in-memory buffer bit for bit — same seqs, pcs and "
        "truncation under eviction — while spill-enabled tracing stays "
        "within 1.15x of no-spill tracing (sections are written once, at "
        "chunk-seal time, off the hot append path). The diff rows then "
        "use stored runs from *different builds* (buggy vs fixed) in "
        "source-line space via each manifest's pc→line map: edges only "
        "the failing run has, plus edges every passing run has that it "
        "lacks, must implicate a recorded bug line on the families whose "
        "injected defect changes the dependence-edge set."
    ),
}

HEADER = """# EXPERIMENTS — paper vs. measured

Generated by `python tools/generate_experiments_md.py` (every table below
is produced by the same `repro.harness.experiments` runners the
`benchmarks/` suite wraps; regenerate after any change).

The paper's evaluation is a set of in-text quantitative claims rather
than numbered tables/figures; DESIGN.md §4 maps each claim to an
experiment id. Our substrate is a deterministic interpreter with a
cycle cost model, not the authors' 2008 testbed, so **absolute numbers
are not comparable; shapes, orderings and ratio structure are** — each
experiment's assertions (see `benchmarks/`) encode exactly the shape
that must hold.

Each section also quotes a **Telemetry** line: counters/gauges from the
unified metrics registry (`repro.telemetry`), the same snapshot
`python -m repro experiments <id> --report out.json` serializes.

**Wall-clock vs modeled cycles.** Every number in E1–E12 is in *modeled
cycles* from the deterministic cost model — the currency in which the
paper's slowdowns and ratios are reproduced. Host wall-clock time is
*not* part of those claims: the fast execution path (`repro.fastpath`,
on by default) makes the simulator itself ~2x faster without moving a
single modeled number, and the differential suite holds the two
implementations to bit-identical cycle counts, record streams and
taint sets. Each section's **Wall-clock** line reports how long the
host took to run that experiment (also serialized as `wall_time_s` in
`--report` output) so the modeled and host costs sit side by side.
Seven benchmarks deal in wall-clock (and real bytes) on purpose:
`bench_fastpath.py` (>=2x host speedup, zero change in observables),
the `slicing` experiment below (packed columnar dependence store:
>=3x faster queries and >=4x lower *measured* store residency —
tracemalloc bytes, not the modeled `bytes_per_instruction`, which the
legacy object store exceeded ~55x), the `parallel` experiment, where a
real worker process is the claim, the `service` experiment, where
the claims are a live daemon's (throughput scaling across worker
processes, overload shedding with zero hangs, bit-identical cache
hits), the `router` experiment, where a consistent-hash router
tier fronts three live daemons under hundreds of concurrent clients,
the `kernel` experiment, where the vectorized batch-propagation
kernel must beat the per-record reference >=3x on captured record
streams while staying bit-identical in every observable, and the
`summaries` experiment, where learned per-call taint transfer
functions must beat the bare batch kernel >=5x on call-heavy code
(>=2x suite aggregate) with the record ledger reconciled exactly, and
the `lake` experiment, where persisted spill files must answer
slice/lineage/postmortem queries re-execution-free and bit-identically
to the live buffer, with cross-run dependence-edge diffs localizing
injected bugs across stored runs of different builds.

"""


def main() -> None:
    sections = [HEADER]
    names = sorted(ALL_EXPERIMENTS, key=lambda n: int(n[1:])) + [
        "slicing", "parallel", "service", "router", "kernel", "summaries",
        "lake",
    ]
    for name in names:
        result = run_experiment(name)
        sections.append(f"## {result.experiment} — {result.claim}\n")
        sections.append("```")
        sections.append(result.table())
        sections.append("```")
        if result.notes:
            sections.append(f"\n*{result.notes}*")
        headline = ", ".join(f"{k} = {v:.3g}" for k, v in result.headline.items())
        sections.append(f"\n**Headline:** {headline}")
        if result.metrics:
            shown = list(result.metrics.items())[:10]
            metrics = ", ".join(f"`{k}` = {v:.6g}" for k, v in shown)
            more = len(result.metrics) - len(shown)
            suffix = f" (+{more} more via `experiments {name} --report`)" if more else ""
            sections.append(f"\n**Telemetry:** {metrics}{suffix}")
        sections.append(f"\n{COMMENTARY[name]}")
        sections.append(f"\n**Wall-clock:** {result.wall_time_s:.1f} s on this host\n")
        print(f"{name} done in {result.wall_time_s:.1f}s")
    out = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    out.write_text("\n".join(sections))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
