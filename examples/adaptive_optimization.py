"""Trace-driven adaptive optimization — the paper's §4 "work in
progress" direction, built on the same tracing substrate.

The optimizer profiles one run and plans three kinds of specialization:

* hot traces (from ONTRAC's block-transition counters) as super-block
  candidates,
* invariant computation sites (always produced the same value) as
  constant-folding candidates,
* redundant-load sites (same address, same producer, over and over) as
  caching candidates,

and reports the cycle-model speedup the plan would buy.

Run:  python examples/adaptive_optimization.py
"""

from repro.apps.adaptive import AdaptiveOptimizer
from repro.lang import compile_source
from repro.runner import ProgramRunner
from repro.workloads.spec_like import matmul

SOURCE = """
global config[4];
fn main() {
    config[0] = 12;          // set once, read in every iteration
    var s = 0;
    var i = 0;
    while (i < 80) {
        s = s + config[0] * i;   // invariant load, hot loop
        i = i + 1;
    }
    out(s, 1);
}
"""


def main():
    compiled = compile_source(SOURCE)
    runner = ProgramRunner(compiled.program)
    plan = AdaptiveOptimizer(runner, hot_trace_threshold=10).plan()

    print("=== hand-written hot loop ===")
    print(f"plan: {plan.summary()}")
    for trace in plan.hot_traces:
        print(f"  hot trace: pc {trace.from_pc} -> {trace.to_pc} "
              f"({trace.executions} executions)")
    for site in plan.invariants[:5]:
        print(f"  invariant: line {compiled.line_of(site.pc)} always produced "
              f"{site.value} ({site.executions}x)")
    for site in plan.cache_sites:
        print(f"  cacheable load: line {compiled.line_of(site.pc)} "
              f"hit rate {site.hit_rate * 100:.0f}%")
    assert plan.estimated_speedup > 1.0

    print("\n=== matmul kernel ===")
    workload = matmul(8)
    plan2 = AdaptiveOptimizer(workload.runner(), hot_trace_threshold=20).plan()
    print(f"plan: {plan2.summary()}")
    print(f"  ({plan2.total_instructions} instructions profiled, "
          f"{len(plan2.hot_traces)} fused transitions)")


if __name__ == "__main__":
    main()
