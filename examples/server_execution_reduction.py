"""Execution reduction on a long-running multithreaded server (§2.2).

The MySQL-case-study workflow:

1. the server runs under cheap checkpointing & logging (fine-grained
   tracing OFF) until a rare malformed request corrupts a worker's heap
   and a later integrity check fails;
2. the reducer analyzes the replay log: picks the last checkpoint
   before the failure and the transitively-interacting thread set;
3. only that region — a percent or two of the execution, two of five
   threads — is replayed with ONTRAC tracing ON;
4. the dependence trace of the replayed window is small enough to
   slice, and the backward slice of the failed assertion reaches the
   malformed request's input.

Run:  python examples/server_execution_reduction.py
"""

from repro.isa import Opcode
from repro.ontrac import OntracConfig
from repro.reduction import CheckpointingLogger, ExecutionReducer
from repro.slicing import multithreaded_backward_slice
from repro.workloads.server import build_server


def main():
    scenario = build_server(workers=4, requests=160, busywork=10)
    runner = scenario.runner()
    print(f"server: {scenario.workers} workers, {len(scenario.requests)} requests; "
          f"malformed request #{scenario.attack_at} targets worker {scenario.victim}")

    # Phase 1: normal operation, logging on.
    machine = runner.machine()
    logger = CheckpointingLogger(checkpoint_interval=8000).attach(machine)
    result = machine.run()
    log = logger.finalize()
    print(f"\n[logging phase] {result.status.value}: {result.failure}")
    print(f"  logging slowdown {result.cycles.slowdown:.2f}x, "
          f"{len(log.checkpoints)} checkpoints, {log.events_logged} events logged")

    # Phase 2: execution reduction.
    reducer = ExecutionReducer(runner.program, log)
    plan = reducer.plan()
    print(f"\n[reduction phase] replay from checkpoint @seq {plan.checkpoint_seq}, "
          f"threads {sorted(plan.include_tids)} of {scenario.workers + 1}")

    # Phase 3: traced replay of the relevant region only.
    outcome = reducer.reduce_and_trace(OntracConfig(buffer_bytes=1 << 24))
    print(f"\n[replay phase] reproduced={outcome.replay.reproduced_failure} "
          f"(fallback={outcome.fell_back_to_all_threads})")
    print(f"  replayed {outcome.replay.replayed_instructions} of "
          f"{outcome.total_instructions} instructions "
          f"({outcome.replayed_fraction * 100:.1f}%)")
    print(f"  captured {outcome.traced_dependences} dependences "
          f"(vs the whole execution's millions-scale trace)")

    # Debug: slice the failed assertion back to the malformed request.
    ddg = outcome.tracer.dependence_graph()
    failure = outcome.replay.result.failure
    criterion = max(s for s in ddg.nodes if s <= failure.seq)
    sl = multithreaded_backward_slice(ddg, criterion)
    compiled = scenario.compiled
    slice_lines = sorted(sl.statement_lines(compiled))
    print(f"\n[slicing] backward slice of the assert: {len(sl.seqs)} instances "
          f"across source lines {slice_lines}")
    loads_of_integrity_word = [
        s for s in sl.seqs
        if runner.program.code[ddg.pc_of(s)].opcode is Opcode.LOAD
    ]
    print(f"  (the corrupted integrity word's load is among "
          f"{len(loads_of_integrity_word)} loads in the slice)")
    assert outcome.replay.reproduced_failure


if __name__ == "__main__":
    main()
