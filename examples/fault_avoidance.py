"""Fault avoidance (§3.2): capture an environment fault, find the
environment change that dodges it, and prevent it permanently.

Three fault classes, three strategies:

* an atomicity violation disappears under a serializing schedule,
* a heap overflow is absorbed by allocator padding,
* a malformed request is neutralized by sanitizing the exact input
  field the failure's dynamic slice implicates.

Each successful avoidance is recorded as an environment patch; the
"future run" at the end executes under the patch file and stays clean.

Run:  python examples/fault_avoidance.py
"""

from repro.apps.faultavoid import FaultAvoidanceFramework, PatchFile
from repro.workloads.buggy import atomicity_violation, heap_overflow, malformed_request


def main():
    patch_file = PatchFile()
    framework = FaultAvoidanceFramework(patch_file)

    for bug in (atomicity_violation(), heap_overflow(), malformed_request()):
        print(f"=== {bug.name}: {bug.description} ===")
        runner = bug.runner()
        _, baseline = runner.run()
        print(f"  fault: {baseline.failure}")

        outcome = framework.avoid(runner)
        assert outcome.avoided, "no environment change avoided the fault"
        print(f"  avoided after {len(outcome.attempts)} attempt(s) "
              f"with strategy '{outcome.patch.strategy}': {outcome.patch.description}")

        machine, protected, patch = patch_file.protected_run(
            runner, outcome.failure_kind, outcome.failure_pc
        )
        print(f"  future run under the patch: {protected.status.value} "
              f"(output {machine.io.output(1)})")
        assert not protected.failed
        print()

    print(f"patch file now holds {len(patch_file.patches)} environment patches:")
    for patch in patch_file.patches:
        print(f"  [{patch.signature.kind} @pc {patch.signature.pc}] "
              f"{patch.strategy} {patch.params}")


if __name__ == "__main__":
    main()
