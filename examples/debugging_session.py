"""A debugging session: ONTRAC tracing, dynamic slicing, pruning,
predicate switching, and value replacement on seeded bugs.

Reproduces the §3.1 workflow end to end:

* a *value* bug is pinned down by the backward dynamic slice of the
  wrong output, shrunk further by confidence pruning against the
  outputs that were still correct;
* an *execution omission* bug is invisible to the plain slice — the
  buggy predicate skipped the relevant code — and is exposed by
  switching one dynamic predicate instance and observing the criterion
  change (one re-execution);
* value replacement ranks the faulty statement first without using
  dependences at all.

Run:  python examples/debugging_session.py
"""

from repro.apps.faultloc import SliceBasedFaultLocator, ValueReplacementRanker
from repro.ontrac import OntracConfig
from repro.slicing import find_implicit_dependences
from repro.workloads.buggy import omission_predicate, wrong_variable


def show_lines(title, lines, source, bug_lines):
    print(f"  {title}:")
    for line in sorted(lines):
        marker = "  <-- BUG" if line in bug_lines else ""
        print(f"    line {line}: {source.splitlines()[line - 1].strip()}{marker}")


def value_bug_session():
    bug = wrong_variable()
    print(f"=== {bug.name}: {bug.description} ===")
    print(f"failing output:  {bug.runner().run()[0].io.output(1)}")
    print(f"expected output: {bug.expected_output()}")

    locator = SliceBasedFaultLocator(bug.runner(), bug.compiled, bug.expected_output())
    report = locator.locate()
    show_lines("dynamic slice of the wrong output", report.slice_lines, bug.source,
               bug.bug_lines)
    show_lines("after confidence pruning", report.pruned_lines, bug.source, bug.bug_lines)
    assert report.contains_bug(bug.bug_lines)
    print()


def omission_bug_session():
    bug = omission_predicate()
    print(f"=== {bug.name}: {bug.description} ===")
    runner = bug.runner()
    machine, tracer, _ = runner.run_traced(OntracConfig(buffer_bytes=1 << 22))
    ddg = tracer.dependence_graph()

    from repro.isa import Opcode

    out_pc = max(
        pc for pc in range(len(bug.compiled.program.code))
        if bug.compiled.program.code[pc].opcode is Opcode.OUT
    )
    from repro.slicing import backward_slice

    plain = backward_slice(ddg, ddg.last_instance_of_pc(out_pc))
    plain_lines = plain.statement_lines(bug.compiled)
    print(f"  plain slice lines {sorted(plain_lines)} — "
          f"misses the buggy predicate on line {min(bug.bug_lines)}")

    search = find_implicit_dependences(runner, ddg, out_pc)
    print(f"  predicate switching: {search.verifications} re-execution(s)")
    for dep in search.verified:
        line = bug.compiled.line_of(dep.branch_pc)
        print(f"  implicit dependence verified on line {line}: "
              f"{bug.source.splitlines()[line - 1].strip()}")
    candidate_lines = {bug.compiled.line_of(pc) for pc in search.candidate_pcs}
    assert candidate_lines & bug.bug_lines
    print()


def value_replacement_session():
    bug = omission_predicate()
    print(f"=== value replacement on {bug.name} (dependence-free) ===")
    ranker = ValueReplacementRanker(
        bug.runner(), bug.compiled, bug.expected_output(),
        passing_runner=bug.runner(failing=False),
    )
    report = ranker.rank()
    print(f"  {report.replacements_tried} replacements tried, "
          f"{len(report.ivmps)} produced the correct output")
    for line, count in report.ranking[:3]:
        marker = "  <-- BUG" if line in bug.bug_lines else ""
        print(f"  rank: line {line} ({count} IVMPs){marker}")
    assert report.rank_of_line(min(bug.bug_lines)) == 1


if __name__ == "__main__":
    value_bug_session()
    omission_bug_session()
    value_replacement_session()
