"""Scientific data lineage (§3.4): trace provenance, screen outputs,
and compare roBDD against naive set storage.

Scenario: a stencil pipeline smooths a sensor array.  After the run,
the lab discovers sensor 7 was miscalibrated.  Which published outputs
are contaminated?  Lineage answers exactly — without re-running the
pipeline or conservatively discarding everything.

Run:  python examples/lineage_tracing.py
"""

from repro.apps.lineage import LineageTracer, screen_outputs, verify_against_reference
from repro.workloads.scientific import cumulative_sum, stencil_chain


def provenance_demo():
    workload = stencil_chain(n=16, rounds=2)
    print(f"=== {workload.name}: {workload.description} ===")
    tracer = LineageTracer(representation="robdd")
    trace = tracer.trace(workload.runner())

    matches, mismatches = verify_against_reference(trace, workload.expected_lineage)
    print(f"traced lineage matches ground truth on {matches}/{workload.n_outputs} outputs")
    assert not mismatches

    sample = trace.outputs[5]
    print(f"output[5] = {sample.value}, lineage = inputs {sorted(sample.input_indices())}")

    report = screen_outputs(trace, contaminated={7})
    print(f"sensor 7 miscalibrated -> contaminated outputs: {report.suspect_outputs}")
    print(f"                          provably clean outputs: {report.cleared_outputs}")
    print()


def representation_comparison():
    workload = cumulative_sum(n=300)
    print(f"=== {workload.name}: {workload.description} ===")
    for representation in ("naive", "robdd"):
        tracer = LineageTracer(representation=representation)
        trace = tracer.trace(workload.runner())
        print(f"  {representation:6s}: live set storage {trace.shadow_set_bytes:>8d} B, "
              f"modeled union work {trace.union_cycles:>7d} cycles")
    print("  (overlapping resident sets are where roBDD sharing pays — §3.4)")


if __name__ == "__main__":
    provenance_demo()
    representation_comparison()
