"""Quickstart: compile a program, run it, and watch DIFT stop an attack.

This walks the three core layers in ~60 lines:

1. **MiniC -> mini-ISA**: `compile_source` turns readable source into a
   runnable program (the substrate standing in for x86 binaries).
2. **The VM**: `Machine` executes it deterministically; I/O channels
   are the program's connection to the world (and DIFT's taint source).
3. **DIFT**: a `DIFTEngine` with the PC-taint policy watches indirect
   calls; a crafted input that hijacks a function pointer is stopped at
   the sink, and the taint label names the root-cause statement.

Run:  python examples/quickstart.py
"""

from repro.dift import DIFTEngine, PCTaintPolicy
from repro.lang import compile_source
from repro.vm import Machine

SOURCE = """
fn greet(x) { out(100 + x, 1); }
fn grant_admin(x) { out(9999, 1); }

fn main() {
    var buf = alloc(4);        // request buffer
    var handler = alloc(1);    // function pointer, adjacent on the heap
    handler[0] = fnid(greet);

    var n = in(0);             // attacker-controlled length...
    var i = 0;
    while (i < n) {
        buf[i] = in(0);        // ...copied without a bounds check
        i = i + 1;
    }
    icall(handler[0], 7);      // dispatch the request
}
"""


def run(inputs, label):
    compiled = compile_source(SOURCE)
    machine = Machine(compiled.program)
    machine.io.provide(0, inputs)
    engine = DIFTEngine(PCTaintPolicy()).attach(machine)  # icall sink by default
    result = machine.run()

    print(f"--- {label} ---")
    print(f"status: {result.status.value}")
    print(f"output: {machine.io.output(1)}")
    if engine.alerts:
        alert = engine.alerts[0]
        line = compiled.line_of(alert.label)
        print(f"DIFT: tainted {alert.sink} stopped at pc={alert.pc}")
        print(f"root cause (PC taint): line {line}: "
              f"{SOURCE.splitlines()[line - 1].strip()}")
    print()
    return result


def main():
    # A benign request: two words, well within the buffer.
    run([2, 11, 22], "benign request")

    # The attack: five words overflow buf and overwrite handler[0] with
    # the id of grant_admin (function ids are assigned in order: greet=0,
    # grant_admin=1, main=2).
    result = run([5, 0, 0, 0, 0, 1], "attack request")
    assert result.failed and result.failure.kind == "attack_detected"
    print("the hijack never executed: grant_admin's 9999 is absent above")


if __name__ == "__main__":
    main()
