"""The trace lake: a persistent store of spilled runs plus manifests.

Layout under the lake root (default ``<cwd>/lake``, overridable via
``REPRO_LAKE_DIR`` or an explicit ``root=``):

``<root>/runs/<run-id>/trace.rlk`` — the spill file (:mod:`.format`);
``<root>/runs/<run-id>/manifest.json`` — JSON manifest: run key
(program hash, input hash, seed, fidelity), policy signature, alert
list, telemetry summary, trace facts and the pc→source-line map that
lets cross-run ``diff`` compare runs of *different builds* of one
program in source-line space.

A run directory containing ``trace.rlk`` but no manifest is an
**incomplete** run — the writer died before close.  It still lists and
still answers queries through the spill reader's readable-prefix
recovery; that is the crash postmortem story.

Retention is explicit, never background: :meth:`TraceLake.gc` drops
oldest-first beyond a run-count or byte budget, and
:meth:`TraceLake.compact` rewrites a run's many small chunk sections
into dense max-size chunks (a replay through a fresh packed buffer —
obviously exact, and cheap because compaction is rare and explicit).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import time

from ..ontrac.packed import _MAX_CHUNK_ROWS, PackedTraceBuffer
from ..util.artifacts import run_artifact_dir
from .format import (
    LakeFormatError,
    SpillWriter,
    StoredRun,
    buffer_state,
    open_spill,
    spill_buffer,
)

MANIFEST_SCHEMA = "repro.lake.manifest/v1"
TRACE_FILE = "trace.rlk"
MANIFEST_FILE = "manifest.json"

_SAN = re.compile(r"[^A-Za-z0-9_.-]+")


def _sanitize(part: str) -> str:
    return _SAN.sub("-", str(part)) or "x"


def input_hash(inputs: dict | None) -> str:
    """Stable short hash of a ``{channel: [values]}`` input map."""
    canon = json.dumps(
        sorted((int(ch), list(vals)) for ch, vals in (inputs or {}).items()),
        separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def program_hash(source: str) -> str:
    return "src-" + hashlib.sha256(source.encode()).hexdigest()[:16]


def _alert_dict(alert) -> dict:
    return {
        "seq": alert.seq,
        "tid": alert.tid,
        "pc": alert.pc,
        "sink": alert.sink,
        "label": str(alert.label),
        "description": alert.description,
        "value": getattr(alert, "value", 0),
        "channel": getattr(alert, "channel", -1),
    }


class RunInfo:
    """One lake run as listed (manifest may be absent: incomplete)."""

    __slots__ = ("run_id", "path", "manifest", "bytes", "mtime")

    def __init__(self, run_id, path, manifest, bytes_, mtime):
        self.run_id = run_id
        self.path = path
        self.manifest = manifest
        self.bytes = bytes_
        self.mtime = mtime

    @property
    def complete(self) -> bool:
        return self.manifest is not None

    @property
    def program(self) -> str:
        return (self.manifest or {}).get("program", "?")


class PendingRun:
    """A reserved run directory whose spill file is being written.

    Hand :attr:`spill_path` to the tracer
    (``OntracConfig(spill_path=...)``); call :meth:`finish` after the
    run to seal the spill and write the manifest.  If the process dies
    before ``finish`` the directory remains as an incomplete run with a
    recoverable trace prefix.
    """

    def __init__(self, lake: "TraceLake", run_id: str, key: dict):
        self.lake = lake
        self.run_id = run_id
        self.key = key
        self.dir = os.path.join(lake.runs_dir, run_id)
        self.spill_path = os.path.join(self.dir, TRACE_FILE)

    def finish(
        self,
        *,
        tracer=None,
        buffer=None,
        compiled=None,
        dift=None,
        alerts=None,
        registry=None,
        notes=None,
    ) -> str:
        """Seal the spill (or spill ``buffer`` post-hoc) and write the
        manifest; returns the run id."""
        buf = buffer
        if tracer is not None and buf is None:
            buf = tracer.buffer
        if buf is None:
            raise ValueError("finish needs a tracer or a buffer")
        spilled_to = getattr(buf, "spill_path", None)
        if spilled_to:
            buf.close()
            if os.path.abspath(spilled_to) != os.path.abspath(self.spill_path):
                shutil.copyfile(spilled_to, self.spill_path)
        elif not os.path.exists(self.spill_path):
            if not isinstance(buf, PackedTraceBuffer):
                raise ValueError("the lake stores packed buffers only")
            spill_buffer(buf, self.spill_path)
        manifest = self.lake._build_manifest(
            self.run_id, self.key, buf, self.spill_path,
            compiled=compiled, dift=dift, alerts=alerts,
            registry=registry, notes=notes,
        )
        tmp = self.spill_path + ".manifest.tmp"
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=1, sort_keys=True)
        os.replace(tmp, os.path.join(self.dir, MANIFEST_FILE))
        return self.run_id


class TraceLake:
    """Persistent store of spilled runs; see the module docstring."""

    def __init__(self, root: str | None = None):
        self.root = run_artifact_dir("lake", root)
        self.runs_dir = os.path.join(self.root, "runs")

    # -- recording ------------------------------------------------------------
    def begin_run(
        self,
        *,
        program: str,
        input_hash: str = "",
        seed: int = 0,
        fidelity: str = "full",
    ) -> PendingRun:
        """Reserve a run directory for a run about to execute.

        Runs are keyed by (program hash, input hash, seed, fidelity);
        re-recording the same key gets a ``-rN`` suffix so every run is
        addressable.
        """
        key = {
            "program": program,
            "input_hash": input_hash,
            "seed": int(seed),
            "fidelity": fidelity,
        }
        base = "--".join((
            _sanitize(program),
            _sanitize(input_hash) if input_hash else "noinput",
            f"s{int(seed)}",
            _sanitize(fidelity),
        ))
        os.makedirs(self.runs_dir, exist_ok=True)
        attempt = 0
        while True:
            run_id = base if attempt == 0 else f"{base}--r{attempt + 1}"
            try:
                os.makedirs(os.path.join(self.runs_dir, run_id))
            except FileExistsError:
                attempt += 1
                continue
            return PendingRun(self, run_id, key)

    def put(
        self,
        buffer: PackedTraceBuffer,
        *,
        program: str,
        input_hash: str = "",
        seed: int = 0,
        fidelity: str = "full",
        compiled=None,
        dift=None,
        alerts=None,
        registry=None,
        notes=None,
    ) -> str:
        """Record a finished in-memory trace as a lake run (post-hoc)."""
        pending = self.begin_run(
            program=program, input_hash=input_hash, seed=seed, fidelity=fidelity,
        )
        return pending.finish(
            buffer=buffer, compiled=compiled, dift=dift,
            alerts=alerts, registry=registry, notes=notes,
        )

    def _build_manifest(
        self, run_id, key, buf, spill_path,
        *, compiled=None, dift=None, alerts=None, registry=None, notes=None,
    ) -> dict:
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "run": run_id,
            "created_s": time.time(),
            **key,
            "trace": {
                "rows": len(buf),
                "total_rows": buf.stats.appended,
                "evicted": buf.stats.evicted,
                "bytes": os.path.getsize(spill_path),
                "modeled_bytes": buf.stats.appended_bytes,
                "window": [buf.oldest_seq, buf.newest_seq],
                "monotone": buf.monotone,
                "chunks": buf.chunk_count,
            },
        }
        if dift is not None:
            manifest.update(dift.lake_manifest())
        if alerts is not None:
            manifest["alerts"] = [_alert_dict(a) for a in alerts]
        manifest.setdefault("alerts", [])
        if registry is not None:
            manifest["telemetry"] = registry.flat()
        if compiled is not None:
            manifest["pc_lines"] = {
                str(pc): line for pc, line in sorted(compiled.line_map.items())
            }
        if notes:
            manifest["notes"] = notes
        return manifest

    # -- listing / opening -----------------------------------------------------
    def runs(self) -> list[RunInfo]:
        """Every run, oldest first (incomplete runs included)."""
        out = []
        if not os.path.isdir(self.runs_dir):
            return out
        for name in sorted(os.listdir(self.runs_dir)):
            rdir = os.path.join(self.runs_dir, name)
            trace = os.path.join(rdir, TRACE_FILE)
            if not os.path.isfile(trace):
                continue
            manifest = self.manifest(name)
            total = 0
            for fname in os.listdir(rdir):
                try:
                    total += os.path.getsize(os.path.join(rdir, fname))
                except OSError:
                    pass
            out.append(RunInfo(name, rdir, manifest, total, os.path.getmtime(trace)))
        out.sort(key=lambda r: (r.mtime, r.run_id))
        return out

    def manifest(self, run_id: str) -> dict | None:
        path = os.path.join(self.runs_dir, run_id, MANIFEST_FILE)
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    def open(self, run_id: str) -> StoredRun:
        path = os.path.join(self.runs_dir, run_id, TRACE_FILE)
        if not os.path.isfile(path):
            raise LakeFormatError(f"no such lake run: {run_id}")
        return open_spill(path)

    def resolve(self, prefix: str) -> str:
        """Resolve a unique run-id prefix (CLI convenience)."""
        names = [r.run_id for r in self.runs()]
        if prefix in names:
            return prefix
        hits = [n for n in names if n.startswith(prefix)]
        if len(hits) == 1:
            return hits[0]
        if not hits:
            raise LakeFormatError(f"no such lake run: {prefix}")
        raise LakeFormatError(
            f"ambiguous run prefix {prefix!r}: {', '.join(hits[:4])}..."
        )

    # -- retention -------------------------------------------------------------
    def gc(self, keep_runs: int | None = None, max_bytes: int | None = None) -> dict:
        """Drop oldest runs beyond the count/byte budgets (explicit,
        never background).  Returns a summary dict."""
        runs = self.runs()
        total = sum(r.bytes for r in runs)
        dropped = []
        while runs and (
            (keep_runs is not None and len(runs) > keep_runs)
            or (max_bytes is not None and total > max_bytes)
        ):
            victim = runs.pop(0)
            shutil.rmtree(victim.path, ignore_errors=True)
            total -= victim.bytes
            dropped.append(victim.run_id)
        return {
            "dropped": dropped,
            "kept": len(runs),
            "bytes": total,
        }

    def compact(self, run_id: str) -> dict:
        """Rewrite one run's spill, merging small chunk sections into
        dense max-size chunks.  Exact by construction: the live rows are
        replayed through a fresh packed buffer and the original buffer
        state is carried over, so every query observable (epoch,
        completeness, slices) is unchanged."""
        run_id = self.resolve(run_id)
        path = os.path.join(self.runs_dir, run_id, TRACE_FILE)
        with open_spill(path) as stored:
            before_sections = len(stored.index)
            state = dict(stored.state)
            fresh = PackedTraceBuffer(
                capacity_bytes=max(int(state["capacity_bytes"]), 1)
            )
            from ..ontrac.records import KIND_CODES

            for rec in stored.buffer:
                fresh.append_row(
                    KIND_CODES[rec.kind], rec.consumer_seq, rec.consumer_pc,
                    rec.producer_seq, rec.producer_pc, rec.tid,
                )
            tmp = path + ".compact.tmp"
            writer = SpillWriter(tmp)
            live = []
            for c in fresh._chunks:
                if not c.n:
                    continue
                cid = writer.add_chunk_from(c)
                live.append({"id": cid, "head": c.head})
            # Keep the original run's bookkeeping (stats/epoch/window),
            # not the replay's: the file is a representation change only.
            writer.close(live, state)
        os.replace(tmp, path)
        with open_spill(path) as stored:
            after_sections = len(stored.index)
        return {
            "run": run_id,
            "sections_before": before_sections,
            "sections_after": after_sections,
            "max_rows_per_section": _MAX_CHUNK_ROWS,
        }

    # -- telemetry -------------------------------------------------------------
    def publish_telemetry(self, registry) -> None:
        runs = self.runs()
        registry.gauge("lake.runs").set(len(runs))
        registry.gauge("lake.bytes").set(sum(r.bytes for r in runs))
        registry.gauge("lake.incomplete_runs").set(
            sum(1 for r in runs if not r.complete)
        )
