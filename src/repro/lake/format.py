"""Append-only spill format for packed dependence chunks.

A spill file is the on-disk twin of a
:class:`~repro.ontrac.packed.PackedTraceBuffer`: the same 15 B/row
column payload (:data:`~repro.ontrac.packed.ROW_PAYLOAD_BYTES`), one
self-describing **chunk section** per sealed chunk, written append-only
while the tracer runs, plus a JSON **footer index** written at close:

``[file header][chunk section]*[footer json][trailer]``

* *File header* (16 B): magic, format version.
* *Chunk section*: a 32 B header (section magic, row count, chunk
  ``cseq_base``, overflow count, payload length, payload CRC32)
  followed by the six column arrays — ``kind``/``cseq_off``/``cpc``/
  ``pdelta``/``ppc``/``tid``, padded so every column lands on its
  natural alignment relative to the file start — and the overflow
  side-table entries (``row, field-tag, value`` triples holding the
  out-of-column values the in-memory store keeps in a per-chunk dict).
* *Footer*: JSON index with per-chunk seq/pc ranges, the live window at
  close (which sections survive, per-chunk eviction head), and the full
  :class:`~repro.ontrac.buffer.BufferStats`/``monotone``/``last_cseq``
  buffer state — restoring it makes the adopted buffer's ``epoch``,
  ``complete`` and index caches *bit-identical* to the live one, so
  stored-run slices equal in-memory slices by construction.
* *Trailer* (24 B): footer offset + length + CRC32 + end magic.

Reading never copies column data: :func:`open_spill` mmaps the file and
adopts each section as a real :class:`~repro.ontrac.packed._Chunk`
whose column slots are ``memoryview`` casts straight into the map, so
the existing consumer-span bisects, reverse indexes and the flat edge
view in :mod:`repro.slicing.engine` all run unchanged over the file.

Crash story (the paper's "log cheap, analyze later"): sections are
flushed as chunks seal, so a SIGKILLed writer leaves ``[header]
[sections...][torn tail?]`` with no footer.  :func:`open_spill` then
falls back to a forward scan — adopt every section whose magic, bounds
and CRC check out, stop at the first that does not — and synthesizes
buffer state for the readable prefix (``recovered=True``).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from array import array
from collections import Counter

from ..ontrac.packed import (
    ROW_PAYLOAD_BYTES,
    PackedDDG,
    PackedTraceBuffer,
    _Chunk,
)
from ..ontrac.records import KIND_MBYTES

FILE_MAGIC = b"RPLAKE1\n"
TRAILER_MAGIC = b"RLAKEFT\n"
FORMAT_VERSION = 1

_FILE_HEADER = struct.Struct("<8sHH4x")  # magic, version, flags
_CHUNK_HEADER = struct.Struct("<IIqIII4x")  # magic, n, base, over, len, crc
_TRAILER = struct.Struct("<QII8s")  # footer off, footer len, crc, magic
_OVER_ENTRY = struct.Struct("<IIq")  # row, field tag, value

CHUNK_MAGIC = 0x4B4E4843  # "CHNK"

#: buffer-state fields round-tripped through the footer (order matters
#: for nothing but documentation; restoration is by name).
_STATS_FIELDS = (
    "appended", "appended_bytes", "evicted", "evicted_bytes",
    "peak_bytes", "eviction_passes",
)

_LAST_CSEQ_FLOOR = -(1 << 62)


class LakeFormatError(ValueError):
    """The file is not a readable spill of a supported version."""


def _pad4(n: int) -> int:
    return (n + 3) & ~3


def _pad8(n: int) -> int:
    return (n + 7) & ~7


def _columns_len(n: int) -> int:
    # kind (pad to 4) + cseq_off + cpc (pad to 4) + pdelta + ppc + tid
    return _pad4(n) + 4 * n + _pad4(2 * n) + 4 * n + 2 * n + 2 * n


def _payload_len(n: int, over_count: int) -> int:
    return _pad8(_pad8(_columns_len(n)) + _OVER_ENTRY.size * over_count)


def buffer_state(buf: PackedTraceBuffer) -> dict:
    """JSON-safe snapshot of the buffer bookkeeping the footer stores."""
    stats = buf.stats
    return {
        "capacity_bytes": buf.capacity_bytes,
        "current_bytes": buf.current_bytes,
        "monotone": buf.monotone,
        "last_cseq": buf._last_cseq,
        "rows": buf._rows,
        "stats": {name: getattr(stats, name) for name in _STATS_FIELDS},
    }


class SpillWriter:
    """Append-only writer for one spill file.

    ``add_chunk``/``add_chunk_from`` append sealed chunk sections
    (flushed immediately so a killed writer loses at most the torn
    tail); ``close`` writes the footer index and trailer.
    """

    def __init__(self, path: str):
        self.path = path
        self._f = open(path, "wb")
        self._f.write(_FILE_HEADER.pack(FILE_MAGIC, FORMAT_VERSION, 0))
        self._f.flush()
        self._index: list[dict] = []
        self._pos = _FILE_HEADER.size
        self.closed = False

    def add_chunk(
        self,
        cseq_base: int,
        n: int,
        kind_b: bytes,
        cseq_off_b: bytes,
        cpc_b: bytes,
        pdelta_b: bytes,
        ppc_b: bytes,
        tid_b: bytes,
        over_items=(),
        seq_range: tuple[int, int] | None = None,
        pc_range: tuple[int, int] | None = None,
    ) -> int:
        """Append one chunk section from raw column bytes; returns the
        section's file id (its position in the footer index)."""
        if self.closed:
            raise LakeFormatError("spill writer is closed")
        if n <= 0:
            raise ValueError("chunk sections must hold at least one row")
        over_items = list(over_items)
        payload = bytearray()
        payload += kind_b
        payload += bytes(_pad4(n) - n)
        payload += cseq_off_b
        payload += cpc_b
        payload += bytes(_pad4(2 * n) - 2 * n)
        payload += pdelta_b
        payload += ppc_b
        payload += tid_b
        payload += bytes(_pad8(len(payload)) - len(payload))
        for (row, tag), value in over_items:
            payload += _OVER_ENTRY.pack(row, tag, value)
        payload += bytes(_pad8(len(payload)) - len(payload))
        over_count = len(over_items)
        if seq_range is None:
            offs = array("I")
            offs.frombytes(cseq_off_b)
            seq_range = (cseq_base + min(offs), cseq_base + max(offs))
        if pc_range is None:
            cpcs = array("H")
            cpcs.frombytes(cpc_b)
            pc_range = (min(cpcs), max(cpcs))
        header = _CHUNK_HEADER.pack(
            CHUNK_MAGIC, n, cseq_base, over_count,
            len(payload), zlib.crc32(payload),
        )
        self._f.write(header)
        self._f.write(payload)
        self._f.flush()
        cid = len(self._index)
        self._index.append({
            "off": self._pos,
            "n": n,
            "base": cseq_base,
            "over": over_count,
            "seq0": seq_range[0], "seq1": seq_range[1],
            "pc0": pc_range[0], "pc1": pc_range[1],
        })
        self._pos += _CHUNK_HEADER.size + len(payload)
        return cid

    def add_chunk_from(self, chunk: _Chunk) -> int:
        """Append the first ``chunk.n`` rows of a live chunk."""
        n = chunk.n
        over = sorted(chunk.over.items()) if chunk.over else ()
        return self.add_chunk(
            chunk.cseq_base, n,
            memoryview(chunk.kind)[:n].tobytes(),
            memoryview(chunk.cseq_off)[:n].tobytes(),
            memoryview(chunk.cpc)[:n].tobytes(),
            memoryview(chunk.pdelta)[:n].tobytes(),
            memoryview(chunk.ppc)[:n].tobytes(),
            memoryview(chunk.tid)[:n].tobytes(),
            over,
        )

    def close(self, live: list[dict], state: dict) -> str:
        """Write the footer index and trailer; ``live`` is the buffer's
        surviving window at close (``[{"id": section, "head": rows
        evicted}, ...]`` in buffer order), ``state`` the
        :func:`buffer_state` snapshot."""
        if self.closed:
            return self.path
        footer = json.dumps({
            "format": FORMAT_VERSION,
            "chunks": self._index,
            "live": live,
            "buffer": state,
        }, separators=(",", ":")).encode()
        self._f.write(footer)
        self._f.write(_TRAILER.pack(
            self._pos, len(footer), zlib.crc32(footer), TRAILER_MAGIC,
        ))
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        self.closed = True
        return self.path


class SpillingPackedTraceBuffer(PackedTraceBuffer):
    """A packed buffer that spills every sealed chunk to disk as it
    seals, so the full appended stream (not just the live window)
    survives the process.

    The hot append path is untouched: spilling happens only in
    ``_grow`` — a chunk is sealed exactly when the buffer grows past it
    and sealed chunks never mutate again (eviction only advances their
    ``head``, recorded in the footer at :meth:`close`).  Recycled pool
    chunks were sealed (and therefore spilled) before retirement.
    """

    def __init__(self, capacity_bytes: int, spill_path: str):
        super().__init__(capacity_bytes)
        self.spill_path = spill_path
        self._writer: SpillWriter | None = SpillWriter(spill_path)
        #: id(chunk) -> spill-file section id for already-spilled chunks.
        self._spill_ids: dict[int, int] = {}

    def _grow(self, cseq):
        tail = self._tail
        if tail is not None and tail.n and id(tail) not in self._spill_ids:
            self._spill_ids[id(tail)] = self._writer.add_chunk_from(tail)
        c = super()._grow(cseq)
        # A chunk popped from the recycling pool is a new logical chunk.
        self._spill_ids.pop(id(c), None)
        return c

    def close(self) -> str:
        """Spill the partial tail and write the footer (idempotent)."""
        writer = self._writer
        if writer is None:
            return self.spill_path
        tail = self._tail
        if tail is not None and tail.n and id(tail) not in self._spill_ids:
            self._spill_ids[id(tail)] = writer.add_chunk_from(tail)
        live = [
            {"id": self._spill_ids[id(c)], "head": c.head}
            for c in self._chunks
            if id(c) in self._spill_ids
        ]
        writer.close(live, buffer_state(self))
        self._writer = None
        return self.spill_path


def spill_buffer(buf: PackedTraceBuffer, path: str) -> str:
    """Spill a finished in-memory buffer wholesale (the post-hoc path:
    trace first, decide to keep afterwards)."""
    writer = SpillWriter(path)
    live = []
    for c in buf._chunks:
        if not c.n:
            continue
        cid = writer.add_chunk_from(c)
        live.append({"id": cid, "head": c.head})
    writer.close(live, buffer_state(buf))
    return path


# -- reading -----------------------------------------------------------------
class StoredRun:
    """One mmap'd spill file adopted back into the packed query engine.

    ``buffer`` is a :class:`PackedTraceBuffer` whose chunks are
    zero-copy views into the map; feed it to :meth:`ddg` /
    :func:`~repro.slicing.backward_slice` exactly like a live buffer.
    Closing releases the views — queries made after :meth:`close` fail.
    """

    def __init__(self, path: str):
        import mmap

        self.path = path
        self._file = open(path, "rb")
        size = os.fstat(self._file.fileno()).st_size
        if size < _FILE_HEADER.size:
            self._file.close()
            raise LakeFormatError(f"{path}: truncated spill header")
        self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        self._mv = memoryview(self._mm)
        self._adopted: list[_Chunk] = []
        self._ddg: PackedDDG | None = None
        try:
            magic, version, _flags = _FILE_HEADER.unpack_from(self._mm, 0)
            if magic != FILE_MAGIC:
                raise LakeFormatError(f"{path}: not a lake spill file")
            if version != FORMAT_VERSION:
                raise LakeFormatError(
                    f"{path}: unsupported spill format version {version}"
                    f" (reader supports {FORMAT_VERSION})"
                )
            footer = self._read_footer()
            if footer is not None:
                self.recovered = False
                self.index = footer["chunks"]
                self.state = footer["buffer"]
                self.buffer = self._adopt_footer(footer)
            else:
                self.recovered = True
                self.buffer = self._adopt_recovered()
        except Exception:
            self._release_views()
            self._mm.close()
            self._file.close()
            raise

    # -- layout --------------------------------------------------------------
    def _read_footer(self) -> dict | None:
        mm = self._mm
        size = len(mm)
        if size < _FILE_HEADER.size + _TRAILER.size:
            return None
        off, length, crc, magic = _TRAILER.unpack_from(mm, size - _TRAILER.size)
        if magic != TRAILER_MAGIC:
            return None
        if off < _FILE_HEADER.size or off + length > size - _TRAILER.size:
            return None
        raw = bytes(mm[off:off + length])
        if zlib.crc32(raw) != crc:
            return None
        try:
            footer = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(footer, dict) or footer.get("format") != FORMAT_VERSION:
            return None
        return footer

    def _adopt_chunk(self, off: int, n: int, base: int, over_count: int) -> _Chunk:
        mv = self._mv
        c = _Chunk.__new__(_Chunk)
        c.cap = n
        c.cseq_base = base
        p = off + _CHUNK_HEADER.size
        c.kind = mv[p:p + n]
        q = p + _pad4(n)
        c.cseq_off = mv[q:q + 4 * n].cast("I")
        q += 4 * n
        c.cpc = mv[q:q + 2 * n].cast("H")
        q += _pad4(2 * n)
        c.pdelta = mv[q:q + 4 * n].cast("I")
        q += 4 * n
        c.ppc = mv[q:q + 2 * n].cast("H")
        q += 2 * n
        c.tid = mv[q:q + 2 * n].cast("H")
        over = None
        if over_count:
            over = {}
            q = p + _pad8(_columns_len(n))
            for row, tag, value in _OVER_ENTRY.iter_unpack(
                bytes(self._mm[q:q + _OVER_ENTRY.size * over_count])
            ):
                over[(row, tag)] = value
        c.over = over
        c.n = n
        c.head = 0
        c.rindex = None
        self._adopted.append(c)
        return c

    def _adopt_footer(self, footer: dict) -> PackedTraceBuffer:
        index = footer["chunks"]
        size = len(self._mm)
        chunks = []
        for entry in footer["live"]:
            meta = index[entry["id"]]
            off, n = meta["off"], meta["n"]
            if off + _CHUNK_HEADER.size + _payload_len(n, meta["over"]) > size:
                raise LakeFormatError(
                    f"{self.path}: footer references bytes past end of file"
                )
            c = self._adopt_chunk(off, n, meta["base"], meta["over"])
            c.head = entry["head"]
            chunks.append(c)
        return _restore_buffer(chunks, footer["buffer"])

    def _adopt_recovered(self) -> PackedTraceBuffer:
        """No (valid) footer: adopt the readable prefix of sections."""
        mm = self._mm
        size = len(mm)
        pos = _FILE_HEADER.size
        chunks: list[_Chunk] = []
        index: list[dict] = []
        while pos + _CHUNK_HEADER.size <= size:
            magic, n, base, over_count, plen, crc = _CHUNK_HEADER.unpack_from(mm, pos)
            if magic != CHUNK_MAGIC or n <= 0:
                break
            if plen != _payload_len(n, over_count):
                break
            if pos + _CHUNK_HEADER.size + plen > size:
                break
            if zlib.crc32(mm[pos + _CHUNK_HEADER.size:pos + _CHUNK_HEADER.size + plen]) != crc:
                break
            chunks.append(self._adopt_chunk(pos, n, base, over_count))
            index.append({"off": pos, "n": n, "base": base, "over": over_count})
            pos += _CHUNK_HEADER.size + plen
        self.index = index
        # Synthesize the state of a never-evicting buffer holding exactly
        # the recovered rows; evicted=0 keeps the DDG "complete", which is
        # right for the prefix: every stored dependence of a stored node
        # is in the prefix (producers precede consumers in append order).
        rows = 0
        appended_bytes = 0
        monotone = True
        last = _LAST_CSEQ_FLOOR
        for c in chunks:
            rows += c.n
            for code, count in Counter(bytes(c.kind)).items():
                appended_bytes += KIND_MBYTES[code] * count
            offs = list(c.cseq_off)
            if offs != sorted(offs) or c.cseq_base + offs[0] < last:
                monotone = False
            last = max(last, c.cseq_base + max(offs, default=0))
        self.state = {
            "capacity_bytes": max(appended_bytes, 1),
            "current_bytes": appended_bytes,
            "monotone": monotone,
            "last_cseq": last,
            "rows": rows,
            "stats": {
                "appended": rows, "appended_bytes": appended_bytes,
                "evicted": 0, "evicted_bytes": 0,
                "peak_bytes": appended_bytes, "eviction_passes": 0,
            },
        }
        return _restore_buffer(chunks, self.state)

    # -- query surface --------------------------------------------------------
    def ddg(self) -> PackedDDG:
        """The (cached) dependence-graph view over the stored run."""
        if self._ddg is None:
            self._ddg = PackedDDG(self.buffer)
        return self._ddg

    @property
    def rows(self) -> int:
        return self.buffer._rows

    @property
    def total_rows(self) -> int:
        return self.buffer.stats.appended

    def _release_views(self) -> None:
        empty = memoryview(b"")
        for c in self._adopted:
            for name in ("kind", "cseq_off", "cpc", "pdelta", "ppc", "tid"):
                v = getattr(c, name, None)
                if isinstance(v, memoryview):
                    v.release()
                    setattr(c, name, empty)
        self._adopted = []
        self._mv.release()

    def close(self) -> None:
        if self._mm is None:
            return
        self._ddg = None
        self.buffer.release()
        self._release_views()
        self._mm.close()
        self._mm = None
        self._file.close()

    def __enter__(self) -> "StoredRun":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _restore_buffer(chunks: list[_Chunk], state: dict) -> PackedTraceBuffer:
    buf = PackedTraceBuffer(capacity_bytes=max(int(state["capacity_bytes"]), 1))
    buf.current_bytes = int(state["current_bytes"])
    stats = buf.stats
    for name in _STATS_FIELDS:
        setattr(stats, name, int(state["stats"][name]))
    buf.monotone = bool(state["monotone"])
    buf._last_cseq = int(state["last_cseq"])
    buf._rows = int(state["rows"])
    buf._chunks = chunks
    buf._tail = chunks[-1] if chunks else None
    firsts = []
    for c in chunks:
        if c.head < c.n:
            firsts.append(c.cseq_base + c.cseq_off[c.head])
        else:
            # Mirrors the in-memory bookkeeping for a drained tail: the
            # stale entry holds the last evicted row's seq.
            firsts.append(c.cseq_base + c.cseq_off[c.n - 1])
    buf._firsts = firsts
    return buf


def open_spill(path: str) -> StoredRun:
    """mmap a spill file and adopt it into the packed query engine."""
    return StoredRun(path)
