"""Re-execution-free queries over stored runs.

Every verb here operates on a :class:`~repro.lake.format.StoredRun`
(mmap'd columns adopted into the packed engine) plus, optionally, the
run's manifest — never on a live VM.  ``slice``/``lineage`` are the
exact :mod:`repro.slicing` closures over the stored columns, so they
are bit-identical to what the live buffer would have answered;
``postmortem`` is the crash-triage summary; ``diff`` compares the
*static dependence edge sets* of run sets.

Edge identity for ``diff``: an edge is ``(consumer, producer, kind)``
with consumer/producer taken in **source-line space** when every run's
manifest carries a ``pc_lines`` map (so a failing buggy build can be
diffed against passing fixed builds whose pcs shifted), falling back to
raw pc space otherwise.  The failing run's suspect set is its edges
minus the union of every passing run's edges — the paper's "deep
analyze the one run that failed" applied across history.
"""

from __future__ import annotations

from ..ontrac.records import DepKind
from ..slicing.slicer import (
    DEFAULT_KINDS,
    DynamicSlice,
    backward_slice,
    forward_slice,
)
from .format import StoredRun


def resolve_criterion(
    run: StoredRun,
    seq: int | None = None,
    pc: int | None = None,
    line: int | None = None,
    manifest: dict | None = None,
) -> int:
    """Pick the slicing criterion seq for a stored run.

    Priority: explicit ``seq``; else the last dynamic instance of
    ``pc``; else the last instance of any pc on source ``line`` (needs
    the manifest's ``pc_lines``); else the newest stored instruction.
    """
    ddg = run.ddg()
    if seq is not None:
        return seq
    if pc is not None:
        last = ddg.last_instance_of_pc(pc)
        if last is None:
            raise KeyError(f"pc {pc} has no stored instance in this run")
        return last
    if line is not None:
        pc_lines = (manifest or {}).get("pc_lines")
        if not pc_lines:
            raise KeyError(
                "line criteria need a manifest with a pc_lines map "
                "(incomplete/recovered runs: use --seq or --pc)"
            )
        pcs = {int(p) for p, ln in pc_lines.items() if ln == line}
        best = None
        for p in pcs:
            last = ddg.last_instance_of_pc(p)
            if last is not None and (best is None or last > best):
                best = last
        if best is None:
            raise KeyError(f"line {line} has no stored instance in this run")
        return best
    newest = run.buffer.newest_seq
    if newest < 0:
        raise KeyError("run holds no trace rows")
    return newest


def slice_stored(
    run: StoredRun,
    criterion: int,
    kinds=DEFAULT_KINDS,
    direction: str = "backward",
) -> DynamicSlice:
    """The ordinary dynamic slice, over the stored columns."""
    ddg = run.ddg()
    if direction == "forward":
        return forward_slice(ddg, criterion, kinds)
    return backward_slice(ddg, criterion, kinds)


def lineage_stored(run: StoredRun, criterion: int, kinds=DEFAULT_KINDS) -> DynamicSlice:
    """Forward lineage: everything the criterion value flowed into."""
    return forward_slice(run.ddg(), criterion, kinds)


def slice_lines(sl: DynamicSlice, manifest: dict | None) -> list[int]:
    """Source lines of a stored-run slice via the manifest's pc map."""
    pc_lines = (manifest or {}).get("pc_lines") or {}
    lines = {pc_lines.get(str(pc), 0) for pc in sl.pcs}
    lines.discard(0)
    return sorted(lines)


# -- postmortem ---------------------------------------------------------------
def postmortem(run: StoredRun, manifest: dict | None = None, tail: int = 12) -> dict:
    """Crash-triage summary of a stored run: what was executing, what
    the window held, what alerts fired — all without the program."""
    buf = run.buffer
    ddg = run.ddg()
    stats = ddg.stats() if buf._rows else {"nodes": 0, "edges": 0}
    hot: dict[int, int] = {}
    for _seq, pc in ddg.node_items():
        hot[pc] = hot.get(pc, 0) + 1
    hottest = sorted(hot.items(), key=lambda kv: (-kv[1], kv[0]))[:8]
    records = buf.records
    last = [
        str(records[i]) for i in range(max(0, len(records) - tail), len(records))
    ]
    report = {
        "run": (manifest or {}).get("run", run.path),
        "recovered": run.recovered,
        "complete": buf.stats.evicted == 0,
        "rows": buf._rows,
        "total_rows": buf.stats.appended,
        "evicted": buf.stats.evicted,
        "window": [buf.oldest_seq, buf.newest_seq],
        "graph": stats,
        "hot_pcs": [{"pc": pc, "nodes": n} for pc, n in hottest],
        "tail": last,
        "alerts": (manifest or {}).get("alerts", []),
    }
    pc_lines = (manifest or {}).get("pc_lines")
    if pc_lines:
        for entry in report["hot_pcs"]:
            entry["line"] = pc_lines.get(str(entry["pc"]), 0)
    return report


# -- cross-run diff -----------------------------------------------------------
def edge_signatures(run: StoredRun, manifest: dict | None = None) -> set[tuple]:
    """The run's static dependence-edge set.

    One signature per distinct ``(consumer, producer, kind)`` with
    endpoints in line space when the manifest maps pcs to lines, pc
    space otherwise.
    """
    pc_lines = (manifest or {}).get("pc_lines")
    sigs: set[tuple] = set()
    if pc_lines:
        lookup = {int(p): ln for p, ln in pc_lines.items()}
        for cseq, cpc, tid, pseq, ppc, kind in run.ddg().iter_edge_rows():
            sigs.add((
                lookup.get(cpc, -cpc - 1), lookup.get(ppc, -ppc - 1), kind.value,
            ))
    else:
        for cseq, cpc, tid, pseq, ppc, kind in run.ddg().iter_edge_rows():
            sigs.add((cpc, ppc, kind.value))
    return sigs


def diff_edge_sets(failing: set[tuple], passing: list[set[tuple]]) -> list[tuple]:
    union: set[tuple] = set()
    for s in passing:
        union |= s
    return sorted(failing - union)


def diff_runs(
    lake,
    failing_id: str,
    passing_ids: list[str],
    kinds=None,
) -> dict:
    """Which dependence edges appear in the failing run but in **no**
    passing run?  ``lake`` is a :class:`~repro.lake.store.TraceLake`;
    ids may be unique prefixes.  Line space is used iff every involved
    run's manifest has a pc→line map."""
    failing_id = lake.resolve(failing_id)
    passing_ids = [lake.resolve(p) for p in passing_ids]
    manifests = {rid: lake.manifest(rid) for rid in [failing_id, *passing_ids]}
    line_space = all(
        (m or {}).get("pc_lines") for m in manifests.values()
    )
    wanted = None if kinds is None else {k.value for k in kinds}

    def _sigs(rid: str) -> set[tuple]:
        with lake.open(rid) as run:
            sigs = edge_signatures(
                run, manifests[rid] if line_space else None,
            )
        if wanted is not None:
            sigs = {s for s in sigs if s[2] in wanted}
        return sigs

    failing = _sigs(failing_id)
    passing = [_sigs(rid) for rid in passing_ids]
    suspects = diff_edge_sets(failing, passing)
    # The symmetric story for omission bugs: edges EVERY passing run
    # exercises that the failing run never did point at the computation
    # the bug omitted (the suspects above point at what it did instead).
    common = passing[0].copy() if passing else set()
    for s in passing[1:]:
        common &= s
    missing = sorted(common - failing)
    return {
        "space": "line" if line_space else "pc",
        "failing": failing_id,
        "passing": passing_ids,
        "failing_edges": len(failing),
        "passing_edges": len(set().union(*passing)) if passing else 0,
        "suspects": [
            {"consumer": c, "producer": p, "kind": k} for c, p, k in suspects
        ],
        "missing": [
            {"consumer": c, "producer": p, "kind": k} for c, p, k in missing
        ],
    }


def suspect_lines(diff: dict) -> set[int]:
    """Source lines implicated by a line-space diff result: endpoints
    of the failing run's extra edges and of the edges it is missing."""
    if diff["space"] != "line":
        return set()
    out = set()
    for edge in diff["suspects"] + diff.get("missing", []):
        for end in (edge["consumer"], edge["producer"]):
            if isinstance(end, int) and end > 0:
                out.add(end)
    return out


__all__ = [
    "DepKind",
    "diff_edge_sets",
    "diff_runs",
    "edge_signatures",
    "lineage_stored",
    "postmortem",
    "resolve_criterion",
    "slice_lines",
    "slice_stored",
    "suspect_lines",
]
