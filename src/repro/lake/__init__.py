"""Persistent trace lake: spill packed dependence chunks to disk while
tracing, store runs with manifests, and answer slice/lineage/
postmortem/diff queries across historical runs without re-executing
anything.

* :mod:`.format` — the append-only spill-file format, the spilling
  buffer, and the mmap zero-copy reader;
* :mod:`.store` — :class:`TraceLake`, run keying, manifests, retention
  and explicit compaction;
* :mod:`.query` — re-execution-free query verbs over stored runs.
"""

from .format import (
    FORMAT_VERSION,
    LakeFormatError,
    SpillingPackedTraceBuffer,
    SpillWriter,
    StoredRun,
    open_spill,
    spill_buffer,
)
from .query import (
    diff_runs,
    edge_signatures,
    lineage_stored,
    postmortem,
    resolve_criterion,
    slice_lines,
    slice_stored,
    suspect_lines,
)
from .store import PendingRun, RunInfo, TraceLake, input_hash, program_hash

__all__ = [
    "FORMAT_VERSION",
    "LakeFormatError",
    "PendingRun",
    "RunInfo",
    "SpillWriter",
    "SpillingPackedTraceBuffer",
    "StoredRun",
    "TraceLake",
    "diff_runs",
    "edge_signatures",
    "input_hash",
    "lineage_stored",
    "open_spill",
    "postmortem",
    "program_hash",
    "resolve_criterion",
    "slice_lines",
    "slice_stored",
    "spill_buffer",
    "suspect_lines",
]
