"""TM-based runtime monitoring of parallel applications (§2.2, [9]):
operation model, software-TM simulation, naive vs synchronization-aware
conflict resolution."""

from .ops import SYNC_KINDS, Op, OpKind, ParallelWorkload, ThreadProgram
from .stm import Resolution, TMConfig, TMResult, TransactionalMonitor, unmonitored_cycles

__all__ = [
    "SYNC_KINDS",
    "Op",
    "OpKind",
    "ParallelWorkload",
    "ThreadProgram",
    "Resolution",
    "TMConfig",
    "TMResult",
    "TransactionalMonitor",
    "unmonitored_cycles",
]
