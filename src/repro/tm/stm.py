"""Software-TM simulation of monitored parallel execution (§2.2, [9]).

Every application data access of a monitored thread is paired with a
DBT metadata access; TM makes the pair atomic by running each thread's
accesses inside transactions (``txn_ops`` accesses per transaction,
lazily versioned: writes buffer until commit, conflicts detected
eagerly against other threads' open read/write sets).

Two conflict-resolution policies:

* ``naive`` — the requesting transaction always aborts and retries,
  and synchronization operations execute *inside* transactions.  A
  thread spinning on a flag holds the flag in its open read set
  forever, so the setter can never commit (flag livelock); a thread
  blocked at a barrier mid-transaction holds its write set, so peers
  that must touch those cells to reach the barrier abort forever
  (barrier livelock).
* ``sync_aware`` — the monitor dynamically *detects* synchronization
  (explicit lock/barrier ops, plus spin loops recognized after
  ``spin_threshold`` repeated same-cell reads with an unchanged value)
  and uses it in resolution: transactions commit before detected sync
  operations, detected spin reads execute non-transactionally, and
  conflicts against a thread blocked at a sync abort the blocked
  thread instead of the requester.

The simulator is deterministic (round-robin, one operation per step)
and reports commits, aborts, wasted work, livelock, and monitoring
overhead versus an unmonitored run of the same workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .ops import SYNC_KINDS, Op, OpKind, ParallelWorkload


class Resolution(enum.Enum):
    NAIVE = "naive"
    SYNC_AWARE = "sync_aware"


@dataclass
class TMConfig:
    resolution: Resolution = Resolution.NAIVE
    txn_ops: int = 16  # accesses per transaction
    spin_threshold: int = 5  # repeated reads before a spin is recognized
    max_steps: int = 200_000
    no_progress_limit: int = 2_000  # steps without any position advancing
    # cost model (cycles)
    txn_begin_cycles: int = 8
    txn_commit_cycles: int = 12
    metadata_cycles: int = 2  # per monitored access
    abort_penalty_cycles: int = 20


@dataclass
class _Txn:
    start_pos: int
    reads: set[int] = field(default_factory=set)
    writes: dict[int, int] = field(default_factory=dict)  # buffered
    ops_done: int = 0
    #: barrier ids this txn arrived at (rolled back on abort).
    arrivals: list[int] = field(default_factory=list)
    locks: list[int] = field(default_factory=list)


@dataclass
class _Thread:
    tid: int
    ops: list[Op]
    pos: int = 0
    txn: _Txn | None = None
    blocked: str = ""
    aborts: int = 0
    consecutive_aborts: int = 0
    committed_ops: int = 0
    wasted_ops: int = 0
    #: (addr -> consecutive same-value reads) for spin detection.
    spin_counts: dict[int, int] = field(default_factory=dict)
    spin_values: dict[int, int] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.pos >= len(self.ops)


@dataclass
class TMResult:
    workload: str
    resolution: str
    completed: bool
    livelock: bool
    steps: int
    commits: int
    aborts: int
    wasted_ops: int
    base_cycles: int
    monitored_cycles: int
    detected_spins: int
    detected_syncs: int

    @property
    def overhead(self) -> float:
        if self.base_cycles == 0:
            return 0.0
        return self.monitored_cycles / self.base_cycles - 1.0

    def publish_telemetry(self, registry) -> None:
        """Dump commit/abort/retry metrics into a registry.

        A retry is an abort of a transaction that had already completed
        at least one access (its work is re-executed); first-access
        conflicts abort before any work is buffered.
        """
        registry.counter("tm.commits").inc(self.commits)
        registry.counter("tm.aborts").inc(self.aborts)
        registry.counter("tm.retried_ops").inc(self.wasted_ops)
        registry.counter("tm.detected_spins").inc(self.detected_spins)
        registry.counter("tm.detected_syncs").inc(self.detected_syncs)
        registry.counter("tm.steps").inc(self.steps)
        registry.counter("tm.livelocks").inc(int(self.livelock))
        registry.gauge("tm.overhead_x").set(self.overhead + 1.0)


def unmonitored_cycles(workload: ParallelWorkload) -> int:
    """Cost of the workload with no monitoring (every op once)."""
    return sum(op.cost for t in workload.threads for op in t.ops)


class TransactionalMonitor:
    """Simulates one monitored execution of a :class:`ParallelWorkload`."""

    def __init__(self, workload: ParallelWorkload, config: TMConfig | None = None):
        self.workload = workload
        self.config = config or TMConfig()
        self.memory: dict[int, int] = {}
        self.lock_owner: dict[int, int | None] = {}
        self.barrier_arrived: dict[int, set[int]] = {b: set() for b in workload.barriers}
        self.threads = [_Thread(t.tid, t.ops) for t in workload.threads]
        self.steps = 0
        self.commits = 0
        self.aborts = 0
        self.cycles = 0
        self.detected_spins = 0
        self.detected_syncs = 0
        self._progress_stamp = 0
        self._last_positions: list[int] = []

    # -- public -----------------------------------------------------------
    def run(self) -> TMResult:
        cfg = self.config
        livelock = False
        while self.steps < cfg.max_steps:
            if all(t.done for t in self.threads):
                break
            progressed = False
            for thread in self.threads:
                if thread.done:
                    continue
                before = (thread.pos, thread.txn.ops_done if thread.txn else -1)
                self._step(thread)
                self.steps += 1
                if thread.done and thread.txn is not None:
                    self._commit(thread)  # end of stream flushes buffered writes
                after = (thread.pos, thread.txn.ops_done if thread.txn else -1)
                if after != before:
                    progressed = True
            if progressed:
                self._progress_stamp = self.steps
            elif self.steps - self._progress_stamp > cfg.no_progress_limit:
                livelock = True
                break
        else:
            livelock = True  # step budget exhausted without completing
        completed = all(t.done for t in self.threads)
        return TMResult(
            workload=self.workload.name,
            resolution=cfg.resolution.value,
            completed=completed,
            livelock=livelock and not completed,
            steps=self.steps,
            commits=self.commits,
            aborts=self.aborts,
            wasted_ops=sum(t.wasted_ops for t in self.threads),
            base_cycles=unmonitored_cycles(self.workload),
            monitored_cycles=self.cycles,
            detected_spins=self.detected_spins,
            detected_syncs=self.detected_syncs,
        )

    # -- core step --------------------------------------------------------------
    def _step(self, thread: _Thread) -> None:
        cfg = self.config
        op = thread.ops[thread.pos]
        sync_aware = cfg.resolution is Resolution.SYNC_AWARE

        if sync_aware and op.kind in SYNC_KINDS and thread.txn is not None:
            # Detected synchronization: commit before executing it.
            self.detected_syncs += 1
            self._commit(thread)

        if op.kind is OpKind.LOCAL:
            self.cycles += op.cost
            thread.pos += 1
            return
        if op.kind is OpKind.LOCK:
            self._do_lock(thread, op)
            return
        if op.kind is OpKind.UNLOCK:
            self._do_unlock(thread, op)
            return
        if op.kind is OpKind.BARRIER:
            self._do_barrier(thread, op)
            return
        if op.kind is OpKind.FLAG_SET:
            self._transactional_write(thread, op.target, 1, op)
            return
        if op.kind is OpKind.FLAG_WAIT:
            self._do_flag_wait(thread, op)
            return
        if op.kind is OpKind.READ:
            self._transactional_read(thread, op.target, op)
            return
        if op.kind is OpKind.WRITE:
            self._transactional_write(thread, op.target, thread.pos, op)
            return
        raise AssertionError(f"unhandled op {op}")  # pragma: no cover

    # -- transactions -------------------------------------------------------------
    def _ensure_txn(self, thread: _Thread) -> _Txn:
        if thread.txn is None:
            thread.txn = _Txn(start_pos=thread.pos)
            self.cycles += self.config.txn_begin_cycles
        return thread.txn

    def _commit(self, thread: _Thread) -> None:
        txn = thread.txn
        if txn is None:
            return
        self.memory.update(txn.writes)
        thread.committed_ops += txn.ops_done
        thread.consecutive_aborts = 0
        thread.txn = None
        self.commits += 1
        self.cycles += self.config.txn_commit_cycles

    def _abort(self, thread: _Thread) -> None:
        txn = thread.txn
        assert txn is not None
        thread.wasted_ops += thread.pos - txn.start_pos
        thread.pos = txn.start_pos
        for barrier_id in txn.arrivals:
            self.barrier_arrived[barrier_id].discard(thread.tid)
        for lock_id in txn.locks:
            if self.lock_owner.get(lock_id) == thread.tid:
                self.lock_owner[lock_id] = None
        thread.txn = None
        thread.blocked = ""
        thread.aborts += 1
        thread.consecutive_aborts += 1
        self.aborts += 1
        self.cycles += self.config.abort_penalty_cycles

    def _finish_access(self, thread: _Thread, op: Op) -> None:
        txn = thread.txn
        assert txn is not None
        txn.ops_done += 1
        self.cycles += op.cost + self.config.metadata_cycles
        thread.pos += 1
        if txn.ops_done >= self.config.txn_ops:
            self._commit(thread)

    def _conflicts(self, requester: _Thread, addr: int, is_write: bool) -> _Thread | None:
        """The open transaction (not the requester's) this access conflicts
        with, if any: write vs read/write, read vs write."""
        for other in self.threads:
            if other.tid == requester.tid or other.txn is None:
                continue
            txn = other.txn
            if is_write and (addr in txn.reads or addr in txn.writes):
                return other
            if not is_write and addr in txn.writes:
                return other
        return None

    def _resolve(self, requester: _Thread, holder: _Thread, addr: int) -> bool:
        """Resolve a conflict; returns True if the requester may proceed."""
        if self.config.resolution is Resolution.SYNC_AWARE:
            holder_spinning = holder.spin_counts.get(addr, 0) >= self.config.spin_threshold
            if holder_spinning or holder.blocked:
                # The holder is synchronizing: abort it, not the requester.
                self._abort(holder)
                return True
        self._abort_requester(requester)
        return False

    def _abort_requester(self, requester: _Thread) -> None:
        if requester.txn is not None:
            self._abort(requester)
        else:
            # Conflict on the first access of a would-be transaction.
            requester.aborts += 1
            requester.consecutive_aborts += 1
            self.aborts += 1
            self.cycles += self.config.abort_penalty_cycles

    def _transactional_read(self, thread: _Thread, addr: int, op: Op) -> None:
        holder = self._conflicts(thread, addr, is_write=False)
        if holder is not None and not self._resolve(thread, holder, addr):
            return
        txn = self._ensure_txn(thread)
        txn.reads.add(addr)
        value = txn.writes.get(addr, self.memory.get(addr, 0))
        self._track_spin(thread, addr, value)
        self._finish_access(thread, op)

    def _transactional_write(self, thread: _Thread, addr: int, value: int, op: Op) -> None:
        holder = self._conflicts(thread, addr, is_write=True)
        if holder is not None and not self._resolve(thread, holder, addr):
            return
        txn = self._ensure_txn(thread)
        txn.writes[addr] = value
        self._finish_access(thread, op)

    def _track_spin(self, thread: _Thread, addr: int, value: int) -> None:
        if thread.spin_values.get(addr) == value:
            thread.spin_counts[addr] = thread.spin_counts.get(addr, 0) + 1
            if thread.spin_counts[addr] == self.config.spin_threshold:
                self.detected_spins += 1
        else:
            thread.spin_values[addr] = value
            thread.spin_counts[addr] = 0

    # -- synchronization operations --------------------------------------------------
    def _do_lock(self, thread: _Thread, op: Op) -> None:
        owner = self.lock_owner.get(op.target)
        if owner is None:
            self.lock_owner[op.target] = thread.tid
            if thread.txn is not None:
                thread.txn.locks.append(op.target)
            thread.blocked = ""
            self.cycles += op.cost
            thread.pos += 1
        else:
            thread.blocked = f"lock {op.target}"
            self.cycles += 1

    def _do_unlock(self, thread: _Thread, op: Op) -> None:
        self.lock_owner[op.target] = None
        if thread.txn is not None and op.target in thread.txn.locks:
            thread.txn.locks.remove(op.target)
        self.cycles += op.cost
        thread.pos += 1

    def _do_barrier(self, thread: _Thread, op: Op) -> None:
        arrived = self.barrier_arrived.setdefault(op.target, set())
        parties = self.workload.barriers.get(op.target, len(self.threads))
        if thread.tid not in arrived:
            arrived.add(thread.tid)
            if thread.txn is not None:
                thread.txn.arrivals.append(op.target)
        if len(arrived) >= parties:
            arrived.clear()
            # Release everyone blocked on this barrier (including self).
            for other in self.threads:
                if other.blocked == f"barrier {op.target}":
                    other.blocked = ""
                    other.pos += 1
                    self.cycles += 1
            thread.blocked = ""
            thread.pos += 1
            self.cycles += op.cost
        else:
            thread.blocked = f"barrier {op.target}"
            self.cycles += 1

    def _do_flag_wait(self, thread: _Thread, op: Op) -> None:
        """A flag wait is just a read in a loop — the monitor does not
        know it is synchronization unless the spin detector says so."""
        cfg = self.config
        spinning = thread.spin_counts.get(op.target, 0) >= cfg.spin_threshold
        if cfg.resolution is Resolution.SYNC_AWARE and spinning:
            # Detected spin: read non-transactionally (commit first so the
            # flag leaves our read set and the setter can make progress).
            if thread.txn is not None:
                self._commit(thread)
            value = self.memory.get(op.target, 0)
            self.cycles += op.cost
            self._track_spin(thread, op.target, value)
            if value != 0:
                thread.pos += 1
                thread.spin_counts[op.target] = 0
            return
        holder = self._conflicts(thread, op.target, is_write=False)
        if holder is not None and not self._resolve(thread, holder, op.target):
            return
        txn = self._ensure_txn(thread)
        txn.reads.add(op.target)
        value = txn.writes.get(op.target, self.memory.get(op.target, 0))
        self._track_spin(thread, op.target, value)
        txn.ops_done += 1
        self.cycles += op.cost + cfg.metadata_cycles
        if value != 0:
            thread.pos += 1
            thread.spin_counts[op.target] = 0
        if txn.ops_done >= cfg.txn_ops and value != 0:
            self._commit(thread)
        # NOTE (naive policy): while the flag stays 0 the transaction
        # keeps the flag in its read set and never reaches a commit
        # point that releases it — the livelock of §2.2.
