"""Operation-level workload model for the TM monitoring study (§2.2,
citing [9] "Synchronization Aware Conflict Resolution for Runtime
Monitoring Using Transactional Memory").

The problem [9] studies is orthogonal to instruction semantics: when a
DBT tool monitors a *parallel* application, every application write and
its shadow-metadata write must be atomic, or the metadata races.  TM
supplies that atomicity — but synchronization idioms (locks, barriers,
flag spins) executing *inside* transactions livelock under naive
conflict resolution.

We therefore model threads as streams of synchronization-level
operations rather than mini-ISA instructions (DESIGN.md documents this
substitution): READ/WRITE on shared cells (each implicitly paired with
its metadata update), LOCAL compute, and the three synchronization
idioms from the paper — LOCK/UNLOCK, BARRIER, FLAG_SET/FLAG_WAIT.
:mod:`repro.workloads.splash_like` generates SPLASH-style kernels in
this vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    READ = "read"  # shared read (+ metadata read)
    WRITE = "write"  # shared write (+ metadata write)
    LOCAL = "local"  # private compute, no shared accesses
    LOCK = "lock"
    UNLOCK = "unlock"
    BARRIER = "barrier"
    FLAG_SET = "flag_set"  # write 1 to a flag cell
    FLAG_WAIT = "flag_wait"  # spin until the flag cell is non-zero


SYNC_KINDS = frozenset(
    {OpKind.LOCK, OpKind.UNLOCK, OpKind.BARRIER, OpKind.FLAG_SET, OpKind.FLAG_WAIT}
)


@dataclass(frozen=True)
class Op:
    kind: OpKind
    #: cell address / lock id / barrier id / flag address.
    target: int = 0
    #: LOCAL compute amount (cycles).
    cost: int = 1

    @classmethod
    def read(cls, addr: int) -> "Op":
        return cls(OpKind.READ, addr)

    @classmethod
    def write(cls, addr: int) -> "Op":
        return cls(OpKind.WRITE, addr)

    @classmethod
    def local(cls, cost: int = 1) -> "Op":
        return cls(OpKind.LOCAL, 0, cost)

    @classmethod
    def lock(cls, lock_id: int) -> "Op":
        return cls(OpKind.LOCK, lock_id)

    @classmethod
    def unlock(cls, lock_id: int) -> "Op":
        return cls(OpKind.UNLOCK, lock_id)

    @classmethod
    def barrier(cls, barrier_id: int) -> "Op":
        return cls(OpKind.BARRIER, barrier_id)

    @classmethod
    def flag_set(cls, addr: int) -> "Op":
        return cls(OpKind.FLAG_SET, addr)

    @classmethod
    def flag_wait(cls, addr: int) -> "Op":
        return cls(OpKind.FLAG_WAIT, addr)


@dataclass
class ThreadProgram:
    """One thread's operation stream."""

    tid: int
    ops: list[Op]


@dataclass
class ParallelWorkload:
    """A named multi-thread op-stream kernel."""

    name: str
    threads: list[ThreadProgram]
    #: barrier id -> party count.
    barriers: dict[int, int]

    @property
    def total_ops(self) -> int:
        return sum(len(t.ops) for t in self.threads)
