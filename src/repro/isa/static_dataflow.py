"""Static def-use inference inside basic blocks and along traces.

ONTRAC's generic optimizations 1 and 2 rest on the observation that a
register-to-register dependence whose definition and use sit in the same
basic block (or the same frequently-executed multi-block *trace*) can be
recovered by statically examining the binary, so the tracer need not
spend buffer bytes on it.  This module computes exactly that
information:

* :func:`block_dataflow` — for one basic block, which register uses are
  satisfied by in-block definitions (static) and which come from live-in
  state (dynamic);
* :func:`path_dataflow` — the same along an arbitrary block sequence,
  used for trace/super-block inference.

Calls conservatively kill all register definitions (the callee may write
any register in this ISA's convention), and memory dependences are never
considered static (addresses are unknown until runtime).  PUSH/POP
implicitly read and write ``sp``, which the analysis models so that
chains through the stack pointer stay static.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import CFG
from .instructions import SP, Instruction, Opcode


def _effective_uses(instr: Instruction) -> tuple[int, ...]:
    uses = instr.uses
    if instr.opcode in (Opcode.PUSH, Opcode.POP):
        uses = uses + (SP,)
    return uses


def _effective_defs(instr: Instruction) -> tuple[int, ...]:
    defs = instr.defs
    if instr.opcode in (Opcode.PUSH, Opcode.POP):
        defs = defs + (SP,)
    return defs


@dataclass
class Dataflow:
    """Result of static inference over an instruction sequence.

    Indices are positions within the analyzed sequence, and
    ``instructions[i].index`` maps back to global program indices.
    """

    instructions: list[Instruction]
    #: position -> {register: defining position} for statically inferable deps.
    static_edges: dict[int, dict[int, int]] = field(default_factory=dict)
    #: position -> registers whose value is live-in (dependence must be
    #: recorded dynamically).
    live_in_uses: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def static_dep_count(self) -> int:
        return sum(len(v) for v in self.static_edges.values())

    @property
    def dynamic_use_count(self) -> int:
        return sum(len(v) for v in self.live_in_uses.values())

    def is_static_use(self, position: int, reg: int) -> bool:
        return reg in self.static_edges.get(position, ())


def _analyze(instructions: list[Instruction]) -> Dataflow:
    flow = Dataflow(instructions=instructions)
    last_def: dict[int, int] = {}
    for pos, instr in enumerate(instructions):
        static: dict[int, int] = {}
        dynamic: list[int] = []
        for reg in _effective_uses(instr):
            if reg in last_def:
                static[reg] = last_def[reg]
            else:
                dynamic.append(reg)
        if static:
            flow.static_edges[pos] = static
        if dynamic:
            flow.live_in_uses[pos] = tuple(dynamic)
        if instr.opcode in (Opcode.CALL, Opcode.ICALL):
            # The callee may write any register: kill everything.
            last_def.clear()
            continue
        for reg in _effective_defs(instr):
            last_def[reg] = pos
    return flow


def block_dataflow(cfg: CFG, bid: int) -> Dataflow:
    """Static def-use structure of basic block ``bid``."""
    return _analyze(cfg.instructions(bid))


def path_dataflow(cfg: CFG, bids: list[int]) -> Dataflow:
    """Static def-use structure along a block path (trace).

    The path must be connected (each block a CFG successor of the
    previous one); a dependence is static on the trace iff the trace is
    actually followed at runtime, which the tracer checks before relying
    on this result.
    """
    for a, b in zip(bids, bids[1:]):
        if b not in cfg.blocks[a].succs:
            raise ValueError(f"blocks {a} -> {b} are not connected in the CFG")
    instrs: list[Instruction] = []
    for bid in bids:
        instrs.extend(cfg.instructions(bid))
    return _analyze(instrs)
