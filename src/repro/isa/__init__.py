"""Mini-ISA substrate: instructions, programs, assembler, CFG, dominance.

See :mod:`repro.isa.instructions` for the instruction set and DESIGN.md
for why a from-scratch ISA stands in for the paper's x86/DBT substrate.
"""

from .assembler import AssemblyError, assemble
from .builder import FuncRef, FunctionBuilder, Label, ProgramBuilder
from .cfg import CFG, EXIT_BLOCK, BasicBlock, build_cfgs
from .dominance import Dominance, branch_ipdom_table
from .instructions import (
    MNEMONICS,
    NUM_REGS,
    OP_TABLE,
    PURE_ALU_OPS,
    SINK_OPS,
    SOURCE_OPS,
    SP,
    Instruction,
    Opcode,
    Operand,
    OpSpec,
    reg_name,
)
from .program import Function, Program, ProgramError, link
from .static_dataflow import Dataflow, block_dataflow, path_dataflow

__all__ = [
    "AssemblyError",
    "assemble",
    "FuncRef",
    "FunctionBuilder",
    "Label",
    "ProgramBuilder",
    "CFG",
    "EXIT_BLOCK",
    "BasicBlock",
    "build_cfgs",
    "Dominance",
    "branch_ipdom_table",
    "MNEMONICS",
    "NUM_REGS",
    "OP_TABLE",
    "PURE_ALU_OPS",
    "SINK_OPS",
    "SOURCE_OPS",
    "SP",
    "Instruction",
    "Opcode",
    "Operand",
    "OpSpec",
    "reg_name",
    "Function",
    "Program",
    "ProgramError",
    "link",
    "Dataflow",
    "block_dataflow",
    "path_dataflow",
]
