"""Instruction set of the mini-ISA used as the DIFT substrate.

The paper instruments x86 binaries through dynamic binary translation.
Python has no such ecosystem, so this package defines a small
register-based ISA with the properties DIFT cares about:

* explicit register def/use structure,
* flat byte-equivalent addressable memory with loads/stores,
* direct and *indirect* control transfer (the attack surface),
* heap allocation (for heap-overflow workloads),
* input/output channels (taint sources and sinks),
* thread spawn/join and synchronization (locks, barriers).

Instructions are fixed-shape tuples of integer operands after assembly;
:class:`OpSpec` describes, per opcode, which operands are register
definitions, register uses, immediates, code labels or function
references.  All static analyses (CFG construction, intra-block def-use
inference, control dependence) and the interpreter dispatch off this
table, so adding an opcode means adding exactly one row here plus one
handler in :mod:`repro.vm.machine`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.IntEnum):
    """Opcodes of the mini-ISA, grouped by semantic class."""

    # ALU, three-register form: dst, src1, src2
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    MOD = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    SEQ = enum.auto()  # dst = src1 == src2
    SNE = enum.auto()
    SLT = enum.auto()
    SLE = enum.auto()
    SGT = enum.auto()
    SGE = enum.auto()
    # ALU, register-immediate form: dst, src, imm
    ADDI = enum.auto()
    MULI = enum.auto()
    # Unary / moves
    NOT = enum.auto()  # dst, src (logical not: 1 if src == 0 else 0)
    NEG = enum.auto()  # dst, src
    MOV = enum.auto()  # dst, src
    LI = enum.auto()  # dst, imm
    # Memory: LOAD dst, base, offset ; STORE src, base, offset
    LOAD = enum.auto()
    STORE = enum.auto()
    PUSH = enum.auto()  # src         (sp -= 1 ; M[sp] = src)
    POP = enum.auto()  # dst          (dst = M[sp] ; sp += 1)
    # Heap
    ALLOC = enum.auto()  # dst, src   (dst = base of new block of src cells)
    FREE = enum.auto()  # src
    # Control flow
    JMP = enum.auto()  # label
    BR = enum.auto()  # src, label   (branch if src != 0)
    BRZ = enum.auto()  # src, label  (branch if src == 0)
    CALL = enum.auto()  # func
    ICALL = enum.auto()  # src        (indirect call through function id)
    RET = enum.auto()
    HALT = enum.auto()
    NOP = enum.auto()
    # I/O
    IN = enum.auto()  # dst, imm(channel)
    OUT = enum.auto()  # src, imm(channel)
    # Threads & synchronization
    SPAWN = enum.auto()  # dst(tid), func, src(arg)
    JOIN = enum.auto()  # src(tid)
    LOCK = enum.auto()  # src(lock id)
    UNLOCK = enum.auto()  # src(lock id)
    BARINIT = enum.auto()  # src(barrier id), src(party count)
    BARWAIT = enum.auto()  # src(barrier id)
    # Diagnostics
    ASSERT = enum.auto()  # src (trap with ProgramFailure if src == 0)
    FAIL = enum.auto()  # imm (unconditional failure with code imm)


class Operand(enum.Enum):
    """Operand kinds, used by the assembler and static analyses."""

    REG_DST = "reg_dst"  # register written by the instruction
    REG_SRC = "reg_src"  # register read by the instruction
    IMM = "imm"  # integer immediate
    LABEL = "label"  # code label -> global instruction index
    FUNC = "func"  # function reference -> function id


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    mnemonic: str
    operands: tuple[Operand, ...]
    #: True for JMP/BR/BRZ/CALL/ICALL/RET/HALT/FAIL: ends a basic block.
    is_control: bool = False
    #: True when the instruction can fall through to the next one.
    falls_through: bool = True
    #: True for conditional branches (BR/BRZ).
    is_branch: bool = False
    #: True for memory reads / writes (LOAD/POP, STORE/PUSH).
    reads_memory: bool = False
    writes_memory: bool = False

    @property
    def def_positions(self) -> tuple[int, ...]:
        return tuple(i for i, k in enumerate(self.operands) if k is Operand.REG_DST)

    @property
    def use_positions(self) -> tuple[int, ...]:
        return tuple(i for i, k in enumerate(self.operands) if k is Operand.REG_SRC)


_R, _S, _I, _L, _F = (
    Operand.REG_DST,
    Operand.REG_SRC,
    Operand.IMM,
    Operand.LABEL,
    Operand.FUNC,
)

#: Per-opcode static description; single source of truth for the ISA shape.
OP_TABLE: dict[Opcode, OpSpec] = {
    Opcode.ADD: OpSpec("add", (_R, _S, _S)),
    Opcode.SUB: OpSpec("sub", (_R, _S, _S)),
    Opcode.MUL: OpSpec("mul", (_R, _S, _S)),
    Opcode.DIV: OpSpec("div", (_R, _S, _S)),
    Opcode.MOD: OpSpec("mod", (_R, _S, _S)),
    Opcode.AND: OpSpec("and", (_R, _S, _S)),
    Opcode.OR: OpSpec("or", (_R, _S, _S)),
    Opcode.XOR: OpSpec("xor", (_R, _S, _S)),
    Opcode.SHL: OpSpec("shl", (_R, _S, _S)),
    Opcode.SHR: OpSpec("shr", (_R, _S, _S)),
    Opcode.SEQ: OpSpec("seq", (_R, _S, _S)),
    Opcode.SNE: OpSpec("sne", (_R, _S, _S)),
    Opcode.SLT: OpSpec("slt", (_R, _S, _S)),
    Opcode.SLE: OpSpec("sle", (_R, _S, _S)),
    Opcode.SGT: OpSpec("sgt", (_R, _S, _S)),
    Opcode.SGE: OpSpec("sge", (_R, _S, _S)),
    Opcode.ADDI: OpSpec("addi", (_R, _S, _I)),
    Opcode.MULI: OpSpec("muli", (_R, _S, _I)),
    Opcode.NOT: OpSpec("not", (_R, _S)),
    Opcode.NEG: OpSpec("neg", (_R, _S)),
    Opcode.MOV: OpSpec("mov", (_R, _S)),
    Opcode.LI: OpSpec("li", (_R, _I)),
    Opcode.LOAD: OpSpec("load", (_R, _S, _I), reads_memory=True),
    Opcode.STORE: OpSpec("store", (_S, _S, _I), writes_memory=True),
    Opcode.PUSH: OpSpec("push", (_S,), writes_memory=True),
    Opcode.POP: OpSpec("pop", (_R,), reads_memory=True),
    Opcode.ALLOC: OpSpec("alloc", (_R, _S)),
    Opcode.FREE: OpSpec("free", (_S,)),
    Opcode.JMP: OpSpec("jmp", (_L,), is_control=True, falls_through=False),
    Opcode.BR: OpSpec("br", (_S, _L), is_control=True, is_branch=True),
    Opcode.BRZ: OpSpec("brz", (_S, _L), is_control=True, is_branch=True),
    Opcode.CALL: OpSpec("call", (_F,), is_control=True),
    Opcode.ICALL: OpSpec("icall", (_S,), is_control=True),
    Opcode.RET: OpSpec("ret", (), is_control=True, falls_through=False),
    Opcode.HALT: OpSpec("halt", (), is_control=True, falls_through=False),
    Opcode.NOP: OpSpec("nop", ()),
    Opcode.IN: OpSpec("in", (_R, _I)),
    Opcode.OUT: OpSpec("out", (_S, _I)),
    Opcode.SPAWN: OpSpec("spawn", (_R, _F, _S)),
    Opcode.JOIN: OpSpec("join", (_S,)),
    Opcode.LOCK: OpSpec("lock", (_S,)),
    Opcode.UNLOCK: OpSpec("unlock", (_S,)),
    Opcode.BARINIT: OpSpec("barinit", (_S, _S)),
    Opcode.BARWAIT: OpSpec("barwait", (_S,)),
    Opcode.ASSERT: OpSpec("assert", (_S,)),
    Opcode.FAIL: OpSpec("fail", (_I,), is_control=True, falls_through=False),
}

#: mnemonic -> opcode, for the assembler.
MNEMONICS: dict[str, Opcode] = {spec.mnemonic: op for op, spec in OP_TABLE.items()}

#: Number of general-purpose registers.  ``sp`` is register 31.
NUM_REGS = 32
SP = 31

_REG_NAMES = {i: f"r{i}" for i in range(NUM_REGS)}
_REG_NAMES[SP] = "sp"


def reg_name(reg: int) -> str:
    """Human-readable register name (``r0`` ... ``r30``, ``sp``)."""
    return _REG_NAMES.get(reg, f"r{reg}")


@dataclass
class Instruction:
    """One assembled instruction.

    ``operands`` are integers whose interpretation follows
    ``OP_TABLE[opcode].operands``: register numbers, immediates, global
    instruction indices (labels) or function ids.
    """

    opcode: Opcode
    operands: tuple[int, ...]
    #: global index in ``Program.code``; assigned at link time.
    index: int = -1
    #: name of the owning function; assigned at link time.
    function: str = ""
    #: optional source position (line in .asm, or MiniC line) for reports.
    source: str = ""
    #: labels attached to this instruction (for disassembly only).
    labels: tuple[str, ...] = field(default=())

    @property
    def spec(self) -> OpSpec:
        return OP_TABLE[self.opcode]

    @property
    def defs(self) -> tuple[int, ...]:
        """Registers written (explicit only; PUSH/POP touch sp implicitly)."""
        ops = self.operands
        return tuple(ops[i] for i in self.spec.def_positions)

    @property
    def uses(self) -> tuple[int, ...]:
        """Registers read (explicit only)."""
        ops = self.operands
        return tuple(ops[i] for i in self.spec.use_positions)

    def format(self) -> str:
        """Disassemble to assembler syntax."""
        spec = self.spec
        parts = []
        for kind, value in zip(spec.operands, self.operands):
            if kind in (Operand.REG_DST, Operand.REG_SRC):
                parts.append(reg_name(value))
            elif kind is Operand.LABEL:
                parts.append(f"@{value}")
            elif kind is Operand.FUNC:
                parts.append(f"fn#{value}")
            else:
                parts.append(str(value))
        body = f"{spec.mnemonic} {', '.join(parts)}".rstrip()
        return body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.index}:{self.function} {self.format()}>"


#: Opcodes whose result depends only on their register/immediate inputs.
#: Used by ONTRAC's static intra-block inference: dependences between
#: these can be recovered from the binary without dynamic records.
PURE_ALU_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SEQ,
        Opcode.SNE,
        Opcode.SLT,
        Opcode.SLE,
        Opcode.SGT,
        Opcode.SGE,
        Opcode.ADDI,
        Opcode.MULI,
        Opcode.NOT,
        Opcode.NEG,
        Opcode.MOV,
        Opcode.LI,
    }
)

#: Opcodes that act as taint *sources* (read external input).
SOURCE_OPS = frozenset({Opcode.IN})

#: Opcodes that act as default taint *sinks* for attack detection.
SINK_OPS = frozenset({Opcode.ICALL, Opcode.OUT})
