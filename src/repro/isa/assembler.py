"""Two-pass assembler for the mini-ISA text format.

Syntax::

    ; comment (also '#')
    .func main 0          ; name and parameter count
        li   r0, 10
        li   r1, fn:worker ; function-id immediate (for icall / spawn setup)
    loop:
        addi r0, r0, -1
        br   r0, loop
        halt
    .end

* Registers: ``r0`` .. ``r31``; ``sp`` is an alias for ``r31``.
* Immediates: decimal (optionally negative), ``0x...`` hex, ``'c'``
  character literals, or ``fn:<name>`` to reference a function id.
* Labels are function-local.
* Operand order follows :data:`repro.isa.instructions.OP_TABLE`.

Function ids are assigned in declaration order, which the ``fn:`` form
relies on; forward references are allowed.
"""

from __future__ import annotations

import re

from .instructions import MNEMONICS, NUM_REGS, OP_TABLE, SP, Instruction, Operand
from .program import Program, ProgramError, link


class AssemblyError(ProgramError):
    """Raised with file/line context on malformed assembly."""

    def __init__(self, message: str, line_no: int | None = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*)\s*:\s*(.*)$")
_FUNC_RE = re.compile(r"^\.func\s+([A-Za-z_]\w*)(?:\s+(\d+))?\s*$")
_REG_RE = re.compile(r"^r(\d+)$")


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_register(token: str, line_no: int) -> int:
    if token == "sp":
        return SP
    m = _REG_RE.match(token)
    if not m:
        raise AssemblyError(f"expected register, got {token!r}", line_no)
    reg = int(m.group(1))
    if not 0 <= reg < NUM_REGS:
        raise AssemblyError(f"register out of range: {token!r}", line_no)
    return reg


def _parse_immediate(token: str, func_ids: dict[str, int], line_no: int) -> int:
    if token.startswith("fn:"):
        name = token[3:]
        if name not in func_ids:
            raise AssemblyError(f"unknown function in immediate: {name!r}", line_no)
        return func_ids[name]
    if len(token) == 3 and token[0] == token[2] == "'":
        return ord(token[1])
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected immediate, got {token!r}", line_no) from None


def assemble(source: str, entry: str = "main") -> Program:
    """Assemble ``source`` into a linked, validated :class:`Program`."""
    # Pass 1: function declaration order -> ids (enables forward fn: refs).
    func_ids: dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), 1):
        line = _strip_comment(raw)
        m = _FUNC_RE.match(line)
        if m:
            name = m.group(1)
            if name in func_ids:
                raise AssemblyError(f"duplicate function {name!r}", line_no)
            func_ids[name] = len(func_ids)

    # Pass 2: assemble each function body with local label resolution.
    functions: list[tuple[str, int, list[Instruction]]] = []
    current: list[Instruction] | None = None
    current_name = ""
    current_params = 0
    labels: dict[str, int] = {}
    pending_labels: list[str] = []
    fixups: list[tuple[Instruction, int, str, int]] = []  # instr, operand pos, label, line

    def finish_function(line_no: int) -> None:
        nonlocal current
        assert current is not None
        for instr, pos, label, at_line in fixups:
            if label not in labels:
                raise AssemblyError(f"undefined label {label!r} in {current_name}", at_line)
            ops = list(instr.operands)
            ops[pos] = labels[label]
            instr.operands = tuple(ops)
        if pending_labels:
            raise AssemblyError(
                f"label(s) {pending_labels} at end of function {current_name}", line_no
            )
        functions.append((current_name, current_params, current))
        current = None

    for line_no, raw in enumerate(source.splitlines(), 1):
        line = _strip_comment(raw)
        if not line:
            continue
        m = _FUNC_RE.match(line)
        if m:
            if current is not None:
                raise AssemblyError("nested .func", line_no)
            current = []
            current_name = m.group(1)
            current_params = int(m.group(2) or 0)
            labels = {}
            pending_labels = []
            fixups = []
            continue
        if line == ".end":
            if current is None:
                raise AssemblyError(".end outside function", line_no)
            finish_function(line_no)
            continue
        if current is None:
            raise AssemblyError(f"code outside .func: {line!r}", line_no)

        m = _LABEL_RE.match(line)
        while m:
            label = m.group(1)
            if label in labels or label in pending_labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no)
            pending_labels.append(label)
            line = m.group(2).strip()
            m = _LABEL_RE.match(line) if line else None
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in MNEMONICS:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no)
        opcode = MNEMONICS[mnemonic]
        spec = OP_TABLE[opcode]
        tokens = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
        if len(tokens) != len(spec.operands):
            raise AssemblyError(
                f"{mnemonic} expects {len(spec.operands)} operand(s), got {len(tokens)}",
                line_no,
            )
        operands: list[int] = []
        label_fixups: list[tuple[int, str]] = []
        for pos, (kind, token) in enumerate(zip(spec.operands, tokens)):
            if kind in (Operand.REG_DST, Operand.REG_SRC):
                operands.append(_parse_register(token, line_no))
            elif kind is Operand.IMM:
                operands.append(_parse_immediate(token, func_ids, line_no))
            elif kind is Operand.FUNC:
                if token not in func_ids:
                    raise AssemblyError(f"unknown function {token!r}", line_no)
                operands.append(func_ids[token])
            elif kind is Operand.LABEL:
                if token in labels:
                    operands.append(labels[token])
                else:
                    operands.append(-1)
                    label_fixups.append((pos, token))
            else:  # pragma: no cover - exhaustive
                raise AssemblyError(f"unhandled operand kind {kind}", line_no)

        instr = Instruction(
            opcode=opcode,
            operands=tuple(operands),
            source=f"line {line_no}",
            labels=tuple(pending_labels),
        )
        for label in pending_labels:
            labels[label] = len(current)
        pending_labels = []
        for pos, label in label_fixups:
            fixups.append((instr, pos, label, line_no))
        current.append(instr)

    if current is not None:
        raise AssemblyError(f"function {current_name!r} missing .end", len(source.splitlines()))
    if not functions:
        raise AssemblyError("no functions in source")
    return link(functions, entry=entry)
