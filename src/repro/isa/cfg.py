"""Control-flow graphs over mini-ISA functions.

Basic blocks are maximal single-entry/single-exit instruction ranges.
ONTRAC's first optimization ("eliminate storage of dependences within a
basic block that can be directly inferred by static examination of the
binary") is defined in terms of these blocks, and the dynamic
control-dependence detector needs the block-level post-dominator tree,
so the CFG is a load-bearing substrate, not just a pretty printer.

CALL/ICALL instructions do *not* end a block here: intraprocedural
analyses treat calls as opaque fall-through instructions (as the paper's
binary-level analyses do), while the interprocedural effects are handled
dynamically by the tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction, Opcode, Operand
from .program import Function, Program

#: Virtual exit block id used by post-dominator analysis.
EXIT_BLOCK = -1


@dataclass
class BasicBlock:
    """Instructions ``[start, end)`` (global indices) with CFG edges."""

    bid: int
    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


class CFG:
    """Intraprocedural control-flow graph of one function."""

    def __init__(self, program: Program, function: Function):
        self.program = program
        self.function = function
        self.blocks: list[BasicBlock] = []
        #: global instruction index -> block id.
        self.block_of: dict[int, int] = {}
        self._build()

    # -- construction -------------------------------------------------
    def _leaders(self) -> list[int]:
        fn = self.function
        code = self.program.code
        leaders = {fn.entry}
        for idx in range(fn.entry, fn.end):
            instr = code[idx]
            spec = instr.spec
            if instr.opcode in (Opcode.CALL, Opcode.ICALL):
                continue  # treated as fall-through intraprocedurally
            if spec.is_control:
                for kind, value in zip(spec.operands, instr.operands):
                    if kind is Operand.LABEL and value in fn:
                        leaders.add(value)
                if idx + 1 < fn.end:
                    leaders.add(idx + 1)
        return sorted(leaders)

    def _build(self) -> None:
        fn = self.function
        code = self.program.code
        leaders = self._leaders()
        bounds = leaders + [fn.end]
        for bid, (start, end) in enumerate(zip(bounds, bounds[1:])):
            block = BasicBlock(bid=bid, start=start, end=end)
            self.blocks.append(block)
            for idx in range(start, end):
                self.block_of[idx] = bid
        for block in self.blocks:
            last = code[block.end - 1]
            spec = last.spec
            targets: list[int] = []
            if last.opcode not in (Opcode.CALL, Opcode.ICALL):
                for kind, value in zip(spec.operands, last.operands):
                    if kind is Operand.LABEL and value in fn:
                        targets.append(self.block_of[value])
            falls = spec.falls_through or last.opcode in (Opcode.CALL, Opcode.ICALL)
            if falls and block.end < fn.end:
                targets.append(self.block_of[block.end])
            for t in targets:
                if t not in block.succs:
                    block.succs.append(t)
                    self.blocks[t].preds.append(block.bid)

    # -- queries ------------------------------------------------------
    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[0]

    def exit_blocks(self) -> list[int]:
        """Blocks ending in RET/HALT/FAIL (or with no successors)."""
        outs = []
        code = self.program.code
        for block in self.blocks:
            last = code[block.end - 1]
            if last.opcode in (Opcode.RET, Opcode.HALT, Opcode.FAIL) or not block.succs:
                outs.append(block.bid)
        return outs

    def instructions(self, bid: int) -> list[Instruction]:
        block = self.blocks[bid]
        return self.program.code[block.start : block.end]

    def branch_instruction(self, bid: int) -> Instruction | None:
        """The conditional branch terminating block ``bid``, if any."""
        last = self.program.code[self.blocks[bid].end - 1]
        return last if last.spec.is_branch else None

    def to_dot(self) -> str:  # pragma: no cover - debugging aid
        lines = [f'digraph "{self.function.name}" {{']
        for block in self.blocks:
            body = "\\l".join(i.format() for i in self.instructions(block.bid))
            lines.append(f'  b{block.bid} [shape=box,label="B{block.bid}\\l{body}\\l"];')
            for s in block.succs:
                lines.append(f"  b{block.bid} -> b{s};")
        lines.append("}")
        return "\n".join(lines)


def build_cfgs(program: Program) -> dict[str, CFG]:
    """CFG for every function in ``program``."""
    return {fn.name: CFG(program, fn) for fn in program.functions_by_id}
