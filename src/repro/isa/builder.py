"""Programmatic IR builder.

The MiniC code generator and the synthetic workload generators both
construct programs through this builder rather than emitting assembly
text, which keeps label management out of their way::

    b = ProgramBuilder()
    f = b.function("main")
    loop = f.label("loop")
    f.emit(Opcode.LI, 0, 10)
    f.place(loop)
    f.emit(Opcode.ADDI, 0, 0, -1)
    f.emit(Opcode.BR, 0, loop)
    f.emit(Opcode.HALT)
    program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import OP_TABLE, Instruction, Opcode, Operand
from .program import Program, ProgramError, link


@dataclass(frozen=True)
class Label:
    """A forward-referenceable code position within one function."""

    name: str
    lid: int


@dataclass(frozen=True)
class FuncRef:
    """A reference to a (possibly not yet defined) function."""

    name: str


@dataclass
class FunctionBuilder:
    name: str
    num_params: int
    parent: "ProgramBuilder"
    instructions: list[Instruction] = field(default_factory=list)
    _labels: dict[int, int] = field(default_factory=dict)  # lid -> local index
    _label_names: dict[int, str] = field(default_factory=dict)
    _next_label: int = 0
    _pending: list[str] = field(default_factory=list)

    def label(self, name: str = "") -> Label:
        """Create a fresh label (not yet placed)."""
        lid = self._next_label
        self._next_label += 1
        label = Label(name or f"L{lid}", lid)
        self._label_names[lid] = label.name
        return label

    def place(self, label: Label) -> None:
        """Attach ``label`` to the next emitted instruction."""
        if label.lid in self._labels:
            raise ProgramError(f"label {label.name} placed twice in {self.name}")
        self._labels[label.lid] = len(self.instructions)
        self._pending.append(label.name)

    def here(self) -> Label:
        """Create and place a label at the current position."""
        label = self.label()
        self.place(label)
        return label

    def emit(self, opcode: Opcode, *operands, source: str = "") -> Instruction:
        """Append an instruction; label/function operands may be
        :class:`Label` / :class:`FuncRef` / ``str`` placeholders."""
        spec = OP_TABLE[opcode]
        if len(operands) != len(spec.operands):
            raise ProgramError(
                f"{spec.mnemonic} expects {len(spec.operands)} operands, got {len(operands)}"
            )
        instr = Instruction(
            opcode=opcode,
            operands=tuple(
                op if isinstance(op, int) else -1 for op in operands
            ),
            source=source,
            labels=tuple(self._pending),
        )
        self._pending = []
        # Remember placeholders for the resolution pass.
        for pos, (kind, op) in enumerate(zip(spec.operands, operands)):
            if isinstance(op, Label):
                if kind is not Operand.LABEL:
                    raise ProgramError(f"operand {pos} of {spec.mnemonic} is not a label slot")
                self.parent._label_fixups.append((self, instr, pos, op))
            elif isinstance(op, (FuncRef, str)) and kind in (Operand.FUNC, Operand.IMM):
                name = op.name if isinstance(op, FuncRef) else op
                self.parent._func_fixups.append((instr, pos, name))
            elif not isinstance(op, int):
                raise ProgramError(
                    f"bad operand {op!r} at position {pos} of {spec.mnemonic}"
                )
        self.instructions.append(instr)
        return instr

    def local_index(self, label: Label) -> int:
        try:
            return self._labels[label.lid]
        except KeyError:
            raise ProgramError(f"label {label.name} never placed in {self.name}") from None


class ProgramBuilder:
    """Builds a multi-function :class:`Program`."""

    def __init__(self) -> None:
        self._functions: list[FunctionBuilder] = []
        self._by_name: dict[str, FunctionBuilder] = {}
        self._label_fixups: list[tuple[FunctionBuilder, Instruction, int, Label]] = []
        self._func_fixups: list[tuple[Instruction, int, str]] = []

    def function(self, name: str, num_params: int = 0) -> FunctionBuilder:
        if name in self._by_name:
            raise ProgramError(f"duplicate function {name!r}")
        fb = FunctionBuilder(name=name, num_params=num_params, parent=self)
        self._functions.append(fb)
        self._by_name[name] = fb
        return fb

    def func_id(self, name: str) -> int:
        """Dense id a function will receive (declaration order)."""
        for fid, fb in enumerate(self._functions):
            if fb.name == name:
                return fid
        raise ProgramError(f"unknown function {name!r}")

    def build(self, entry: str = "main") -> Program:
        for fb, instr, pos, label in self._label_fixups:
            ops = list(instr.operands)
            ops[pos] = fb.local_index(label)
            instr.operands = tuple(ops)
        for instr, pos, name in self._func_fixups:
            ops = list(instr.operands)
            ops[pos] = self.func_id(name)
            instr.operands = tuple(ops)
        self._label_fixups = []
        self._func_fixups = []
        return link(
            [(fb.name, fb.num_params, fb.instructions) for fb in self._functions],
            entry=entry,
        )
