"""Dominator / post-dominator analysis and static control dependence.

Post-dominance drives two pieces of the reproduction:

* the **online dynamic control dependence** algorithm (Xin & Zhang,
  ISSTA'07, cited as [11]) keeps a stack of open branch regions keyed by
  each branch's immediate post-dominator;
* **relevant slicing** (potential dependences) and the predicate
  switching machinery for execution-omission errors both reason about
  which statements a predicate statically controls.

The implementation is the classic Cooper-Harvey-Kennedy iterative
dominator algorithm run on the (reversed) CFG with a virtual exit node
joining all RET/HALT/FAIL blocks, which also regularizes functions with
multiple exits or infinite loops.
"""

from __future__ import annotations

from .cfg import CFG, EXIT_BLOCK


def _intersect(doms: dict[int, int], order: dict[int, int], b1: int, b2: int) -> int:
    while b1 != b2:
        while order[b1] < order[b2]:
            b1 = doms[b1]
        while order[b2] < order[b1]:
            b2 = doms[b2]
    return b1


def _compute_idoms(
    nodes: list[int], entry: int, preds: dict[int, list[int]], succs: dict[int, list[int]]
) -> dict[int, int]:
    """Immediate dominators via Cooper-Harvey-Kennedy on an explicit graph."""
    # Reverse post-order from entry.
    visited: set[int] = set()
    postorder: list[int] = []
    stack: list[tuple[int, int]] = [(entry, 0)]
    while stack:
        node, i = stack.pop()
        if i == 0:
            if node in visited:
                continue
            visited.add(node)
        children = succs.get(node, [])
        if i < len(children):
            stack.append((node, i + 1))
            child = children[i]
            if child not in visited:
                stack.append((child, 0))
        else:
            postorder.append(node)
    rpo = list(reversed(postorder))
    order = {b: i for i, b in enumerate(postorder)}  # higher = earlier in rpo

    idom: dict[int, int] = {entry: entry}
    changed = True
    while changed:
        changed = False
        for b in rpo:
            if b == entry:
                continue
            candidates = [p for p in preds.get(b, []) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = _intersect(idom, order, p, new_idom)
            if idom.get(b) != new_idom:
                idom[b] = new_idom
                changed = True
    return idom


class Dominance:
    """Dominator and post-dominator trees of a function's CFG."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        nodes = [b.bid for b in cfg.blocks]
        succs = {b.bid: list(b.succs) for b in cfg.blocks}
        preds = {b.bid: list(b.preds) for b in cfg.blocks}
        self.idom = _compute_idoms(nodes, cfg.entry_block.bid, preds, succs)

        # Post-dominators: reverse the graph and add a virtual exit that
        # all exit blocks (and, defensively, all nodes without successors)
        # flow into.
        exits = set(cfg.exit_blocks())
        rsuccs: dict[int, list[int]] = {EXIT_BLOCK: []}
        rpreds: dict[int, list[int]] = {EXIT_BLOCK: []}
        for b in cfg.blocks:
            rsuccs[b.bid] = list(b.preds)
            rpreds[b.bid] = list(b.succs)
        for e in exits:
            rsuccs[EXIT_BLOCK].append(e)
            rpreds[e] = rpreds.get(e, []) + [EXIT_BLOCK]
        self.ipdom = _compute_idoms(
            nodes + [EXIT_BLOCK], EXIT_BLOCK, preds=rpreds, succs=rsuccs
        )

    # -- queries ------------------------------------------------------
    def immediate_postdominator(self, bid: int) -> int:
        """ipdom of block ``bid`` (``EXIT_BLOCK`` for exit blocks)."""
        return self.ipdom.get(bid, EXIT_BLOCK)

    def postdominates(self, a: int, b: int) -> bool:
        """True if block ``a`` post-dominates block ``b``."""
        if a == b:
            return True
        node = b
        while node != EXIT_BLOCK:
            node = self.ipdom.get(node, EXIT_BLOCK)
            if node == a:
                return True
        return a == EXIT_BLOCK

    def dominates(self, a: int, b: int) -> bool:
        if a == b:
            return True
        entry = self.cfg.entry_block.bid
        node = b
        while node != entry:
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return False
            node = parent
            if node == a:
                return True
        return a == entry

    def control_dependence(self) -> dict[int, set[int]]:
        """Static block-level control dependences.

        Returns ``{block: {branch blocks it is control dependent on}}``
        using the Ferrante-Ottenstein-Warren formulation: B is control
        dependent on A iff A has a successor from which B is reachable
        only through paths post-dominated by B, and B does not
        post-dominate A.
        """
        deps: dict[int, set[int]] = {b.bid: set() for b in self.cfg.blocks}
        for a in self.cfg.blocks:
            if len(a.succs) < 2:
                continue
            for s in a.succs:
                # Walk the post-dominator tree from s up to (exclusive)
                # ipdom(a): every node on that path is control dep on a.
                stop = self.ipdom.get(a.bid, EXIT_BLOCK)
                node = s
                while node != stop and node != EXIT_BLOCK:
                    deps[node].add(a.bid)
                    node = self.ipdom.get(node, EXIT_BLOCK)
        return deps


def branch_ipdom_table(cfg: CFG, dom: Dominance) -> dict[int, int]:
    """For each *conditional branch instruction* (by global index), the
    global index of the first instruction of its immediate post-dominator
    block, or ``-1`` when the branch's region extends to function exit.

    This is the table the online dynamic control-dependence algorithm
    consults at runtime.
    """
    table: dict[int, int] = {}
    for block in cfg.blocks:
        br = cfg.branch_instruction(block.bid)
        if br is None:
            continue
        ip = dom.immediate_postdominator(block.bid)
        table[br.index] = cfg.blocks[ip].start if ip != EXIT_BLOCK else -1
    return table
