"""Program and function containers for the mini-ISA.

A :class:`Program` is a flat list of instructions (global indexing, so
the interpreter's ``pc`` is a single integer) partitioned into
:class:`Function` ranges.  Function ids are dense integers so that
indirect calls (``icall``) go through plain integer values — which is
exactly what makes overwritten function pointers a usable attack
primitive in the security workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction, Opcode


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, duplicate functions...)."""


@dataclass
class Function:
    """A contiguous range ``[entry, end)`` of ``Program.code``."""

    name: str
    fid: int
    entry: int
    end: int
    #: number of declared parameters (r0..r{n-1} on entry); informational.
    num_params: int = 0

    def __contains__(self, index: int) -> bool:
        return self.entry <= index < self.end

    @property
    def size(self) -> int:
        return self.end - self.entry


@dataclass
class Program:
    """An executable image: flat code plus function metadata."""

    code: list[Instruction] = field(default_factory=list)
    functions: dict[str, Function] = field(default_factory=dict)
    functions_by_id: list[Function] = field(default_factory=list)
    #: name of the entry function (``main`` by convention).
    entry: str = "main"

    def function_of(self, index: int) -> Function:
        """Function owning the instruction at global index ``index``."""
        instr = self.code[index]
        return self.functions[instr.function]

    def function_by_id(self, fid: int) -> Function | None:
        if 0 <= fid < len(self.functions_by_id):
            return self.functions_by_id[fid]
        return None

    @property
    def entry_function(self) -> Function:
        try:
            return self.functions[self.entry]
        except KeyError:
            raise ProgramError(f"program has no entry function {self.entry!r}") from None

    def disassemble(self) -> str:
        """Full textual disassembly (round-trips through the assembler)."""
        from .instructions import Operand, reg_name  # local import to avoid cycle

        lines: list[str] = []
        for fn in self.functions_by_id:
            # Name every branch/jump target in this function.
            targets: dict[int, str] = {}
            for idx in range(fn.entry, fn.end):
                instr = self.code[idx]
                for kind, value in zip(instr.spec.operands, instr.operands):
                    if kind is Operand.LABEL and value not in targets:
                        targets[value] = f"L{value}"
            lines.append(f".func {fn.name} {fn.num_params}")
            for idx in range(fn.entry, fn.end):
                instr = self.code[idx]
                if idx in targets:
                    lines.append(f"{targets[idx]}:")
                parts = []
                for kind, value in zip(instr.spec.operands, instr.operands):
                    if kind in (Operand.REG_DST, Operand.REG_SRC):
                        parts.append(reg_name(value))
                    elif kind is Operand.LABEL:
                        parts.append(targets[value])
                    elif kind is Operand.FUNC:
                        parts.append(self.functions_by_id[value].name)
                    else:
                        parts.append(str(value))
                lines.append(f"    {instr.spec.mnemonic} {', '.join(parts)}".rstrip())
            lines.append(".end")
        return "\n".join(lines) + "\n"

    def validate(self) -> None:
        """Structural sanity checks; raises :class:`ProgramError`."""
        if self.entry not in self.functions:
            raise ProgramError(f"missing entry function {self.entry!r}")
        n = len(self.code)
        for i, instr in enumerate(self.code):
            if instr.index != i:
                raise ProgramError(f"instruction {i} has stale index {instr.index}")
            spec = instr.spec
            if len(instr.operands) != len(spec.operands):
                raise ProgramError(f"instruction {i} ({spec.mnemonic}) has wrong arity")
            for kind, value in zip(spec.operands, instr.operands):
                if kind.value == "label" and not (0 <= value < n):
                    raise ProgramError(f"instruction {i} jumps out of program: {value}")
                if kind.value == "func" and self.function_by_id(value) is None:
                    raise ProgramError(f"instruction {i} references unknown function {value}")
        for fn in self.functions_by_id:
            if fn.entry >= fn.end:
                raise ProgramError(f"function {fn.name} is empty")
            last = self.code[fn.end - 1]
            if last.spec.falls_through:
                raise ProgramError(
                    f"function {fn.name} can fall off its end "
                    f"(last instruction {last.format()!r})"
                )

    def stats(self) -> dict[str, int]:
        """Static statistics used in reports."""
        branches = sum(1 for i in self.code if i.spec.is_branch)
        loads = sum(1 for i in self.code if i.opcode in (Opcode.LOAD, Opcode.POP))
        stores = sum(1 for i in self.code if i.opcode in (Opcode.STORE, Opcode.PUSH))
        return {
            "instructions": len(self.code),
            "functions": len(self.functions_by_id),
            "branches": branches,
            "loads": loads,
            "stores": stores,
        }


def link(functions: list[tuple[str, int, list[Instruction]]], entry: str = "main") -> Program:
    """Assemble per-function instruction lists into a :class:`Program`.

    ``functions`` holds ``(name, num_params, instructions)`` triples whose
    label operands are *function-relative*; linking rebases them to global
    indices and assigns dense function ids in declaration order.
    """
    program = Program(entry=entry)
    base = 0
    for fid, (name, num_params, instrs) in enumerate(functions):
        if name in program.functions:
            raise ProgramError(f"duplicate function {name!r}")
        fn = Function(name=name, fid=fid, entry=base, end=base + len(instrs), num_params=num_params)
        program.functions[name] = fn
        program.functions_by_id.append(fn)
        for offset, instr in enumerate(instrs):
            rebased = tuple(
                value + base if kind.value == "label" else value
                for kind, value in zip(instr.spec.operands, instr.operands)
            )
            instr.operands = rebased
            instr.index = base + offset
            instr.function = name
            program.code.append(instr)
        base += len(instrs)
    program.validate()
    return program
