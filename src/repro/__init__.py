"""repro — scalable dynamic information flow tracking and its applications.

A from-scratch reproduction of Gupta et al., IPDPS 2008.  The public
API re-exports the pieces a downstream user composes:

* :func:`repro.lang.compile_source` — MiniC -> runnable program,
* :class:`repro.vm.Machine` / :class:`repro.runner.ProgramRunner` — execution,
* :class:`repro.dift.DIFTEngine` with a taint policy — information flow,
* :class:`repro.ontrac.OnlineTracer` — online dependence tracing,
* :mod:`repro.slicing` — dynamic slicing over the traced DDG,
* the application layers under :mod:`repro.apps`.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from .lang import CompileError, CompiledProgram, compile_program, compile_source
from .runner import ProgramRunner
from .vm import (
    AttackDetected,
    Hook,
    InstrEvent,
    Intervention,
    Machine,
    ProgramFailure,
    RandomScheduler,
    RoundRobinScheduler,
    RunResult,
    RunStatus,
    ScriptedScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "CompileError",
    "CompiledProgram",
    "compile_program",
    "compile_source",
    "ProgramRunner",
    "AttackDetected",
    "Hook",
    "InstrEvent",
    "Intervention",
    "Machine",
    "ProgramFailure",
    "RandomScheduler",
    "RoundRobinScheduler",
    "RunResult",
    "RunStatus",
    "ScriptedScheduler",
    "__version__",
]
