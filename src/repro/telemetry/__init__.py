"""Unified telemetry: metrics registry, cycle-stamped spans, run reports.

The paper's contribution is quantitative (16 B/instr -> 0.8 B/instr,
540x -> 19x, 48% multicore overhead, 976M -> 3175 dependences); this
package gives every one of those figures a live, scriptable runtime
counterpart:

* :class:`MetricsRegistry` — counters / gauges / fixed-bucket
  histograms, shared by every subsystem, no-op when disabled.
* :class:`SpanTracer` — intervals stamped with deterministic cycle
  time, exported as Chrome trace-event JSON (open in Perfetto).
* :class:`RunReport` — machine-readable JSON summary of one run
  (status, instructions, base/overhead cycles, all metrics).

The :class:`Telemetry` facade bundles one registry + one tracer and is
what gets threaded through :class:`~repro.vm.machine.Machine`,
:class:`~repro.runner.ProgramRunner` and the CLI's ``--report`` /
``--trace`` options.  ``NULL_TELEMETRY`` is the disabled singleton;
like the VM's hookless native-run path, it makes instrumentation free
when nobody is looking and never touches the modeled cycle counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_S,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .obs import (
    FlightRecorder,
    MetricsWindow,
    WallSpanTracer,
    histogram_quantile,
    latency_summary,
    new_trace_id,
    render_prometheus,
    wall_now_us,
)
from .report import REPORT_SCHEMA, RunReport, build_report, validate_report
from .spans import NULL_TRACER, Span, SpanTracer, validate_chrome_trace


@dataclass
class Telemetry:
    """One registry + one tracer, threaded through a run."""

    registry: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    tracer: SpanTracer = field(default_factory=lambda: NULL_TRACER)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.tracer.enabled

    @classmethod
    def on(cls) -> "Telemetry":
        """A fresh, enabled telemetry bundle."""
        return cls(registry=MetricsRegistry(enabled=True), tracer=SpanTracer(enabled=True))


#: Disabled singleton: shared no-op instruments, zero modeled cost.
NULL_TELEMETRY = Telemetry()

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_S",
    "NULL_REGISTRY",
    "Span",
    "SpanTracer",
    "NULL_TRACER",
    "WallSpanTracer",
    "FlightRecorder",
    "MetricsWindow",
    "histogram_quantile",
    "latency_summary",
    "new_trace_id",
    "render_prometheus",
    "wall_now_us",
    "validate_chrome_trace",
    "RunReport",
    "REPORT_SCHEMA",
    "build_report",
    "validate_report",
    "Telemetry",
    "NULL_TELEMETRY",
]
