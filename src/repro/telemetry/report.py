"""Machine-readable run reports.

One :class:`RunReport` summarizes one tool run: final status, dynamic
instruction count, base/overhead/total cycles from the deterministic
cost model, and the full metrics snapshot of a
:class:`~repro.telemetry.metrics.MetricsRegistry`.  The JSON form is
what ``python -m repro <cmd> --report out.json`` writes and what the
benchmark suite records per experiment, so the paper's figures
(bytes/instr, slowdown, overhead %) all have a scriptable source.

Everything except ``wall_time_s`` is deterministic: two identical runs
serialize to byte-identical reports once the wall clock is excluded
(see :meth:`RunReport.to_dict` with ``deterministic=True``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Schema identifier; bump the suffix on breaking changes.
REPORT_SCHEMA = "repro.run_report/v1"

_REQUIRED_FIELDS = {
    "schema": str,
    "tool": str,
    "status": str,
    "instructions": int,
    "base_cycles": int,
    "overhead_cycles": int,
    "total_cycles": int,
    "slowdown": (int, float),
    "metrics": dict,
}


@dataclass
class RunReport:
    """Status + cycle accounting + metrics for one run."""

    tool: str
    status: str
    instructions: int
    base_cycles: int
    overhead_cycles: int
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    wall_time_s: float | None = None
    schema: str = REPORT_SCHEMA

    @property
    def total_cycles(self) -> int:
        return self.base_cycles + self.overhead_cycles

    @property
    def slowdown(self) -> float:
        if self.base_cycles == 0:
            return float("inf") if self.overhead_cycles > 0 else 1.0
        return self.total_cycles / self.base_cycles

    def to_dict(self, deterministic: bool = False) -> dict:
        out = {
            "schema": self.schema,
            "tool": self.tool,
            "status": self.status,
            "instructions": self.instructions,
            "base_cycles": self.base_cycles,
            "overhead_cycles": self.overhead_cycles,
            "total_cycles": self.total_cycles,
            # JSON has no Infinity; clamp the empty-base pathology.
            "slowdown": self.slowdown if self.base_cycles else 0.0,
            "metrics": self.metrics,
            "extra": self.extra,
        }
        if not deterministic:
            out["wall_time_s"] = self.wall_time_s
        return out

    def to_json(self, deterministic: bool = False) -> str:
        return json.dumps(self.to_dict(deterministic=deterministic), indent=1, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        validate_report(data)
        return cls(
            tool=data["tool"],
            status=data["status"],
            instructions=data["instructions"],
            base_cycles=data["base_cycles"],
            overhead_cycles=data["overhead_cycles"],
            metrics=data["metrics"],
            extra=data.get("extra", {}),
            wall_time_s=data.get("wall_time_s"),
            schema=data["schema"],
        )


def validate_report(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` matches the documented schema."""
    if not isinstance(data, dict):
        raise ValueError("report must be a JSON object")
    for name, types in _REQUIRED_FIELDS.items():
        if name not in data:
            raise ValueError(f"report missing required field {name!r}")
        if not isinstance(data[name], types) or isinstance(data[name], bool):
            raise ValueError(f"report field {name!r} has wrong type {type(data[name]).__name__}")
    if data["schema"] != REPORT_SCHEMA:
        raise ValueError(f"unknown report schema {data['schema']!r} (expected {REPORT_SCHEMA!r})")
    if data["total_cycles"] != data["base_cycles"] + data["overhead_cycles"]:
        raise ValueError("total_cycles != base_cycles + overhead_cycles")
    if data["instructions"] < 0 or data["base_cycles"] < 0 or data["overhead_cycles"] < 0:
        raise ValueError("cycle/instruction counts must be non-negative")


def build_report(tool: str, result, registry, extra: dict | None = None) -> RunReport:
    """Assemble a report from a :class:`~repro.vm.machine.RunResult` and
    a metrics registry (``result.cycles`` is the cost-model truth)."""
    return RunReport(
        tool=tool,
        status=result.status.value,
        instructions=result.instructions,
        base_cycles=result.cycles.base,
        overhead_cycles=result.cycles.overhead,
        metrics=registry.as_dict(),
        extra=dict(extra or {}),
    )
