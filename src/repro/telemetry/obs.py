"""Observability primitives: wall-clock spans, Prometheus text, rings.

The engine's :class:`~repro.telemetry.spans.SpanTracer` stamps spans in
deterministic *modeled cycles* — perfect inside one run, useless across
the analysis service's processes, whose hops (client socket write,
server handler, admission, pool dispatch, worker execute) happen on
different wall clocks.  This module adds the service tier's currency:

* :func:`wall_now_us` — one shared clock, epoch microseconds, readable
  from any process on the host so spans from client, server and worker
  land on a single comparable timeline.
* :class:`WallSpanTracer` — a :class:`SpanTracer` whose clock is wall
  time, whose event buffers are *bounded* (a daemon runs forever; a
  trace ring must not grow forever) and which can emit spans
  *retroactively* (:meth:`~WallSpanTracer.span_at`) — the service
  learns a stage's duration after the fact, across threads, so open
  span bookkeeping would be a liability.
* :func:`render_prometheus` / :func:`histogram_quantile` /
  :func:`latency_summary` — text exposition and derived p50/p95/p99 +
  shed rate over a live :class:`~repro.telemetry.metrics.MetricsRegistry`.
* :class:`FlightRecorder` — a fixed-size ring of structured events
  (admission verdicts, dispatch/steal decisions, worker lifecycle),
  dumped to a JSON artifact when something dies.  The DIFT-coprocessor
  line of work consumes a compact out-of-band event stream for exactly
  this reason: when the main path crashes, the last N events are the
  story.
* :class:`MetricsWindow` — a bounded in-memory time series of registry
  snapshots, the ``repro stats`` sparkline source.

Everything here is host-side observability: it never touches modeled
cycles, and the no-op seam lives one level up
(:mod:`repro.service.observe`), so a disabled daemon pays one
attribute load per hook.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque

from .metrics import MetricsRegistry
from .spans import Span, SpanTracer

#: flight-recorder dump schema; bump the suffix on breaking changes.
FLIGHT_SCHEMA = "repro.flight_recorder/v1"


def wall_now_us() -> int:
    """Epoch microseconds: one clock every process on the host shares."""
    return time.time_ns() // 1000


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (uuid4-derived, collision-safe here)."""
    return uuid.uuid4().hex[:16]


def span_event(
    name: str,
    ts_us: int,
    dur_us: int,
    pid: int = 0,
    tid: int = 0,
    cat: str = "service",
    **args,
) -> dict:
    """One complete ("X") Chrome trace event as a plain JSON-safe dict.

    This is the *wire* form worker processes ship back to the server and
    the client merges into the final trace file — no Span objects cross
    a process boundary.
    """
    return {
        "ph": "X",
        "name": name,
        "cat": cat,
        "pid": int(pid),
        "tid": int(tid),
        "ts": int(ts_us),
        "dur": int(max(0, dur_us)),
        "args": args,
    }


def chrome_trace(events: list[dict], clock: str = "wall-epoch-us") -> dict:
    """Wrap event dicts into the file Perfetto/chrome://tracing load."""
    return {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock},
    }


class WallSpanTracer(SpanTracer):
    """A bounded, wall-clocked :class:`SpanTracer` for long-lived daemons.

    Differences from the engine tracer it subclasses:

    * the clock is :func:`wall_now_us`, not modeled cycles;
    * ``events`` / ``instants`` are rings (``deque(maxlen=...)``) so a
      daemon tracing for days keeps the last ``max_events``, not all;
    * :meth:`span_at` records an interval retroactively from explicit
      timestamps — the natural shape for a server that measures a stage
      with two clock reads on different threads;
    * :meth:`chrome_events` exports plain event dicts stamped with this
      process's real pid, optionally filtered to one trace id.
    """

    def __init__(self, enabled: bool = True, max_events: int = 4096):
        super().__init__(enabled=enabled, cycle_clock=wall_now_us)
        self.max_events = max_events
        self.events = deque(maxlen=max_events)
        self.instants = deque(maxlen=max_events)
        self._lock = threading.Lock()

    def span_at(
        self, name: str, ts_us: int, dur_us: int, cat: str = "service",
        tid: int = 0, **args,
    ) -> None:
        """Record an already-finished interval (thread-safe)."""
        if not self.enabled:
            return
        span = Span.__new__(Span)
        span.name = name
        span.cat = cat
        span.tid = tid
        span.ts = int(ts_us)
        span.dur = int(max(0, dur_us))
        span.wall_ns = span.dur * 1000
        span.args = args
        span._tracer = self
        span._wall0 = 0
        with self._lock:
            self.events.append(span)

    def instant_at(
        self, name: str, ts_us: int, cat: str = "service", tid: int = 0, **args
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.instants.append((name, cat, tid, int(ts_us), args))

    def chrome_events(self, trace_id: str | None = None) -> list[dict]:
        """Event dicts (this pid), optionally only one trace's spans."""
        pid = os.getpid()
        with self._lock:
            spans = list(self.events)
            instants = list(self.instants)
        out: list[dict] = []
        for s in spans:
            if trace_id is not None and s.args.get("trace_id") != trace_id:
                continue
            out.append(span_event(s.name, s.ts, s.dur, pid=pid, tid=s.tid,
                                  cat=s.cat, **s.args))
        for name, cat, tid, ts, args in instants:
            if trace_id is not None and args.get("trace_id") != trace_id:
                continue
            out.append({"ph": "i", "name": name, "cat": cat, "pid": pid,
                        "tid": tid, "ts": ts, "s": "t", "args": args})
        return out


# ---------------------------------------------------------------------------
# Prometheus-style exposition and derived latency/shed summaries
# ---------------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """``service.jobs.received`` -> ``service_jobs_received``."""
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (version 0.0.4 shape).

    Counters get the conventional ``_total`` suffix; histograms expose
    cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
    """
    snapshot = registry.as_dict()
    lines: list[str] = []
    for name, value in (snapshot.get("counters") or {}).items():
        pname = _prom_name(name) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_prom_value(value)}")
    for name, value in (snapshot.get("gauges") or {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_prom_value(value)}")
    for name, hist in (snapshot.get("histograms") or {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(f'{pname}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{pname}_sum {repr(float(hist['sum']))}")
        lines.append(f"{pname}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def histogram_quantile(hist: dict, q: float) -> float | None:
    """Estimate quantile ``q`` from a histogram's ``as_dict`` form.

    Standard bucket-walk estimate with linear interpolation inside the
    winning bucket; observations in the overflow bucket answer with the
    last finite bound (a floor, like PromQL's ``histogram_quantile``).
    Returns None for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = hist.get("count", 0)
    if not total:
        return None
    rank = q * total
    bounds = hist["buckets"]
    counts = hist["counts"]
    cumulative = 0
    for i, bound in enumerate(bounds):
        prev = cumulative
        cumulative += counts[i]
        if cumulative >= rank:
            lo = bounds[i - 1] if i > 0 else 0.0
            inside = counts[i]
            frac = (rank - prev) / inside if inside else 1.0
            return lo + (bound - lo) * min(1.0, max(0.0, frac))
    return float(bounds[-1])


def latency_summary(registry: MetricsRegistry, prefix: str = "service") -> dict:
    """p50/p95/p99 latency (ms) + shed/reject rates from live metrics.

    Derived entirely from the ``<prefix>.*`` instruments a tier stamps
    (``service.*`` for a daemon, ``router.*`` for the router), so it
    works on any registry snapshot — live over the wire, or post-mortem
    from a ``stats`` dump.
    """
    flat = registry.flat()
    received = flat.get(f"{prefix}.jobs.received", 0)
    degraded = flat.get(f"{prefix}.jobs.degraded", 0)
    rejected = flat.get(f"{prefix}.jobs.rejected", 0)
    hist = registry.histograms.get(f"{prefix}.latency.total_s")
    quantiles: dict[str, float | None] = {"p50_ms": None, "p95_ms": None, "p99_ms": None}
    if hist is not None:
        data = hist.as_dict()
        for key, q in (("p50_ms", 0.5), ("p95_ms", 0.95), ("p99_ms", 0.99)):
            value = histogram_quantile(data, q)
            quantiles[key] = None if value is None else round(value * 1e3, 3)
    # Function-summary DIFT counters (zero when the fast path is off).
    # hit_rate denominator = every region-open decision: a hit, a fresh
    # learn, or a guard invalidation.
    hits = int(flat.get("dift.summaries.hits", 0))
    learned = int(flat.get("dift.summaries.learned", 0))
    invalidations = int(flat.get("dift.summaries.invalidations", 0))
    attempts = hits + learned + invalidations
    return {
        "jobs_received": int(received),
        "jobs_completed": int(flat.get(f"{prefix}.jobs.completed", 0)),
        "shed_rate": round(degraded / received, 4) if received else 0.0,
        "reject_rate": round(rejected / received, 4) if received else 0.0,
        **quantiles,
        "summaries_learned": learned,
        "summaries_hits": hits,
        "summaries_invalidations": invalidations,
        "summaries_records_elided": int(flat.get("dift.summaries.records_elided", 0)),
        "summary_hit_rate": round(hits / attempts, 4) if attempts else 0.0,
    }


# ---------------------------------------------------------------------------
# Flight recorder and metrics window
# ---------------------------------------------------------------------------
class FlightRecorder:
    """Fixed-size ring of structured events; dumps JSON post-mortems.

    Recording is a lock + dict append — cheap enough to run always-on
    at the service's job granularity (admission verdicts, dispatches,
    worker lifecycle), never per instruction.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.recorded = 0

    def record(self, kind: str, **fields) -> None:
        with self._lock:
            self._seq += 1
            self.recorded += 1
            self._events.append({"seq": self._seq, "t_us": wall_now_us(),
                                 "kind": kind, **fields})

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def dump(self, path, reason: str, **extra) -> dict:
        """Write the ring to ``path`` as one JSON artifact; returns it."""
        payload = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "t_us": wall_now_us(),
            "capacity": self.capacity,
            "recorded": self.recorded,
            **extra,
            "events": self.snapshot(),
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=False)
            fh.write("\n")
        return payload


class MetricsWindow:
    """Bounded time series of flat registry snapshots (scrape history)."""

    def __init__(self, capacity: int = 600):
        if capacity < 1:
            raise ValueError("metrics window needs capacity >= 1")
        self.capacity = capacity
        self._samples: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def sample(self, registry: MetricsRegistry) -> dict:
        entry = {"t_us": wall_now_us(), "values": registry.flat()}
        with self._lock:
            self._samples.append(entry)
        return entry

    def series(self) -> list[dict]:
        with self._lock:
            return list(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "MetricsWindow",
    "WallSpanTracer",
    "chrome_trace",
    "histogram_quantile",
    "latency_summary",
    "new_trace_id",
    "render_prometheus",
    "span_event",
    "wall_now_us",
]
