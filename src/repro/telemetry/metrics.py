"""Metrics registry: counters, gauges and fixed-bucket histograms.

Every tool in this repo produces quantitative claims (bytes/instr,
slowdown, queue stalls, commits vs aborts, ...) yet kept ad-hoc
counters before this module existed.  The registry gives them one
uniform, zero-dependency home:

* **Counter** — monotone count (records stored, propagations, aborts).
* **Gauge** — last-value or high-water measurement (buffer occupancy
  peak, tainted-location high-water mark).
* **Histogram** — fixed upper-bound buckets plus an overflow bucket
  (scheduler segment lengths, record sizes).

Cost discipline mirrors the VM's hookless "native run" path: a
disabled registry hands out shared no-op instruments, so instrumented
code can call ``counter.inc()`` unconditionally and a disabled run
pays one attribute load, no allocation, and never perturbs the
deterministic cycle model (telemetry never calls ``add_overhead``).

**Thread safety.**  The analysis service mutates one live registry from
many handler threads at once, so every *mutator* is atomic: each
instrument owns a private lock taken around its read-modify-write
(``inc`` / ``set_max`` / ``observe``; plain ``set`` is a single store
but takes it too for uniformity), and the registry takes a registry-wide
lock around instrument creation, so two threads racing
``registry.counter(name)`` always receive the same object.  *Reads* are
deliberately lock-free: ``value`` is one attribute load (atomic in
CPython), and snapshot methods (``as_dict`` / ``flat``) hold only the
registry lock for a stable key set — a snapshot taken mid-hammer may be
momentarily stale but never torn, which is all a metrics scrape needs.
Single-threaded hot loops keep their own local counters and bulk-``inc``
at publish time, so the per-instrument lock is uncontended where speed
matters.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time measurement; ``set_max`` tracks high-water marks."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self.value:
                self.value = value


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are ascending inclusive upper bounds; one implicit
    overflow bucket catches everything above the last bound, so
    ``counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "total", "sum", "_lock")

    def __init__(self, name: str, buckets: tuple[float, ...]):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs ascending bucket bounds")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.total += 1
            self.sum += value

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "count": self.total,
                "sum": self.sum,
            }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instruments handed out by disabled registries.
_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (1.0,))

#: Default bucket ladder (powers of four) for size/length distributions.
DEFAULT_BUCKETS: tuple[float, ...] = (1, 4, 16, 64, 256, 1024, 4096, 16384)

#: Bucket ladder for host-side latencies in seconds (sub-millisecond up
#: to a minute) — used by the analysis service's per-stage spans.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0,
)


class MetricsRegistry:
    """Namespace of instruments, keyed by dotted metric name.

    Instruments are created on first use and returned on every later
    request, so ``registry.counter("vm.instructions")`` is both the
    declaration and the lookup.  A disabled registry returns shared
    no-op instruments and serializes to an empty dict.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.setdefault(name, Histogram(name, buckets))
        return h

    def as_dict(self) -> dict:
        """JSON-serializable snapshot, sorted for deterministic output."""
        if not self.enabled:
            return {}
        with self._lock:
            counters = sorted(self.counters)
            gauges = sorted(self.gauges)
            histograms = sorted(self.histograms)
        return {
            "counters": {k: self.counters[k].value for k in counters},
            "gauges": {k: self.gauges[k].value for k in gauges},
            "histograms": {
                k: self.histograms[k].as_dict() for k in histograms
            },
        }

    def flat(self) -> dict[str, float]:
        """Counters and gauges as one flat name -> value mapping."""
        out: dict[str, float] = {}
        with self._lock:
            counters = sorted(self.counters)
            gauges = sorted(self.gauges)
        for k in counters:
            out[k] = self.counters[k].value
        for k in gauges:
            out[k] = self.gauges[k].value
        return out


#: The registry instrumented code falls back to when none is supplied.
NULL_REGISTRY = MetricsRegistry(enabled=False)
