"""Span tracing with deterministic cycle timestamps.

A :class:`Span` is a named interval stamped twice: with the machine's
deterministic **cycle time** (the modeled ``CycleCounters.total``, so
two identical runs produce bit-identical traces) and with wall-clock
nanoseconds (so humans can still see real elapsed time).  The exported
format is the Chrome trace-event JSON that Perfetto and
``chrome://tracing`` open directly: cycle time maps to the ``ts``/
``dur`` microsecond fields (1 modeled cycle = 1 "µs"), wall time rides
along in ``args``.

The tracer follows the registry's cost discipline: a disabled tracer
hands out one shared no-op span, so instrumented code can wrap regions
unconditionally.
"""

from __future__ import annotations

import json
import time
from typing import Callable


class Span:
    """One open (and later closed) trace interval."""

    __slots__ = ("name", "cat", "tid", "ts", "dur", "wall_ns", "args", "_tracer", "_wall0")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, tid: int, args: dict | None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.ts = tracer.now()
        self.dur = 0
        self._wall0 = time.perf_counter_ns()
        self.wall_ns = 0
        self.args = args or {}

    def end(self, **args) -> "Span":
        self.dur = max(0, self._tracer.now() - self.ts)
        self.wall_ns = time.perf_counter_ns() - self._wall0
        if args:
            self.args.update(args)
        self._tracer.events.append(self)
        return self

    # context-manager sugar: ``with tracer.span("dift.run"): ...``
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class _NullSpan(Span):
    __slots__ = ()

    def __init__(self):  # bypass Span.__init__: no tracer, no clock reads
        self.name = self.cat = "null"
        self.tid = self.ts = self.dur = self.wall_ns = self._wall0 = 0
        self.args = {}
        self._tracer = None

    def end(self, **args) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Collects spans and instants; exports Chrome trace-event JSON."""

    def __init__(self, enabled: bool = True, cycle_clock: Callable[[], int] | None = None):
        self.enabled = enabled
        self.cycle_clock = cycle_clock
        self.events: list[Span] = []
        #: instant events: (name, cat, tid, ts, args)
        self.instants: list[tuple[str, str, int, int, dict]] = []
        self.thread_names: dict[int, str] = {}

    def bind_clock(self, cycle_clock: Callable[[], int]) -> None:
        """Late-bind the cycle source (the machine exists after the tracer)."""
        if self.cycle_clock is None:
            self.cycle_clock = cycle_clock

    def now(self) -> int:
        clock = self.cycle_clock
        return clock() if clock is not None else 0

    def span(self, name: str, cat: str = "run", tid: int = 0, **args) -> Span:
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, cat, tid, args or None)

    def instant(self, name: str, cat: str = "run", tid: int = 0, **args) -> None:
        if self.enabled:
            self.instants.append((name, cat, tid, self.now(), args))

    def name_thread(self, tid: int, name: str) -> None:
        if self.enabled:
            self.thread_names[tid] = name

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The trace-event wrapper object Perfetto/chrome://tracing load."""
        events: list[dict] = []
        for tid, name in sorted(self.thread_names.items()):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for s in self.events:
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.cat,
                    "pid": 0,
                    "tid": s.tid,
                    "ts": s.ts,
                    "dur": s.dur,
                    "args": {**s.args, "wall_ns": s.wall_ns},
                }
            )
        for name, cat, tid, ts, args in self.instants:
            events.append(
                {
                    "ph": "i",
                    "name": name,
                    "cat": cat,
                    "pid": 0,
                    "tid": tid,
                    "ts": ts,
                    "s": "t",
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "modeled-cycles (1 cycle = 1 us)"},
        }

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)


def validate_chrome_trace(trace: dict) -> None:
    """Raise ``ValueError`` unless ``trace`` is a loadable trace-event file."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("chrome trace must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev or "name" not in ev:
            raise ValueError(f"event {i} lacks ph/name")
        ph = ev["ph"]
        if ph == "X":
            for key in ("ts", "dur", "pid", "tid"):
                if not isinstance(ev.get(key), int):
                    raise ValueError(f"complete event {i} field {key!r} must be an int")
            if ev["ts"] < 0 or ev["dur"] < 0:
                raise ValueError(f"complete event {i} has negative ts/dur")
        elif ph == "i":
            if not isinstance(ev.get("ts"), int):
                raise ValueError(f"instant event {i} needs an int ts")
        elif ph != "M":
            raise ValueError(f"event {i} has unsupported phase {ph!r}")


#: The tracer instrumented code falls back to when none is supplied.
NULL_TRACER = SpanTracer(enabled=False)
