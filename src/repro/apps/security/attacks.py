"""Attack scenario corpus (§3.3).

"72% of the total vulnerabilities discovered in the year 2006 are
attributed to a lack of (proper) input validation" — these scenarios
model that class: each is a small service with an input-validation bug,
a benign input that exercises it safely, and a crafted input that turns
the bug into a control or data hijack.

* ``fptr_overflow``   — unchecked copy length overflows a heap buffer
  into an adjacent function pointer; the crafted input redirects an
  ``icall`` to a privileged function (control hijack).
* ``index_hijack``    — unvalidated index writes through a dispatch
  table, redirecting an indirect call (data->control hijack).
* ``credential_leak`` — an unvalidated record id lets a response echo
  an adjacent secret onto the public channel (information leak); the
  secret arrives on a privileged input channel, so this scenario
  exercises DIFT in the *confidentiality* direction (source = secret
  channel, sink = public output).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...lang.codegen import CompiledProgram, compile_source
from ...runner import ProgramRunner


@dataclass
class AttackScenario:
    name: str
    compiled: CompiledProgram
    benign_inputs: dict[int, list[int]]
    attack_inputs: dict[int, list[int]]
    #: acceptable root-cause statement lines (ground truth for E11); the
    #: paper claims the PC label points at or directly adjacent to the
    #: root cause "in most cases", so adjacency counts.
    root_cause_lines: frozenset[int]
    #: expected sink kind ("icall" | "out").
    sink: str
    #: which input channels source taint (None = all).
    source_channels: frozenset[int] | None = None
    description: str = ""

    def runner(self, attack: bool = True) -> ProgramRunner:
        inputs = self.attack_inputs if attack else self.benign_inputs
        return ProgramRunner(
            self.compiled.program,
            inputs={k: list(v) for k, v in inputs.items()},
            max_instructions=2_000_000,
        )


def fptr_overflow() -> AttackScenario:
    src = (
        "fn greet(x) { out(100 + x, 1); }\n"  # 1
        "fn grant_admin(x) { out(9999, 1); }\n"  # 2  privileged
        "fn main() {\n"  # 3
        "    var buf = alloc(4);\n"  # 4
        "    var handler = alloc(1);\n"  # 5  adjacent to buf
        "    handler[0] = fnid(greet);\n"  # 6
        "    var n = in(0);\n"  # 7  attacker-controlled length
        "    var i = 0;\n"  # 8
        "    while (i < n) {\n"  # 9
        "        buf[i] = in(0);\n"  # 10  BUG: no bounds check
        "        i = i + 1;\n"  # 11
        "    }\n"
        "    icall(handler[0], 7);\n"  # 13  the hijacked sink
        "}\n"
    )
    compiled = compile_source(src)
    admin_id = compiled.program.functions["grant_admin"].fid
    return AttackScenario(
        name="fptr-overflow",
        compiled=compiled,
        benign_inputs={0: [2, 11, 22]},
        attack_inputs={0: [5, 0, 0, 0, 0, admin_id]},
        root_cause_lines=frozenset({10}),
        sink="icall",
        description="heap overflow overwrites an adjacent function pointer",
    )


def index_hijack() -> AttackScenario:
    src = (
        "global table[4];\n"  # 1  dispatch table
        "fn op_read(x) { out(1, 1); }\n"  # 2
        "fn op_write(x) { out(2, 1); }\n"  # 3
        "fn op_admin(x) { out(3333, 1); }\n"  # 4  privileged
        "fn main() {\n"  # 5
        "    table[0] = fnid(op_read);\n"  # 6
        "    table[1] = fnid(op_write);\n"  # 7
        "    var slot = in(0);\n"  # 8  attacker-controlled slot
        "    var value = in(0);\n"  # 9  attacker-controlled id
        "    table[slot] = value;\n"  # 10  BUG: slot not validated
        "    var cmd = in(0);\n"  # 11
        "    icall(table[cmd % 2], 0);\n"  # 12  the hijacked sink
        "}\n"
    )
    compiled = compile_source(src)
    admin_id = compiled.program.functions["op_admin"].fid
    return AttackScenario(
        name="index-hijack",
        compiled=compiled,
        benign_inputs={0: [1, 0, 0]},  # legitimately set table[1] = op_read
        attack_inputs={0: [0, admin_id, 0]},  # overwrite slot 0 with op_admin
        root_cause_lines=frozenset({9, 10}),  # the unvalidated field / its store
        sink="icall",
        description="unvalidated table index lets input become a call target",
    )


def credential_leak() -> AttackScenario:
    src = (
        "global records[4];\n"  # 1  public records
        "global secret;\n"  # 2  adjacent secret
        "fn main() {\n"  # 3
        "    records[0] = 10;\n"  # 4
        "    records[1] = 11;\n"  # 5
        "    records[2] = 12;\n"  # 6
        "    records[3] = 13;\n"  # 7
        "    secret = in(2);\n"  # 8  the secret (privileged channel)
        "    var id = in(0);\n"  # 9  attacker-controlled record id
        "    out(records[id], 1);\n"  # 10  BUG: id not validated (can read secret)
        "}\n"
    )
    return AttackScenario(
        name="credential-leak",
        compiled=compile_source(src),
        benign_inputs={0: [2], 2: [777000]},
        attack_inputs={0: [4], 2: [777000]},  # records[4] aliases 'secret'
        root_cause_lines=frozenset({8, 10}),
        sink="out",
        source_channels=frozenset({2}),
        description="unvalidated index leaks a privileged-channel secret publicly",
    )


def attack_corpus() -> list[AttackScenario]:
    return [fptr_overflow(), index_hijack(), credential_leak()]
