"""Software attack detection and root-cause location (§3.3)."""

from .attacks import AttackScenario, attack_corpus, credential_leak, fptr_overflow, index_hijack
from .monitor import AttackMonitor, AttackReport

__all__ = [
    "AttackScenario",
    "attack_corpus",
    "credential_leak",
    "fptr_overflow",
    "index_hijack",
    "AttackMonitor",
    "AttackReport",
]
