"""The attack monitor: DIFT-based detection plus PC-taint bug location
(§3.3).

Classic DIFT stops the attack at the sink; the paper's addition is that
the same infrastructure also *explains* it: "instead of propagating the
boolean taint values, we propagate PC values ... when an attack is
detected, the PC taint value of the tainted memory location gives us
the most recent instruction that wrote to it ... in most cases this
directly points to the statement that is the root cause of the bug."
"""

from __future__ import annotations

from dataclasses import dataclass

from ...dift.engine import DIFTEngine, SinkRule, TaintAlert
from ...dift.policy import BoolTaintPolicy, PCTaintPolicy
from ...lang.codegen import CompiledProgram
from ...runner import ProgramRunner
from ...vm.machine import RunResult, RunStatus


@dataclass
class AttackReport:
    scenario: str
    detected: bool
    #: run ended by the DIFT trap (vs crashed or completed).
    stopped_by_dift: bool
    result: RunResult
    alert: TaintAlert | None = None
    #: root-cause statement (PC-taint payload), -1 with boolean taint.
    culprit_pc: int = -1
    culprit_line: int = 0

    @property
    def hijack_succeeded(self) -> bool:
        """The attack ran to completion unobstructed."""
        return not self.detected and self.result.status is RunStatus.EXITED


class AttackMonitor:
    """Runs a program under DIFT with attack sinks armed."""

    def __init__(
        self,
        policy: str = "pc",
        sinks: list[SinkRule] | None = None,
        source_channels: frozenset[int] | None = None,
        propagate_addresses: bool = False,
    ):
        self.policy_name = policy
        self.sinks = sinks
        self.source_channels = source_channels
        self.propagate_addresses = propagate_addresses

    def _make_engine(self) -> DIFTEngine:
        policy = PCTaintPolicy() if self.policy_name == "pc" else BoolTaintPolicy()
        sinks = self.sinks
        if sinks is None:
            sinks = [SinkRule(kind="icall", action="raise"), SinkRule(kind="out", action="raise")]
        return DIFTEngine(
            policy,
            sinks=sinks,
            source_channels=self.source_channels,
            propagate_addresses=self.propagate_addresses,
        )

    @classmethod
    def for_scenario(cls, scenario, policy: str = "pc") -> "AttackMonitor":
        """A monitor configured for one :class:`AttackScenario`."""
        sinks = [SinkRule(kind=scenario.sink, action="raise")]
        return cls(policy=policy, sinks=sinks, source_channels=scenario.source_channels)

    def monitor(
        self,
        runner: ProgramRunner,
        compiled: CompiledProgram | None = None,
        scenario: str = "",
    ) -> AttackReport:
        engine = self._make_engine()
        machine = runner.machine()
        engine.attach(machine)
        result = machine.run(max_instructions=runner.max_instructions)
        detected = bool(engine.alerts)
        alert = engine.alerts[0] if engine.alerts else None
        culprit = -1
        if alert is not None and self.policy_name == "pc":
            culprit = alert.label
        return AttackReport(
            scenario=scenario,
            detected=detected,
            stopped_by_dift=(
                result.failed and result.failure is not None
                and result.failure.kind == "attack_detected"
            ),
            result=result,
            alert=alert,
            culprit_pc=culprit,
            culprit_line=compiled.line_of(culprit) if compiled and culprit >= 0 else 0,
        )
