"""Slicing-based fault location (§3.1, [13,14,17]).

The baseline debugging workflow the paper's ecosystem supports: run the
failing execution under ONTRAC, take the first incorrect output as the
slicing criterion, compute its backward dynamic slice, optionally prune
with output-correctness confidence ([17]), and hand the programmer a
ranked fault-candidate set of source statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...lang.codegen import CompiledProgram
from ...ontrac.tracer import OntracConfig
from ...runner import ProgramRunner
from ...slicing.pruning import classify_outputs, kept_pcs, prune_slice
from ...slicing.slicer import backward_slice
from ...vm.events import Hook, InstrEvent
from ...isa.instructions import Opcode


class OutputRecorder(Hook):
    """Captures (seq, value) of every value emitted on one channel."""

    def __init__(self, channel: int = 1):
        self.channel = channel
        self.events: list[tuple[int, int]] = []

    def on_instruction(self, ev: InstrEvent) -> None:
        if ev.instr.opcode is Opcode.OUT and ev.channel == self.channel:
            self.events.append((ev.seq, ev.io_value))


@dataclass
class FaultLocalizationReport:
    criterion_seq: int
    #: fault candidates before pruning (static pcs / source lines).
    slice_pcs: set[int] = field(default_factory=set)
    slice_lines: set[int] = field(default_factory=set)
    #: after confidence pruning.
    pruned_pcs: set[int] = field(default_factory=set)
    pruned_lines: set[int] = field(default_factory=set)
    truncated: bool = False

    def contains_bug(self, bug_lines: set[int], pruned: bool = True) -> bool:
        lines = self.pruned_lines if pruned else self.slice_lines
        return bool(lines & bug_lines)

    @property
    def reduction(self) -> float:
        if not self.slice_lines:
            return 0.0
        return 1.0 - len(self.pruned_lines) / len(self.slice_lines)


class SliceBasedFaultLocator:
    """Locate faults by slicing the first incorrect output."""

    def __init__(
        self,
        runner: ProgramRunner,
        compiled: CompiledProgram,
        expected_output: list[int],
        output_channel: int = 1,
        trace_config: OntracConfig | None = None,
    ):
        self.runner = runner
        self.compiled = compiled
        self.expected_output = expected_output
        self.output_channel = output_channel
        self.trace_config = trace_config or OntracConfig(buffer_bytes=1 << 22)

    def locate(self) -> FaultLocalizationReport:
        recorder = OutputRecorder(self.output_channel)
        machine = self.runner.machine()
        from ...ontrac.tracer import OnlineTracer

        tracer = OnlineTracer(self.runner.program, self.trace_config).attach(machine)
        machine.hooks.subscribe(recorder)
        machine.run(max_instructions=self.runner.max_instructions)

        ddg = tracer.dependence_graph()
        correct, incorrect = classify_outputs(ddg, recorder.events, self.expected_output)
        if not incorrect:
            raise ValueError("the run's output matches the expected output; nothing to locate")
        criterion = min(incorrect)  # first wrong output instance

        sl = backward_slice(ddg, criterion)
        pruned = prune_slice(ddg, sl, correct, incorrect)
        line_of = self.compiled.line_of
        report = FaultLocalizationReport(
            criterion_seq=criterion,
            slice_pcs=set(sl.pcs),
            slice_lines={line_of(pc) for pc in sl.pcs if line_of(pc)},
            pruned_pcs=kept_pcs(ddg, pruned),
            pruned_lines={line_of(pc) for pc in kept_pcs(ddg, pruned) if line_of(pc)},
            truncated=sl.truncated,
        )
        return report
