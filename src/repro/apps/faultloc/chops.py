"""Failure-inducing chops (§3.1, citing [1] "Locating Faulty Code Using
Failure-Inducing Chops").

A chop narrows the fault-candidate set to statements on some dependence
path from a *failure-inducing input* to the observed failure: the
intersection of the input's forward slice with the failure's backward
slice.  [1]'s observation — "the root cause of the bug is often in the
forward slice of the inputs" — is also what justifies ONTRAC's targeted
forward-slice-of-input optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...isa.instructions import Opcode
from ...lang.codegen import CompiledProgram
from ...ontrac.ddg import DynamicDependenceGraph
from ...slicing.slicer import chop


@dataclass
class ChopReport:
    source_seq: int
    sink_seq: int
    seqs: set[int] = field(default_factory=set)
    pcs: set[int] = field(default_factory=set)
    lines: set[int] = field(default_factory=set)

    def contains_bug(self, bug_lines: set[int]) -> bool:
        return bool(self.lines & bug_lines)


def failure_inducing_chop(
    ddg: DynamicDependenceGraph,
    compiled: CompiledProgram,
    input_seq: int,
    failure_seq: int,
) -> ChopReport:
    """Chop between a specific input instance and the failure point."""
    seqs = chop(ddg, input_seq, failure_seq)
    pcs = {ddg.pc_of(s) for s in seqs}
    return ChopReport(
        source_seq=input_seq,
        sink_seq=failure_seq,
        seqs=seqs,
        pcs=pcs,
        lines={compiled.line_of(pc) for pc in pcs if compiled.line_of(pc)},
    )


def input_instances(ddg: DynamicDependenceGraph, program) -> list[int]:
    """All dynamic IN instances in the window (candidate chop sources)."""
    return sorted(
        seq
        for seq, node in ddg.nodes.items()
        if program.code[node.pc].opcode is Opcode.IN
    )


def best_chop(
    ddg: DynamicDependenceGraph,
    compiled: CompiledProgram,
    failure_seq: int,
) -> ChopReport | None:
    """Smallest non-empty chop over all input instances — the
    failure-inducing input is the one whose chop is tightest."""
    best: ChopReport | None = None
    for seq in input_instances(ddg, compiled.program):
        report = failure_inducing_chop(ddg, compiled, seq, failure_seq)
        if len(report.seqs) <= 1:  # no path from this input to the failure
            continue
        if best is None or len(report.seqs) < len(best.seqs):
            best = report
    return best
