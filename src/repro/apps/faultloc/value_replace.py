"""Fault localization by value replacement (§3.1, citing [2]).

"The key idea is to see which program statements exercised during a
failing run use values that can be altered so that the execution
instead produces correct output."  Unlike slicing this is dependence-
free, so it "can uniformly handle all errors irrespective of whether or
not they are captured by dynamic slices" — including execution-omission
errors.

Procedure:

1. run the failing execution once, recording a **value profile**: every
   value defined at every statement instance (capped);
2. build the **alternate-value set** of each statement from values the
   same statement produced at other instances, in passing runs, and a
   few generic probes (0, 1, -1, value±1);
3. for each (statement instance, alternate value), re-execute with that
   single definition rewritten; if the program now emits the expected
   output, the pair is an *interesting value-mapping pair* (IVMP);
4. rank statements by their IVMP count.

Statements at or adjacent to the fault accumulate the most IVMPs, so
the bug line lands at/near rank 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...isa.instructions import Instruction, Opcode
from ...lang.codegen import CompiledProgram
from ...runner import ProgramRunner
from ...vm.events import Hook, InstrEvent
from ...vm.machine import Intervention

#: opcodes whose definitions we consider "statement values" worth probing.
_PROBED_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
        Opcode.SEQ, Opcode.SNE, Opcode.SLT, Opcode.SLE, Opcode.SGT,
        Opcode.SGE, Opcode.ADDI, Opcode.MULI, Opcode.NOT, Opcode.NEG,
        Opcode.LI, Opcode.LOAD, Opcode.IN,
    }
)


class ValueProfiler(Hook):
    """Records (pc -> [(occurrence, defined value), ...])."""

    def __init__(self, max_instances_per_pc: int = 64):
        self.max_instances = max_instances_per_pc
        self.profile: dict[int, list[tuple[int, int]]] = {}
        self._occurrences: dict[int, int] = {}

    def on_instruction(self, ev: InstrEvent) -> None:
        if ev.instr.opcode not in _PROBED_OPS or not ev.reg_writes:
            return
        occurrence = self._occurrences.get(ev.pc, 0)
        self._occurrences[ev.pc] = occurrence + 1
        bucket = self.profile.setdefault(ev.pc, [])
        if len(bucket) < self.max_instances:
            bucket.append((occurrence, ev.reg_writes[0][1]))


class _Replacer(Intervention):
    def __init__(self, pc: int, occurrence: int, value: int):
        self.pc = pc
        self.occurrence = occurrence
        self.value = value
        self.fired = False

    def transform_def(self, instr: Instruction, occurrence: int, value: int) -> int:
        if instr.index == self.pc and occurrence == self.occurrence:
            self.fired = True
            return self.value
        return value


@dataclass
class IVMP:
    """One interesting value-mapping pair."""

    pc: int
    occurrence: int
    original: int
    replacement: int


@dataclass
class ValueReplacementReport:
    ivmps: list[IVMP] = field(default_factory=list)
    replacements_tried: int = 0
    #: source line -> IVMP count, descending.
    ranking: list[tuple[int, int]] = field(default_factory=list)

    def rank_of_line(self, line: int) -> int | None:
        """1-based rank of ``line`` (ties share the better rank)."""
        previous_count = None
        rank = 0
        for i, (ln, count) in enumerate(self.ranking):
            if count != previous_count:
                rank = i + 1
                previous_count = count
            if ln == line:
                return rank
        return None


class ValueReplacementRanker:
    def __init__(
        self,
        runner: ProgramRunner,
        compiled: CompiledProgram,
        expected_output: list[int],
        passing_runner: ProgramRunner | None = None,
        output_channel: int = 1,
        max_replacements: int = 400,
        max_instances_per_pc: int = 8,
    ):
        self.runner = runner
        self.compiled = compiled
        self.expected_output = expected_output
        self.passing_runner = passing_runner
        self.output_channel = output_channel
        self.max_replacements = max_replacements
        self.max_instances_per_pc = max_instances_per_pc

    def _profile(self, runner: ProgramRunner) -> dict[int, list[tuple[int, int]]]:
        profiler = ValueProfiler(self.max_instances_per_pc)
        runner.run(hooks=(profiler,))
        return profiler.profile

    def _alternates(
        self,
        pc: int,
        original: int,
        failing: dict[int, list[tuple[int, int]]],
        passing: dict[int, list[tuple[int, int]]],
    ) -> list[int]:
        candidates: list[int] = []
        for _, value in passing.get(pc, []):
            candidates.append(value)
        for _, value in failing.get(pc, []):
            candidates.append(value)
        candidates.extend((original + 1, original - 1, 0, 1))
        seen: set[int] = set()
        unique = []
        for value in candidates:
            if value != original and value not in seen:
                seen.add(value)
                unique.append(value)
        return unique[:6]

    def rank(self) -> ValueReplacementReport:
        failing_profile = self._profile(self.runner)
        passing_profile = (
            self._profile(self.passing_runner) if self.passing_runner is not None else {}
        )
        report = ValueReplacementReport()
        counts: dict[int, int] = {}
        for pc, instances in sorted(failing_profile.items()):
            for occurrence, original in instances:
                for alt in self._alternates(pc, original, failing_profile, passing_profile):
                    if report.replacements_tried >= self.max_replacements:
                        break
                    report.replacements_tried += 1
                    replacer = _Replacer(pc, occurrence, alt)
                    machine, result = self.runner.run(intervention=replacer)
                    if (
                        not result.failed
                        and machine.io.output(self.output_channel) == self.expected_output
                    ):
                        report.ivmps.append(
                            IVMP(pc=pc, occurrence=occurrence, original=original, replacement=alt)
                        )
        line_counts: dict[int, int] = {}
        for ivmp in report.ivmps:
            line = self.compiled.line_of(ivmp.pc)
            if line:
                line_counts[line] = line_counts.get(line, 0) + 1
        report.ranking = sorted(line_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        counts.clear()
        return report
