"""Fault location (§3.1): slicing, pruning, chops, predicate switching
(via repro.slicing.implicit), and value-replacement ranking."""

from .chops import ChopReport, best_chop, failure_inducing_chop, input_instances
from .locator import FaultLocalizationReport, OutputRecorder, SliceBasedFaultLocator
from .value_replace import (
    IVMP,
    ValueProfiler,
    ValueReplacementRanker,
    ValueReplacementReport,
)

__all__ = [
    "ChopReport",
    "best_chop",
    "failure_inducing_chop",
    "input_instances",
    "FaultLocalizationReport",
    "OutputRecorder",
    "SliceBasedFaultLocator",
    "IVMP",
    "ValueProfiler",
    "ValueReplacementRanker",
    "ValueReplacementReport",
]
