"""Applications of the DIFT framework (§3): fault location, fault
avoidance, software attack detection, data-lineage validation."""

from .adaptive import AdaptiveOptimizer, OptimizationPlan

__all__ = ["AdaptiveOptimizer", "OptimizationPlan"]
