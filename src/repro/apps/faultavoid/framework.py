"""The fault-avoidance framework (§3.2, citing [7,8]).

Capture -> avoid -> prevent:

1. **Capture** — programs run under cheap checkpointing/logging; a
   failure yields the event log and a failure signature.
2. **Avoid** — the framework perturbs the *environment* and re-executes
   until the failure disappears.  Three strategies, one per fault class
   the paper studies:

   * ``RescheduleStrategy`` (atomicity violations) — alter scheduling
     decisions: retry with different quanta/seeds until an interleaving
     avoids the violation (a large quantum effectively serializes the
     racy region);
   * ``PadAllocationsStrategy`` (heap buffer overflow) — re-run with
     allocator padding so the overflow lands in slack space instead of
     a neighbouring block;
   * ``FilterInputStrategy`` (malformed user request) — identify the
     failure-inducing input positions via the dynamic slice of the
     failure and sanitize them.

3. **Prevent** — the successful perturbation is recorded as an
   :class:`~repro.apps.faultavoid.patches.EnvironmentPatch`; future runs
   consult the patch file and never exhibit the fault again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...isa.instructions import Opcode
from ...ontrac.tracer import OnlineTracer, OntracConfig
from ...runner import ProgramRunner
from ...slicing.slicer import backward_slice
from ...vm.machine import RunResult
from ...vm.scheduler import RandomScheduler, RoundRobinScheduler
from .patches import EnvironmentPatch, FaultSignature, PatchFile


@dataclass
class AvoidanceAttempt:
    strategy: str
    params: dict
    succeeded: bool
    result: RunResult | None = None


@dataclass
class AvoidanceOutcome:
    failure_kind: str
    failure_pc: int
    attempts: list[AvoidanceAttempt] = field(default_factory=list)
    patch: EnvironmentPatch | None = None

    @property
    def avoided(self) -> bool:
        return self.patch is not None


class RescheduleStrategy:
    """Change scheduling decisions to dodge interleaving-dependent bugs."""

    name = "reschedule"

    def __init__(self, quanta: tuple[int, ...] = (1000, 5000, 200), seeds: tuple[int, ...] = (11, 23)):
        self.quanta = quanta
        self.seeds = seeds

    def attempts(self, runner: ProgramRunner):
        for quantum in self.quanta:
            yield (
                {"quantum": quantum},
                lambda q=quantum: _with_scheduler(runner, lambda: RoundRobinScheduler(q)),
            )
        for seed in self.seeds:
            yield (
                {"seed": seed, "quantum": 500},
                lambda s=seed: _with_scheduler(
                    runner, lambda: RandomScheduler(seed=s, min_quantum=200, max_quantum=800)
                ),
            )

    def to_patch(self, signature: FaultSignature, params: dict) -> EnvironmentPatch:
        quantum = params.get("quantum", 1000)
        return EnvironmentPatch(
            signature=signature,
            strategy="reschedule",
            params={"quantum": quantum},
            description=f"serialize racy region with quantum {quantum}",
        )


class PadAllocationsStrategy:
    """Grow every allocation so small overflows land in slack space."""

    name = "pad-allocations"

    def __init__(self, paddings: tuple[int, ...] = (1, 2, 4, 8)):
        self.paddings = paddings

    def attempts(self, runner: ProgramRunner):
        for padding in self.paddings:
            yield ({"padding": padding}, lambda p=padding: _with_padding(runner, p))

    def to_patch(self, signature: FaultSignature, params: dict) -> EnvironmentPatch:
        return EnvironmentPatch(
            signature=signature,
            strategy="pad-allocations",
            params=params,
            description=f"pad heap allocations by {params['padding']} cells",
        )


class FilterInputStrategy:
    """Sanitize the failure-inducing input positions.

    The positions come from dynamic analysis, not guessing: trace the
    failing run, take the backward slice of the failure, and collect
    the input reads inside it.
    """

    name = "filter-input"

    def __init__(self, replacement: int = 1, channel: int = 0):
        self.replacement = replacement
        self.channel = channel

    def _culprit_positions(self, runner: ProgramRunner) -> list[int]:
        machine = runner.machine()
        tracer = OnlineTracer(runner.program, OntracConfig(buffer_bytes=1 << 22)).attach(machine)
        result = machine.run(max_instructions=runner.max_instructions)
        if result.failure is None:
            return []
        ddg = tracer.dependence_graph()
        # The failure's seq may not be a node (failing instruction was not
        # completed); slice from the latest node at or before it.
        candidates = [s for s in ddg.nodes if s <= result.failure.seq]
        if not candidates:
            return []
        criterion = max(candidates)
        sl = backward_slice(ddg, criterion)
        positions = []
        code = runner.program.code
        for seq in sl.seqs:
            node = ddg.nodes[seq]
            if code[node.pc].opcode is Opcode.IN:
                for s, chan, value, index in machine.io.read_log:
                    if s == seq and chan == self.channel and index >= 0:
                        positions.append(index)
        return sorted(set(positions))

    def attempts(self, runner: ProgramRunner):
        positions = self._culprit_positions(runner)
        if positions:
            # Try the most specific filter first (latest read is usually
            # the malformed field), then the whole slice's inputs.
            yield (
                {"positions": [positions[-1]], "replacement": self.replacement,
                 "channel": self.channel},
                lambda: _with_filtered_inputs(runner, [positions[-1]], self.replacement,
                                              self.channel),
            )
            yield (
                {"positions": positions, "replacement": self.replacement,
                 "channel": self.channel},
                lambda: _with_filtered_inputs(runner, positions, self.replacement, self.channel),
            )

    def to_patch(self, signature: FaultSignature, params: dict) -> EnvironmentPatch:
        return EnvironmentPatch(
            signature=signature,
            strategy="filter-input",
            params=params,
            description=f"sanitize input positions {params['positions']}",
        )


def _with_scheduler(runner: ProgramRunner, factory) -> RunResult:
    trial = ProgramRunner(
        runner.program,
        inputs={k: list(v) for k, v in runner.inputs.items()},
        args=runner.args,
        scheduler_factory=factory,
        max_instructions=runner.max_instructions,
    )
    _, result = trial.run()
    return result


def _with_padding(runner: ProgramRunner, padding: int) -> RunResult:
    machine = runner.machine()
    machine.memory.alloc_padding = padding
    return machine.run(max_instructions=runner.max_instructions)


def _with_filtered_inputs(
    runner: ProgramRunner, positions: list[int], replacement: int, channel: int
) -> RunResult:
    inputs = {k: list(v) for k, v in runner.inputs.items()}
    values = inputs.get(channel, [])
    inputs[channel] = [
        replacement if i in set(positions) else v for i, v in enumerate(values)
    ]
    trial = runner.with_inputs(inputs)
    _, result = trial.run()
    return result


class FaultAvoidanceFramework:
    """Tries strategies in a fault-class-appropriate order and records
    the first successful one as an environment patch."""

    def __init__(self, patch_file: PatchFile | None = None):
        self.patch_file = patch_file or PatchFile()

    def _strategy_order(self, failure_kind: str):
        if failure_kind in ("div_zero", "bad_icall", "fail"):
            return [FilterInputStrategy(), PadAllocationsStrategy(), RescheduleStrategy()]
        if failure_kind in ("bad_free",):
            return [PadAllocationsStrategy(), FilterInputStrategy(), RescheduleStrategy()]
        # asserts can come from any class: try cheap env changes in order
        return [RescheduleStrategy(), PadAllocationsStrategy(), FilterInputStrategy()]

    def avoid(self, runner: ProgramRunner) -> AvoidanceOutcome:
        """Given a failing run recipe, find and record an environment fix."""
        _, baseline = runner.run()
        if not baseline.failed:
            raise ValueError("the run does not fail; nothing to avoid")
        signature = FaultSignature(kind=baseline.failure.kind, pc=baseline.failure.pc)
        outcome = AvoidanceOutcome(
            failure_kind=baseline.failure.kind, failure_pc=baseline.failure.pc
        )
        for strategy in self._strategy_order(baseline.failure.kind):
            for params, attempt in strategy.attempts(runner):
                result = attempt()
                ok = not result.failed
                outcome.attempts.append(
                    AvoidanceAttempt(
                        strategy=strategy.name, params=params, succeeded=ok, result=result
                    )
                )
                if ok:
                    patch = strategy.to_patch(signature, params)
                    self.patch_file.record(patch)
                    outcome.patch = patch
                    return outcome
        return outcome
