"""Fault avoidance via environment perturbation (§3.2)."""

from .framework import (
    AvoidanceAttempt,
    AvoidanceOutcome,
    FaultAvoidanceFramework,
    FilterInputStrategy,
    PadAllocationsStrategy,
    RescheduleStrategy,
)
from .patches import EnvironmentPatch, FaultSignature, PatchFile

__all__ = [
    "AvoidanceAttempt",
    "AvoidanceOutcome",
    "FaultAvoidanceFramework",
    "FilterInputStrategy",
    "PadAllocationsStrategy",
    "RescheduleStrategy",
    "EnvironmentPatch",
    "FaultSignature",
    "PatchFile",
]
