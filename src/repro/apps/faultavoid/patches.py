"""Environment patches (§3.2).

When the fault-avoidance framework finds an environment change that
makes a failure disappear, it records the fix as an **environment
patch**: "all future executions of this application refer to this patch
to figure out the safe execution environment".  A patch never modifies
the program — only its execution environment (scheduling, allocator,
input handling), which is what makes the approach safe to apply
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...runner import ProgramRunner
from ...vm.machine import Machine
from ...vm.scheduler import RoundRobinScheduler


@dataclass(frozen=True)
class FaultSignature:
    """Identifies which failures a patch targets."""

    kind: str  # FailureInfo.kind
    pc: int  # static failure location (-1 = any)

    def matches(self, kind: str, pc: int) -> bool:
        return self.kind == kind and (self.pc == -1 or self.pc == pc)


@dataclass
class EnvironmentPatch:
    """One recorded environment fix."""

    signature: FaultSignature
    strategy: str  # "reschedule" | "pad-allocations" | "filter-input"
    #: strategy parameters, e.g. {"quantum": 1000} or {"padding": 4}
    #: or {"positions": [...], "replacement": 1}.
    params: dict = field(default_factory=dict)
    description: str = ""

    def apply_to_runner(self, runner: ProgramRunner) -> ProgramRunner:
        """Return a runner configured with this patch's environment."""
        patched = ProgramRunner(
            program=runner.program,
            inputs={k: list(v) for k, v in runner.inputs.items()},
            args=runner.args,
            scheduler_factory=runner.scheduler_factory,
            max_instructions=runner.max_instructions,
        )
        if self.strategy == "reschedule":
            quantum = self.params["quantum"]
            patched.scheduler_factory = lambda: RoundRobinScheduler(quantum=quantum)
        elif self.strategy == "filter-input":
            positions = set(self.params["positions"])
            replacement = self.params["replacement"]
            channel = self.params.get("channel", 0)
            values = patched.inputs.get(channel, [])
            patched.inputs[channel] = [
                replacement if i in positions else v for i, v in enumerate(values)
            ]
        # "pad-allocations" is applied at machine level; see configure_machine.
        return patched

    def configure_machine(self, machine: Machine) -> None:
        """Machine-level knobs (allocator padding)."""
        if self.strategy == "pad-allocations":
            machine.memory.alloc_padding = self.params["padding"]


@dataclass
class PatchFile:
    """The persistent patch store consulted by future runs.

    Checking the patch file "is piggybacked with the logging of events.
    Hence, the only overhead incurred ... is that of
    checkpointing/logging" — modeled as a constant per-run lookup cost.
    """

    patches: list[EnvironmentPatch] = field(default_factory=list)
    lookup_cycles: int = 50

    def record(self, patch: EnvironmentPatch) -> None:
        self.patches.append(patch)

    def find(self, kind: str, pc: int) -> EnvironmentPatch | None:
        for patch in self.patches:
            if patch.signature.matches(kind, pc):
                return patch
        return None

    def protected_run(self, runner: ProgramRunner, kind: str, pc: int):
        """Run with the matching patch applied (the 'future execution')."""
        patch = self.find(kind, pc)
        effective = patch.apply_to_runner(runner) if patch else runner
        machine = effective.machine()
        if patch is not None:
            patch.configure_machine(machine)
        machine.add_overhead(self.lookup_cycles)
        result = machine.run(max_instructions=effective.max_instructions)
        return machine, result, patch
