"""Data-lineage tracing and validation (§3.4): roBDD-backed lineage
sets as a DIFT taint policy."""

from .lineage_sets import (
    BDD_BYTES_PER_NODE,
    NAIVE_BYTES_PER_ELEMENT,
    BDDLabel,
    BDDLineageStore,
    NaiveLineageStore,
    decode_input,
    encode_input,
)
from .robdd import BDDManager
from .tracer import LineagePolicy, LineageTrace, LineageTracer, OutputLineage
from .validation import ValidationReport, screen_outputs, verify_against_reference

__all__ = [
    "BDD_BYTES_PER_NODE",
    "NAIVE_BYTES_PER_ELEMENT",
    "BDDLabel",
    "BDDLineageStore",
    "NaiveLineageStore",
    "decode_input",
    "encode_input",
    "BDDManager",
    "LineagePolicy",
    "LineageTrace",
    "LineageTracer",
    "OutputLineage",
    "ValidationReport",
    "screen_outputs",
    "verify_against_reference",
]
