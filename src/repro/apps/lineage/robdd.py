"""Reduced ordered binary decision diagrams (roBDD).

§3.4 represents lineage sets as roBDDs because scientific lineage sets
"often have significant overlap" and their members are "clustered" —
both structures that collapse to tiny shared DAGs under a binary
encoding of input indices.

This is a classic shared-manager implementation:

* nodes are ``(var, lo, hi)`` triples interned in a **unique table**
  (hash-consing), so structurally equal subgraphs are the same node and
  equality is pointer equality;
* reduction is by construction: ``mk`` never creates a node whose two
  children are equal;
* ``apply`` (AND/OR) memoizes on ``(op, a, b)``;
* sets of non-negative integers are encoded over ``bits`` boolean
  variables, most-significant bit first, so *contiguous ranges* share
  long prefix paths — exactly the clustering payoff.

Node ids 0 and 1 are the terminals.  The manager's node count is the
shared memory footprint across *all* sets built in it, which is what
the E12 memory comparison measures.
"""

from __future__ import annotations

from dataclasses import dataclass


class BDDManager:
    """Shared unique-table / apply-cache for one family of BDDs."""

    FALSE = 0
    TRUE = 1

    def __init__(self, bits: int = 20):
        if bits < 1:
            raise ValueError("need at least one variable bit")
        self.bits = bits
        # nodes[id] = (var, lo, hi); entries 0/1 are terminal placeholders.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._count_cache: dict[int, int] = {}

    # -- structural ----------------------------------------------------
    def var_of(self, node: int) -> int:
        return self._nodes[node][0]

    def low(self, node: int) -> int:
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        return self._nodes[node][2]

    def mk(self, var: int, lo: int, hi: int) -> int:
        """Interned, reduced node constructor."""
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    @property
    def node_count(self) -> int:
        """Total interned non-terminal nodes (shared footprint)."""
        return len(self._nodes) - 2

    def reachable_count(self, root: int) -> int:
        """Nodes reachable from ``root`` (size of one set's DAG)."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            stack.append(self.low(n))
            stack.append(self.high(n))
        return len(seen)

    # -- construction ---------------------------------------------------------
    def singleton(self, value: int) -> int:
        """BDD for the set {value}."""
        if not 0 <= value < (1 << self.bits):
            raise ValueError(f"value {value} out of range for {self.bits} bits")
        node = self.TRUE
        for var in range(self.bits - 1, -1, -1):
            bit = (value >> (self.bits - 1 - var)) & 1
            node = self.mk(var, self.FALSE, node) if bit else self.mk(var, node, self.FALSE)
        return node

    def from_iterable(self, values) -> int:
        node = self.FALSE
        for v in values:
            node = self.union(node, self.singleton(v))
        return node

    # -- boolean operations -------------------------------------------------------
    def _apply(self, op: str, a: int, b: int) -> int:
        if op == "or":
            if a == self.TRUE or b == self.TRUE:
                return self.TRUE
            if a == self.FALSE:
                return b
            if b == self.FALSE:
                return a
        else:  # and
            if a == self.FALSE or b == self.FALSE:
                return self.FALSE
            if a == self.TRUE:
                return b
            if b == self.TRUE:
                return a
        if a == b:
            return a
        if a > b:
            a, b = b, a  # ops are commutative: canonicalize the cache key
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        va, vb = self.var_of(a), self.var_of(b)
        if va == vb:
            node = self.mk(
                va,
                self._apply(op, self.low(a), self.low(b)),
                self._apply(op, self.high(a), self.high(b)),
            )
        elif va < vb:
            node = self.mk(va, self._apply(op, self.low(a), b), self._apply(op, self.high(a), b))
        else:
            node = self.mk(vb, self._apply(op, a, self.low(b)), self._apply(op, a, self.high(b)))
        self._apply_cache[key] = node
        return node

    def union(self, a: int, b: int) -> int:
        return self._apply("or", a, b)

    def intersect(self, a: int, b: int) -> int:
        return self._apply("and", a, b)

    # -- queries -----------------------------------------------------------------
    def contains(self, node: int, value: int) -> bool:
        var = 0
        while node > 1:
            nvar = self.var_of(node)
            # skipped variables are don't-care: follow the value's bit
            var = nvar
            bit = (value >> (self.bits - 1 - var)) & 1
            node = self.high(node) if bit else self.low(node)
        return node == self.TRUE

    def count(self, node: int) -> int:
        """|set| — number of satisfying assignments."""

        def rec(n: int, var: int) -> int:
            if n == self.FALSE:
                return 0
            if n == self.TRUE:
                return 1 << (self.bits - var)
            cached = self._count_cache.get(n)
            if cached is None:
                nv = self.var_of(n)
                cached = rec(self.low(n), nv + 1) + rec(self.high(n), nv + 1)
                self._count_cache[n] = cached
            # account for variables skipped between var and var_of(n)
            return cached << (self.var_of(n) - var)

        return rec(node, 0)

    def to_set(self, node: int) -> set[int]:
        """Enumerate the set (use on small sets / in tests)."""
        result: set[int] = set()

        def rec(n: int, var: int, prefix: int) -> None:
            if n == self.FALSE:
                return
            if var == self.bits:
                if n == self.TRUE:
                    result.add(prefix)
                return
            if n != self.TRUE and self.var_of(n) == var:
                rec(self.low(n), var + 1, prefix << 1)
                rec(self.high(n), var + 1, (prefix << 1) | 1)
            else:
                # variable skipped: both branches
                rec(n, var + 1, prefix << 1)
                rec(n, var + 1, (prefix << 1) | 1)

        rec(node, 0, 0)
        return result
