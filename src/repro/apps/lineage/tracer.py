"""Lineage tracing: DIFT generalized from bits to input sets (§3.4).

"Instead of tracing a bit or a PC value, we trace a set of input values
that contribute to the current executed instruction through
dependences."  Implemented as one more :class:`~repro.dift.policy.TaintPolicy`
over the shared DIFT engine, parameterized by the set representation
(naive sets or roBDDs, :mod:`repro.apps.lineage.lineage_sets`).

The tracer records, for every value emitted on an output channel, the
full lineage set — the provenance record scientific data validation
queries (:mod:`repro.apps.lineage.validation`) run against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...dift.engine import DIFTEngine, SinkRule
from ...dift.policy import TaintPolicy
from ...runner import ProgramRunner
from ...vm.events import InstrEvent
from ...vm.machine import Machine, RunResult
from .lineage_sets import BDDLineageStore, NaiveLineageStore, encode_input


class LineagePolicy(TaintPolicy):
    """Taint label = set of contributing inputs."""

    label_bytes = 4  # pointer to the set; set storage measured separately
    #: base propagation stub; per-union work is charged via union_cycles.
    propagate_cycles = 4

    def __init__(self, store):
        self.store = store
        self.union_cycle_total = 0

    def taint_for_input(self, ev: InstrEvent) -> object | None:
        if ev.input_index < 0:
            return None  # EOF carries no provenance
        return self.store.singleton(encode_input(ev.channel, ev.input_index))

    def combine(self, labels: list) -> object:
        result = self.store.union(labels)
        self.union_cycle_total += self.store.union_cycles(self.store.size(result))
        return result

    def describe(self, label: object) -> str:
        members = sorted(self.store.members(label))
        return f"lineage({len(members)} inputs)"


@dataclass
class OutputLineage:
    """Provenance of one output value."""

    position: int  # k-th value on the channel
    channel: int
    value: int
    seq: int
    inputs: set[int]  # encoded input ids

    def input_indices(self, channel: int = 0) -> set[int]:
        """Positions within one input channel."""
        return {iid >> 3 for iid in self.inputs if (iid & 7) == channel}


@dataclass
class LineageTrace:
    outputs: list[OutputLineage] = field(default_factory=list)
    store_name: str = ""
    shadow_set_bytes: int = 0  # live lineage-set storage at end of run
    guest_data_bytes: int = 0
    union_cycles: int = 0
    result: RunResult | None = None

    @property
    def memory_overhead(self) -> float:
        """Lineage storage relative to guest data (3.0 = the paper's 300%)."""
        return self.shadow_set_bytes / max(1, self.guest_data_bytes)

    def outputs_depending_on(self, channel: int, index: int) -> list[OutputLineage]:
        iid = encode_input(channel, index)
        return [o for o in self.outputs if iid in o.inputs]


class LineageTracer:
    """Runs a program under lineage DIFT and collects output provenance."""

    def __init__(self, representation: str = "robdd", bits: int = 20):
        if representation == "robdd":
            self.store = BDDLineageStore(bits=bits)
        elif representation == "naive":
            self.store = NaiveLineageStore()
        else:
            raise ValueError(f"unknown representation {representation!r}")
        self.policy = LineagePolicy(self.store)
        self.engine = DIFTEngine(
            self.policy,
            sinks=[SinkRule(kind="out", action="record")],
        )

    def attach(self, machine: Machine) -> "LineageTracer":
        self.engine.attach(machine)
        return self

    def trace(self, runner: ProgramRunner, output_channel: int = 1) -> LineageTrace:
        machine = runner.machine()
        self.attach(machine)
        result = machine.run(max_instructions=runner.max_instructions)
        trace = LineageTrace(store_name=self.store.name, result=result)
        position: dict[int, int] = {}
        for alert in self.engine.alerts:
            # every OUT of a lineage-carrying value produced one alert
            chan = alert.channel
            k = position.get(chan, 0)
            position[chan] = k + 1
            if chan != output_channel:
                continue
            trace.outputs.append(
                OutputLineage(
                    position=k,
                    channel=chan,
                    value=alert.value,
                    seq=alert.seq,
                    inputs=self.store.members(alert.label),
                )
            )
        live_labels = list(self.engine.shadow.mem.values()) + list(
            self.engine.shadow.regs.values()
        )
        trace.shadow_set_bytes = self.store.footprint_bytes(live_labels)
        trace.guest_data_bytes = machine.memory.footprint * 4
        trace.union_cycles = self.policy.union_cycle_total
        return trace
