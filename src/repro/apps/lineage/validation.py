"""Scientific data validation via lineage queries (§3.4).

The paper's motivating use: "applying the system to a realistic
bio-chemistry application ... identifies a few false positives in a
real experiment, which may otherwise result in highly expensive
wet-bench experiments."  The workflow: trace lineage, then validate
suspicious *outputs* by checking which *inputs* they actually depend
on — an output whose lineage includes a known-bad input is a false
positive of the scientific analysis; an output whose lineage avoids
all bad inputs is trustworthy regardless of the contamination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lineage_sets import encode_input
from .tracer import LineageTrace


@dataclass
class ValidationReport:
    """Outcome of screening outputs against contaminated inputs."""

    contaminated_inputs: set[int]  # input indices (channel 0)
    #: output positions whose lineage touches a contaminated input.
    suspect_outputs: list[int] = field(default_factory=list)
    #: output positions proven independent of the contamination.
    cleared_outputs: list[int] = field(default_factory=list)

    @property
    def false_positive_candidates(self) -> list[int]:
        """Outputs that would have been trusted without lineage."""
        return self.suspect_outputs


def screen_outputs(
    trace: LineageTrace, contaminated: set[int], channel: int = 0
) -> ValidationReport:
    """Partition traced outputs by dependence on contaminated inputs."""
    bad_ids = {encode_input(channel, i) for i in contaminated}
    report = ValidationReport(contaminated_inputs=set(contaminated))
    for out in trace.outputs:
        if out.inputs & bad_ids:
            report.suspect_outputs.append(out.position)
        else:
            report.cleared_outputs.append(out.position)
    return report


def verify_against_reference(
    trace: LineageTrace, expected_lineage, channel: int = 0
) -> tuple[int, list[tuple[int, set[int], set[int]]]]:
    """Compare traced lineage against a ground-truth function.

    Returns ``(num_exact_matches, mismatches)`` where each mismatch is
    ``(position, traced, expected)``.  The workload builders in
    :mod:`repro.workloads.scientific` supply ``expected_lineage``.
    """
    matches = 0
    mismatches: list[tuple[int, set[int], set[int]]] = []
    for out in trace.outputs:
        traced = out.input_indices(channel)
        expected = set(expected_lineage(out.position))
        if traced == expected:
            matches += 1
        else:
            mismatches.append((out.position, traced, expected))
    return matches, mismatches
