"""Lineage-set representations: naive per-value sets vs shared roBDDs.

The §3.4 cost argument: "for each value resident in memory, we have to
maintain a set; for each executed instruction, we have to perform set
operations on potentially large sets."  The naive representation pays
O(|set|) memory per resident value; the roBDD representation shares
structure across *all* resident sets (overlap) and compresses
clustered members (contiguity).

Both implement one small interface so the DIFT lineage policy is
representation-agnostic; ``footprint_bytes`` of a *store* measures the
total modeled memory of every live set, which is what the 300%
memory-overhead claim is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .robdd import BDDManager

#: modeled bytes per element in a naive set (a 4-byte input id).
NAIVE_BYTES_PER_ELEMENT = 4
#: modeled bytes per interned BDD node (var + two child pointers + hash link).
BDD_BYTES_PER_NODE = 16


def encode_input(channel: int, index: int) -> int:
    """Global input id: position in the high bits (so that neighbouring
    inputs stay neighbours — the clustering roBDDs exploit), channel in
    the low three bits."""
    if not 0 <= channel < 8:
        raise ValueError("channels 0..7 supported by the lineage encoding")
    return (index << 3) | channel


def decode_input(input_id: int) -> tuple[int, int]:
    return input_id & 7, input_id >> 3


class NaiveLineageStore:
    """Lineage sets as plain frozensets (the comparison baseline)."""

    name = "naive-sets"

    def singleton(self, input_id: int) -> frozenset:
        return frozenset((input_id,))

    def union(self, labels: list[frozenset]) -> frozenset:
        result: set[int] = set()
        for label in labels:
            result |= label
        return frozenset(result)

    def members(self, label: frozenset) -> set[int]:
        return set(label)

    def size(self, label: frozenset) -> int:
        return len(label)

    def contains(self, label: frozenset, input_id: int) -> bool:
        return input_id in label

    def footprint_bytes(self, labels: list) -> int:
        """No sharing: every live set pays for all its elements."""
        return sum(len(label) for label in labels) * NAIVE_BYTES_PER_ELEMENT

    #: modeled cycles for one union producing a set of size n.
    def union_cycles(self, result_size: int) -> int:
        return 4 + result_size  # element-by-element copy


@dataclass
class BDDLabel:
    """One lineage set: a root in a shared manager."""

    root: int
    manager: BDDManager = field(repr=False)

    def __hash__(self) -> int:
        return hash(self.root)

    def __eq__(self, other) -> bool:
        return isinstance(other, BDDLabel) and other.root == self.root


class BDDLineageStore:
    """Lineage sets as roBDDs in one shared manager."""

    name = "robdd"

    def __init__(self, bits: int = 20):
        self.manager = BDDManager(bits=bits)

    def singleton(self, input_id: int) -> BDDLabel:
        return BDDLabel(self.manager.singleton(input_id), self.manager)

    def union(self, labels: list[BDDLabel]) -> BDDLabel:
        root = BDDManager.FALSE
        for label in labels:
            root = self.manager.union(root, label.root)
        return BDDLabel(root, self.manager)

    def members(self, label: BDDLabel) -> set[int]:
        return self.manager.to_set(label.root)

    def size(self, label: BDDLabel) -> int:
        return self.manager.count(label.root)

    def contains(self, label: BDDLabel, input_id: int) -> bool:
        return self.manager.contains(label.root, input_id)

    def footprint_bytes(self, labels: list) -> int:
        """Shared: nodes reachable from any *live* label, counted once
        (interned-but-unreferenced nodes are garbage a real BDD manager
        reclaims)."""
        seen: set[int] = set()
        mgr = self.manager
        stack = [label.root for label in labels]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            stack.append(mgr.low(n))
            stack.append(mgr.high(n))
        return len(seen) * BDD_BYTES_PER_NODE

    def union_cycles(self, result_size: int) -> int:
        # apply() is memoized; amortized cost is near-constant and
        # independent of set cardinality.
        return 8
