"""Trace-driven adaptive optimization (§4, "Work in Progress").

The paper closes with: "In addition to employing efficient tracing to
enable debugging of parallel applications, we also plan to explore its
use in performing **adaptive optimizations**."  This module builds that
extension on the same tracing substrate:

* **hot-trace identification** reuses ONTRAC's block-transition
  counters: paths the tracer fused into super-blocks are exactly the
  candidates a dynamic optimizer would specialize;
* **invariance profiling** reuses the value-profile machinery from the
  fault-location work: an instruction whose dynamic instances always
  produced one value is a constant-specialization candidate;
* **redundancy profiling** reuses the tracer's redundant-load detector:
  load sites that mostly repeat their previous (address, producer) pair
  are caching candidates.

The optimizer *plans*; applying the plan is modeled as a cycle credit
(specialized instructions drop to 1 cycle, cached loads skip the memory
cost) so the report can state an estimated speedup — the honest scope
for a forward-looking section of a 2008 workshop paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import Opcode
from ..ontrac.tracer import OnlineTracer, OntracConfig
from ..runner import ProgramRunner
from ..vm.events import Hook, InstrEvent


@dataclass(frozen=True)
class HotTrace:
    """A fused block transition and how often it ran."""

    from_pc: int
    to_pc: int
    executions: int


@dataclass(frozen=True)
class InvariantSite:
    """An instruction that always produced the same value."""

    pc: int
    value: int
    executions: int


@dataclass(frozen=True)
class CacheSite:
    """A load site whose (address, producer) pair mostly repeats."""

    pc: int
    executions: int
    redundant: int

    @property
    def hit_rate(self) -> float:
        return self.redundant / self.executions if self.executions else 0.0


@dataclass
class OptimizationPlan:
    hot_traces: list[HotTrace] = field(default_factory=list)
    invariants: list[InvariantSite] = field(default_factory=list)
    cache_sites: list[CacheSite] = field(default_factory=list)
    total_instructions: int = 0
    base_cycles: int = 0
    #: modeled cycles saved if the plan were applied.
    estimated_savings_cycles: int = 0

    @property
    def estimated_speedup(self) -> float:
        if self.base_cycles == 0:
            return 1.0
        remaining = max(1, self.base_cycles - self.estimated_savings_cycles)
        return self.base_cycles / remaining

    def summary(self) -> str:
        return (
            f"{len(self.hot_traces)} hot traces, "
            f"{len(self.invariants)} invariant sites, "
            f"{len(self.cache_sites)} cacheable loads; "
            f"estimated speedup {self.estimated_speedup:.2f}x"
        )


class _ProfileHook(Hook):
    """Per-site execution counts, last values, and invariance flags."""

    def __init__(self):
        self.exec_counts: dict[int, int] = {}
        self.invariant_value: dict[int, int] = {}
        self.varying: set[int] = set()
        self.load_pairs: dict[int, tuple[int, int]] = {}  # pc -> (addr, value)
        self.load_redundant: dict[int, int] = {}
        self.load_counts: dict[int, int] = {}

    def on_instruction(self, ev: InstrEvent) -> None:
        pc = ev.pc
        self.exec_counts[pc] = self.exec_counts.get(pc, 0) + 1
        # LI is already a constant; IN values must never be folded.
        if ev.reg_writes and ev.instr.opcode not in (Opcode.IN, Opcode.LI):
            value = ev.reg_writes[0][1]
            if pc not in self.varying:
                previous = self.invariant_value.get(pc)
                if previous is None:
                    self.invariant_value[pc] = value
                elif previous != value:
                    self.varying.add(pc)
                    del self.invariant_value[pc]
        if ev.instr.opcode in (Opcode.LOAD, Opcode.POP) and ev.mem_reads:
            addr, value = ev.mem_reads[0]
            self.load_counts[pc] = self.load_counts.get(pc, 0) + 1
            if self.load_pairs.get(pc) == (addr, value):
                self.load_redundant[pc] = self.load_redundant.get(pc, 0) + 1
            self.load_pairs[pc] = (addr, value)


class AdaptiveOptimizer:
    """Profiles one run and produces an :class:`OptimizationPlan`."""

    #: a site must execute at least this often to be worth specializing.
    MIN_EXECUTIONS = 8
    #: minimum redundant-load hit rate for a caching candidate.
    MIN_HIT_RATE = 0.5

    def __init__(self, runner: ProgramRunner, hot_trace_threshold: int = 16):
        self.runner = runner
        self.hot_trace_threshold = hot_trace_threshold

    def plan(self) -> OptimizationPlan:
        machine = self.runner.machine()
        tracer = OnlineTracer(
            self.runner.program,
            OntracConfig(
                hot_trace_threshold=self.hot_trace_threshold,
                record_control=False,  # profiling does not need control deps
                charge_overhead=False,
            ),
        ).attach(machine)
        profile = _ProfileHook()
        machine.hooks.subscribe(profile)
        result = machine.run(max_instructions=self.runner.max_instructions)

        plan = OptimizationPlan(
            total_instructions=result.instructions, base_cycles=result.cycles.base
        )
        for (from_pc, to_pc) in sorted(tracer._hot_transitions):
            executions = tracer._transition_counts.get((from_pc, to_pc), 0)
            plan.hot_traces.append(HotTrace(from_pc, to_pc, executions))

        cost_table = machine.cost_model
        savings = 0
        for pc, value in sorted(profile.invariant_value.items()):
            executions = profile.exec_counts.get(pc, 0)
            if executions < self.MIN_EXECUTIONS:
                continue
            instr = self.runner.program.code[pc]
            per_instr = cost_table.cost(instr.opcode)
            if per_instr > 1:  # replacing with a constant move saves cost-1
                savings += (per_instr - 1) * executions
            plan.invariants.append(InvariantSite(pc=pc, value=value, executions=executions))
        for pc, redundant in sorted(profile.load_redundant.items()):
            executions = profile.load_counts.get(pc, 0)
            site = CacheSite(pc=pc, executions=executions, redundant=redundant)
            if executions >= self.MIN_EXECUTIONS and site.hit_rate >= self.MIN_HIT_RATE:
                load_cost = cost_table.cost(Opcode.LOAD)
                savings += (load_cost - 1) * redundant
                plan.cache_sites.append(site)
        plan.estimated_savings_cycles = savings
        return plan
