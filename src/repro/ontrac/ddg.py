"""Dynamic dependence graph (DDG) — the queryable view over stored
dependence records.

Nodes are dynamic instruction instances (``seq``); each node remembers
its static pc and thread.  Backward edges point from a consumer to the
producers it depends on, labeled with the dependence kind.  Slicing
(:mod:`repro.slicing`) runs transitive closures over this structure.

A DDG built from a circular buffer only contains what survived
eviction; ``complete=False`` marks that truncation so slicers can
report when a slice ran off the edge of the history window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .records import DepKind, DepRecord


@dataclass(slots=True)
class DDGNode:
    seq: int
    pc: int
    tid: int


@dataclass
class DynamicDependenceGraph:
    nodes: dict[int, DDGNode] = field(default_factory=dict)
    #: consumer seq -> list of (producer seq, kind)
    backward: dict[int, list[tuple[int, DepKind]]] = field(default_factory=dict)
    #: producer seq -> list of (consumer seq, kind)
    forward: dict[int, list[tuple[int, DepKind]]] = field(default_factory=dict)
    #: False when built from a (possibly truncated) circular buffer.
    complete: bool = True

    def _ensure(self, seq: int, pc: int, tid: int) -> None:
        if seq not in self.nodes:
            self.nodes[seq] = DDGNode(seq=seq, pc=pc, tid=tid)

    def add_edge(
        self,
        consumer_seq: int,
        consumer_pc: int,
        producer_seq: int,
        producer_pc: int,
        kind: DepKind,
        tid: int = 0,
    ) -> None:
        nodes = self.nodes
        if consumer_seq not in nodes:
            nodes[consumer_seq] = DDGNode(consumer_seq, consumer_pc, tid)
        if producer_seq not in nodes:
            nodes[producer_seq] = DDGNode(producer_seq, producer_pc, tid)
        backward = self.backward
        edges = backward.get(consumer_seq)
        if edges is None:
            edges = backward[consumer_seq] = []
        edges.append((producer_seq, kind))
        forward = self.forward
        edges = forward.get(producer_seq)
        if edges is None:
            edges = forward[producer_seq] = []
        edges.append((consumer_seq, kind))

    def add_node(self, seq: int, pc: int, tid: int = 0) -> None:
        self._ensure(seq, pc, tid)

    # -- queries -----------------------------------------------------------
    def producers(self, seq: int, kinds: Iterable[DepKind] | None = None):
        edges = self.backward.get(seq, [])
        if kinds is None:
            return list(edges)
        wanted = set(kinds)
        return [(p, k) for p, k in edges if k in wanted]

    def consumers(self, seq: int, kinds: Iterable[DepKind] | None = None):
        edges = self.forward.get(seq, [])
        if kinds is None:
            return list(edges)
        wanted = set(kinds)
        return [(c, k) for c, k in edges if k in wanted]

    def pc_of(self, seq: int) -> int:
        return self.nodes[seq].pc

    def tid_of(self, seq: int) -> int:
        return self.nodes[seq].tid

    def has_node(self, seq: int) -> bool:
        return seq in self.nodes

    def node_items(self) -> Iterable[tuple[int, int]]:
        """(seq, pc) pairs in node-insertion order (shared query shape
        with :class:`~repro.ontrac.packed.PackedDDG`)."""
        return ((seq, node.pc) for seq, node in self.nodes.items())

    def seqs_of_pcs(self, pcs) -> list[int]:
        """Seqs of nodes whose pc is in ``pcs``, in insertion order."""
        return [seq for seq, node in self.nodes.items() if node.pc in pcs]

    def instances_of_pc(self, pc: int) -> list[int]:
        """All dynamic instances of static instruction ``pc`` (ascending)."""
        return sorted(n.seq for n in self.nodes.values() if n.pc == pc)

    def last_instance_of_pc(self, pc: int) -> int | None:
        instances = self.instances_of_pc(pc)
        return instances[-1] if instances else None

    @property
    def edge_count(self) -> int:
        return sum(len(v) for v in self.backward.values())

    def stats(self) -> dict[str, int]:
        by_kind: dict[str, int] = {}
        for edges in self.backward.values():
            for _, kind in edges:
                by_kind[kind.value] = by_kind.get(kind.value, 0) + 1
        return {"nodes": len(self.nodes), "edges": self.edge_count, **by_kind}


def build_ddg(records: Iterable[DepRecord], complete: bool = True) -> DynamicDependenceGraph:
    """Assemble a DDG from stored dependence records.

    INSTR and BRANCH records contribute nodes only; the dependence
    kinds contribute edges.
    """
    ddg = DynamicDependenceGraph(complete=complete)
    for rec in records:
        if rec.kind in (DepKind.INSTR, DepKind.BRANCH):
            ddg.add_node(rec.consumer_seq, rec.consumer_pc, rec.tid)
        else:
            ddg.add_edge(
                rec.consumer_seq,
                rec.consumer_pc,
                rec.producer_seq,
                rec.producer_pc,
                rec.kind,
                tid=rec.tid,
            )
    return ddg
