"""ONTRAC: the online dependence tracer (§2.1).

Computes dynamic dependences *during* execution and stores them in a
fixed-size circular buffer, eliminating the offline post-processing
step of the earlier two-phase pipeline (see
:mod:`repro.ontrac.offline` for that baseline).

Optimizations, exactly the paper's list:

Generic
  1. **Intra-block static inference** — a register dependence whose
     producer executed in the same dynamic basic-block instance is
     fully determined by the static code; store nothing.
  2. **Trace (super-block) inference** — the same across basic blocks
     on frequently executed paths: once a block transition has run
     ``hot_trace_threshold`` times, the blocks fuse into one inference
     region (a one-time 16-byte trace registration is charged).
  3. **Redundant-load elision** — a load at the same pc from the same
     address with the same producing store repeats the previously
     stored dependence; skip it.

Targeted (debugging-specific)
  4. **Selective tracing** — only dependences of user-specified
     functions are stored, but dataflow through *unspecified* code is
     still summarized (each location remembers the set of traced
     ancestors feeding it) so dependence chains through traced code are
     never broken — the paper's point that naively uninstrumenting
     other functions is unsound.
  5. **Forward-slice-of-input filtering** — only dependences whose
     consumer is (transitively) input-derived are stored, because root
     causes usually sit in the forward slice of the inputs [1].

Overhead model: every observed instruction costs ``stub_cycles``
(DBT dispatch + inline stubs) plus ``cycles_per_byte`` for each stored
byte, charged to the machine's overhead counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.cfg import build_cfgs
from ..isa.instructions import Opcode
from ..isa.program import Program
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine
from .buffer import TraceBuffer
from .control_dep import ControlDependenceTracker
from .ddg import DynamicDependenceGraph, build_ddg
from .records import TRACE_FORMATION_BYTES, DepKind, DepRecord

#: cap on how many traced ancestors an untraced-code summary carries.
SUMMARY_FANIN_CAP = 16


@dataclass
class OntracConfig:
    """Tracer configuration; see the module docstring for semantics."""

    buffer_bytes: int = 16 * 1024 * 1024
    naive: bool = False  # store per-instruction records, disable all opts
    infer_intra_block: bool = True
    infer_traces: bool = True
    hot_trace_threshold: int = 50
    elide_redundant_loads: bool = True
    selective_functions: frozenset[str] | None = None
    input_forward_slice: bool = False
    record_control: bool = True
    record_war_waw: bool = False
    charge_overhead: bool = True
    stub_cycles: int = 25
    cycles_per_byte: int = 3

    @classmethod
    def unoptimized(cls, **overrides) -> "OntracConfig":
        """The paper's 16 B/instruction baseline."""
        cfg = cls(
            naive=True,
            infer_intra_block=False,
            infer_traces=False,
            elide_redundant_loads=False,
            input_forward_slice=False,
        )
        for key, value in overrides.items():
            setattr(cfg, key, value)
        return cfg

    @classmethod
    def generic_optimizations(cls, **overrides) -> "OntracConfig":
        cfg = cls()
        for key, value in overrides.items():
            setattr(cfg, key, value)
        return cfg


@dataclass
class OntracStats:
    instructions: int = 0
    stored: dict[str, int] = field(default_factory=dict)
    stored_bytes: int = 0
    skipped: dict[str, int] = field(default_factory=dict)
    hot_traces: int = 0

    def _bump(self, table: dict[str, int], key: str) -> None:
        table[key] = table.get(key, 0) + 1

    @property
    def bytes_per_instruction(self) -> float:
        return self.stored_bytes / self.instructions if self.instructions else 0.0


# A producer is either a concrete dynamic instruction
# ("n", seq, pc, block_instance, tid) or a summary of traced ancestors
# flowing through untraced code ("s", frozenset({(seq, pc), ...})).
_NODE = "n"
_SUMMARY = "s"


class OnlineTracer(Hook):
    """ONTRAC attached to one machine run."""

    def __init__(self, program: Program, config: OntracConfig | None = None):
        self.program = program
        self.config = config or OntracConfig()
        self.buffer = TraceBuffer(self.config.buffer_bytes)
        self.stats = OntracStats()
        self.machine: Machine | None = None
        # Static structure: block leaders per global pc.
        self._leaders: set[int] = set()
        for cfg in build_cfgs(program).values():
            for block in cfg.blocks:
                self._leaders.add(block.start)
        self._control = ControlDependenceTracker(program) if self.config.record_control else None
        # Dynamic state.
        self._last_reg: dict[tuple[int, int], tuple] = {}
        self._last_mem: dict[int, tuple] = {}
        self._block_instance: dict[int, int] = {}
        self._next_instance = 0
        self._prev_call_ret: dict[int, bool] = {}
        self._prev_leader: dict[int, int] = {}
        self._transition_counts: dict[tuple[int, int], int] = {}
        self._hot_transitions: set[tuple[int, int]] = set()
        self._redundant_load: dict[int, tuple[int, int]] = {}
        self._derived_reg: set[tuple[int, int]] = set()
        self._derived_mem: set[int] = set()
        self._last_readers: dict[int, list[tuple[int, int, int]]] = {}

    # -- lifecycle -----------------------------------------------------------
    def attach(self, machine: Machine) -> "OnlineTracer":
        self.machine = machine
        machine.hooks.subscribe(self)
        return self

    def dependence_graph(self) -> DynamicDependenceGraph:
        """DDG over the records currently in the buffer."""
        return build_ddg(self.buffer, complete=self.buffer.stats.evicted == 0)

    # -- helpers -------------------------------------------------------------
    def _store(self, record: DepRecord) -> int:
        self.buffer.append(record)
        self.stats._bump(self.stats.stored, record.kind.value)
        self.stats.stored_bytes += record.bytes
        return record.bytes

    def _is_traced(self, ev: InstrEvent) -> bool:
        sel = self.config.selective_functions
        return sel is None or ev.instr.function in sel

    def _bump_instance(self, tid: int) -> None:
        self._next_instance += 1
        self._block_instance[tid] = self._next_instance

    def _maintain_blocks(self, ev: InstrEvent) -> int:
        """Track dynamic basic-block (or hot-trace) instances; returns the
        extra bytes charged for newly formed traces."""
        tid = ev.tid
        extra = 0
        if self._prev_call_ret.get(tid, True):
            # Entering code after call/ret (or thread start): always a new
            # inference region — the callee may have clobbered registers.
            self._bump_instance(tid)
            if ev.pc in self._leaders:
                self._prev_leader[tid] = ev.pc
        elif ev.pc in self._leaders:
            fused = False
            if self.config.infer_traces:
                prev = self._prev_leader.get(tid, -1)
                if prev >= 0:
                    key = (prev, ev.pc)
                    count = self._transition_counts.get(key, 0) + 1
                    self._transition_counts[key] = count
                    if key in self._hot_transitions:
                        fused = True
                    elif count >= self.config.hot_trace_threshold:
                        self._hot_transitions.add(key)
                        self.stats.hot_traces += 1
                        extra = TRACE_FORMATION_BYTES
                        self.stats.stored_bytes += extra
                        fused = True
            if not fused:
                self._bump_instance(tid)
            self._prev_leader[tid] = ev.pc
        op = ev.instr.opcode
        self._prev_call_ret[tid] = op in (Opcode.CALL, Opcode.ICALL, Opcode.RET)
        return extra

    # -- the hook --------------------------------------------------------------
    def on_instruction(self, ev: InstrEvent) -> None:
        cfg = self.config
        stats = self.stats
        stats.instructions += 1
        tid = ev.tid
        op = ev.instr.opcode
        bytes_stored = 0

        bytes_stored += self._maintain_blocks(ev)
        instance = self._block_instance.get(tid, 0)

        parent = self._control.observe(ev) if self._control is not None else None

        traced = self._is_traced(ev)

        # --- input-derived flag of this instruction -------------------------
        if cfg.input_forward_slice:
            derived = op is Opcode.IN
            if not derived:
                for reg, _ in ev.reg_reads:
                    if (tid, reg) in self._derived_reg:
                        derived = True
                        break
            if not derived:
                for addr, _ in ev.mem_reads:
                    if addr in self._derived_mem:
                        derived = True
                        break
        else:
            derived = True

        store_deps = traced and derived
        if traced and not derived:
            stats._bump(stats.skipped, "input_filter")

        # --- per-instruction record (naive mode only) ------------------------
        if cfg.naive and traced:
            bytes_stored += self._store(
                DepRecord(DepKind.INSTR, ev.seq, ev.pc, tid=tid)
            )

        # --- register dependences ---------------------------------------------
        seen_regs: set[int] = set()
        for reg, _ in ev.reg_reads:
            if reg in seen_regs:
                continue
            seen_regs.add(reg)
            producer = self._last_reg.get((tid, reg))
            if producer is None:
                continue
            if not store_deps:
                continue
            if producer[0] == _SUMMARY:
                for pseq, ppc in producer[1]:
                    bytes_stored += self._store(
                        DepRecord(DepKind.SUMMARY, ev.seq, ev.pc, pseq, ppc, tid=tid)
                    )
                continue
            _, pseq, ppc, pinstance, ptid = producer
            if (
                not cfg.naive
                and cfg.infer_intra_block
                and ptid == tid
                and pinstance == instance
            ):
                key = "static_block" if not self._was_fused(instance) else "static_trace"
                stats._bump(stats.skipped, key)
                # The edge is recoverable from the binary at query time:
                # keep it in the buffer at zero modeled cost.
                bytes_stored += self._store(
                    DepRecord(DepKind.IREG, ev.seq, ev.pc, pseq, ppc, tid=tid)
                )
                continue
            bytes_stored += self._store(
                DepRecord(DepKind.REG, ev.seq, ev.pc, pseq, ppc, tid=tid)
            )

        # --- memory dependences --------------------------------------------------
        for addr, _ in ev.mem_reads:
            producer = self._last_mem.get(addr)
            readers = self._last_readers.setdefault(addr, [])
            if cfg.record_war_waw and len(readers) < 8:
                readers.append((ev.seq, ev.pc, tid))
            if producer is None or not store_deps:
                continue
            if producer[0] == _SUMMARY:
                for pseq, ppc in producer[1]:
                    bytes_stored += self._store(
                        DepRecord(DepKind.SUMMARY, ev.seq, ev.pc, pseq, ppc, tid=tid)
                    )
                continue
            _, pseq, ppc, _, ptid = producer
            if not cfg.naive and cfg.elide_redundant_loads and op in (Opcode.LOAD, Opcode.POP):
                cached = self._redundant_load.get(ev.pc)
                if cached == (addr, pseq):
                    stats._bump(stats.skipped, "redundant_load")
                    # Recoverable from the previously stored identical
                    # dependence: keep the edge at zero modeled cost.
                    bytes_stored += self._store(
                        DepRecord(DepKind.IMEM, ev.seq, ev.pc, pseq, ppc, tid=tid)
                    )
                    continue
                self._redundant_load[ev.pc] = (addr, pseq)
            bytes_stored += self._store(
                DepRecord(DepKind.MEM, ev.seq, ev.pc, pseq, ppc, tid=tid)
            )

        # --- control dependence ------------------------------------------------
        if parent is not None and store_deps:
            bytes_stored += self._store(
                DepRecord(
                    DepKind.CONTROL, ev.seq, ev.pc, parent.branch_seq, parent.branch_pc, tid=tid
                )
            )
        if (op is Opcode.BR or op is Opcode.BRZ) and self._control is not None and traced:
            bytes_stored += self._store(DepRecord(DepKind.BRANCH, ev.seq, ev.pc, tid=tid))

        # --- WAR/WAW (multithreaded slicing extension) ----------------------------
        if cfg.record_war_waw and ev.mem_writes:
            for addr, _ in ev.mem_writes:
                prev_writer = self._last_mem.get(addr)
                if prev_writer is not None and prev_writer[0] == _NODE:
                    _, pseq, ppc, _, ptid = prev_writer
                    if ptid != tid:
                        bytes_stored += self._store(
                            DepRecord(DepKind.WAW, ev.seq, ev.pc, pseq, ppc, tid=tid)
                        )
                for rseq, rpc, rtid in self._last_readers.pop(addr, []):
                    if rtid != tid:
                        bytes_stored += self._store(
                            DepRecord(DepKind.WAR, ev.seq, ev.pc, rseq, rpc, tid=tid)
                        )

        # --- update last-writer metadata --------------------------------------------
        if traced:
            entry = (_NODE, ev.seq, ev.pc, instance, tid)
        else:
            # Summarize through untraced code: inherit the traced
            # ancestors of every input so chains are not broken.
            ancestors: set[tuple[int, int]] = set()
            for reg, _ in ev.reg_reads:
                producer = self._last_reg.get((tid, reg))
                if producer is None:
                    continue
                if producer[0] == _NODE:
                    ancestors.add((producer[1], producer[2]))
                else:
                    ancestors.update(producer[1])
            for addr, _ in ev.mem_reads:
                producer = self._last_mem.get(addr)
                if producer is None:
                    continue
                if producer[0] == _NODE:
                    ancestors.add((producer[1], producer[2]))
                else:
                    ancestors.update(producer[1])
            if len(ancestors) > SUMMARY_FANIN_CAP:
                ancestors = set(sorted(ancestors)[-SUMMARY_FANIN_CAP:])
            entry = (_SUMMARY, frozenset(ancestors))

        for reg, _ in ev.reg_writes:
            self._last_reg[(tid, reg)] = entry
            if cfg.input_forward_slice:
                if derived:
                    self._derived_reg.add((tid, reg))
                else:
                    self._derived_reg.discard((tid, reg))
        for addr, _ in ev.mem_writes:
            self._last_mem[addr] = entry
            if cfg.input_forward_slice:
                if derived:
                    self._derived_mem.add(addr)
                else:
                    self._derived_mem.discard(addr)

        if op is Opcode.SPAWN:
            # The child's r0 is defined by the spawn's argument flow.
            child = ev.reg_writes[0][1]
            self._last_reg[(child, 0)] = entry
            if cfg.input_forward_slice and derived:
                self._derived_reg.add((child, 0))

        # --- overhead accounting --------------------------------------------------
        if cfg.charge_overhead and self.machine is not None:
            self.machine.add_overhead(cfg.stub_cycles + bytes_stored * cfg.cycles_per_byte)

    def publish_telemetry(self, registry) -> None:
        """Dump tracer stats (the paper's B/instr figures) into a
        :class:`~repro.telemetry.MetricsRegistry`; call after the run."""
        stats = self.stats
        registry.counter("ontrac.instructions").inc(stats.instructions)
        registry.counter("ontrac.stored_bytes").inc(stats.stored_bytes)
        registry.counter("ontrac.hot_traces").inc(stats.hot_traces)
        for kind, count in sorted(stats.stored.items()):
            registry.counter(f"ontrac.records.stored.{kind}").inc(count)
        for reason, count in sorted(stats.skipped.items()):
            registry.counter(f"ontrac.records.elided.{reason}").inc(count)
        registry.gauge("ontrac.bytes_per_instruction").set(stats.bytes_per_instruction)
        buf = self.buffer
        registry.gauge("ontrac.buffer.capacity_bytes").set(buf.capacity_bytes)
        registry.gauge("ontrac.buffer.peak_bytes").set_max(buf.stats.peak_bytes)
        registry.gauge("ontrac.buffer.window_instructions").set(buf.window_instructions())
        registry.counter("ontrac.buffer.evicted_records").inc(buf.stats.evicted)

    def _was_fused(self, instance: int) -> bool:
        """Attribution only: whether this inference region spans a trace.

        We do not track fusion per instance (it would cost memory for a
        stat); attribute to traces whenever trace inference is on and at
        least one hot trace exists.
        """
        return self.config.infer_traces and bool(self._hot_transitions)
