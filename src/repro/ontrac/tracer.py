"""ONTRAC: the online dependence tracer (§2.1).

Computes dynamic dependences *during* execution and stores them in a
fixed-size circular buffer, eliminating the offline post-processing
step of the earlier two-phase pipeline (see
:mod:`repro.ontrac.offline` for that baseline).

Optimizations, exactly the paper's list:

Generic
  1. **Intra-block static inference** — a register dependence whose
     producer executed in the same dynamic basic-block instance is
     fully determined by the static code; store nothing.
  2. **Trace (super-block) inference** — the same across basic blocks
     on frequently executed paths: once a block transition has run
     ``hot_trace_threshold`` times, the blocks fuse into one inference
     region (a one-time 16-byte trace registration is charged).
  3. **Redundant-load elision** — a load at the same pc from the same
     address with the same producing store repeats the previously
     stored dependence; skip it.

Targeted (debugging-specific)
  4. **Selective tracing** — only dependences of user-specified
     functions are stored, but dataflow through *unspecified* code is
     still summarized (each location remembers the set of traced
     ancestors feeding it) so dependence chains through traced code are
     never broken — the paper's point that naively uninstrumenting
     other functions is unsound.
  5. **Forward-slice-of-input filtering** — only dependences whose
     consumer is (transitively) input-derived are stored, because root
     causes usually sit in the forward slice of the inputs [1].

Overhead model: every observed instruction costs ``stub_cycles``
(DBT dispatch + inline stubs) plus ``cycles_per_byte`` for each stored
byte, charged to the machine's overhead counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import fastpath as fastpath_config
from ..isa.cfg import build_cfgs
from ..isa.instructions import Opcode
from ..isa.program import Program
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine
from .buffer import TraceBuffer
from .control_dep import ControlDependenceTracker
from .ddg import DynamicDependenceGraph, build_ddg
from .packed import PackedDDG, PackedTraceBuffer
from .records import (
    KIND_CODES,
    TRACE_FORMATION_BYTES,
    DepKind,
    DepRecord,
    InternedDepRecord,
    RecordInterner,
    RecordTemplate,
)

#: cap on how many traced ancestors an untraced-code summary carries.
SUMMARY_FANIN_CAP = 16


@dataclass
class OntracConfig:
    """Tracer configuration; see the module docstring for semantics."""

    buffer_bytes: int = 16 * 1024 * 1024
    naive: bool = False  # store per-instruction records, disable all opts
    infer_intra_block: bool = True
    infer_traces: bool = True
    hot_trace_threshold: int = 50
    elide_redundant_loads: bool = True
    selective_functions: frozenset[str] | None = None
    input_forward_slice: bool = False
    record_control: bool = True
    record_war_waw: bool = False
    charge_overhead: bool = True
    stub_cycles: int = 25
    cycles_per_byte: int = 3
    #: fast path: intern record templates per static dependence site.
    #: None defers to the process-wide repro.fastpath config (default on).
    #: Purely an allocation strategy — stored records, bytes and graphs
    #: are identical either way.
    intern_records: bool | None = None
    #: fast path: store dependences in the columnar packed buffer
    #: (:class:`~repro.ontrac.packed.PackedTraceBuffer`) and answer
    #: queries via the indexed slicing engine.  None defers to the
    #: process-wide repro.fastpath config (default on).  Subsumes
    #: ``intern_records`` (no record objects exist to intern); again a
    #: pure storage strategy — stored rows, modeled bytes and graphs
    #: are identical to the legacy deque.
    packed_store: bool | None = None
    #: spill sink (trace lake): when set, sealed packed chunks are
    #: appended to this file as the run executes so the full stream
    #: survives the process (even a SIGKILLed one — the readable
    #: prefix recovers).  Requires the packed store; the hot emit path
    #: is unchanged (spilling happens only when a chunk seals).  Seal
    #: with :meth:`OnlineTracer.finish_spill` (the runner does this
    #: automatically after a traced run).
    spill_path: str | None = None

    @classmethod
    def unoptimized(cls, **overrides) -> "OntracConfig":
        """The paper's 16 B/instruction baseline."""
        cfg = cls(
            naive=True,
            infer_intra_block=False,
            infer_traces=False,
            elide_redundant_loads=False,
            input_forward_slice=False,
        )
        for key, value in overrides.items():
            setattr(cfg, key, value)
        return cfg

    @classmethod
    def generic_optimizations(cls, **overrides) -> "OntracConfig":
        cfg = cls()
        for key, value in overrides.items():
            setattr(cfg, key, value)
        return cfg


@dataclass
class OntracStats:
    instructions: int = 0
    stored: dict[str, int] = field(default_factory=dict)
    stored_bytes: int = 0
    skipped: dict[str, int] = field(default_factory=dict)
    hot_traces: int = 0

    def _bump(self, table: dict[str, int], key: str) -> None:
        table[key] = table.get(key, 0) + 1

    @property
    def bytes_per_instruction(self) -> float:
        return self.stored_bytes / self.instructions if self.instructions else 0.0


# A producer is either a concrete dynamic instruction
# ("n", seq, pc, block_instance, tid) or a summary of traced ancestors
# flowing through untraced code ("s", frozenset({(seq, pc), ...})).
_NODE = "n"
_SUMMARY = "s"


class OnlineTracer(Hook):
    """ONTRAC attached to one machine run."""

    def __init__(self, program: Program, config: OntracConfig | None = None):
        self.program = program
        self.config = config or OntracConfig()
        self.stats = OntracStats()
        self.machine: Machine | None = None
        # Storage strategy: the packed columnar store subsumes record
        # interning (there are no record objects left to intern); the
        # legacy deque picks between the interner and plain DepRecords.
        self._packed = fastpath_config.resolve(self.config.packed_store, "packed_store")
        if self.config.spill_path and not self._packed:
            raise ValueError("spill_path requires the packed store")
        if self._packed:
            if self.config.spill_path:
                # Local import: repro.lake sits above ontrac in the
                # layering and is only needed when spilling is on.
                from ..lake.format import SpillingPackedTraceBuffer

                self.buffer: TraceBuffer | PackedTraceBuffer = (
                    SpillingPackedTraceBuffer(
                        self.config.buffer_bytes, self.config.spill_path
                    )
                )
            else:
                self.buffer = PackedTraceBuffer(self.config.buffer_bytes)
            self._interner: RecordInterner | None = None
            self._rec = DepRecord
            self._emit = self._emit_packed
        else:
            self.buffer = TraceBuffer(self.config.buffer_bytes)
            if fastpath_config.resolve(self.config.intern_records, "intern_records"):
                self._interner = RecordInterner()
                self._rec = self._interner
                self._emit = self._emit_fast
            else:
                self._interner = None
                self._rec = DepRecord
                self._emit = self._emit_slow
        # Static structure: block leaders per global pc.
        self._leaders: set[int] = set()
        for cfg in build_cfgs(program).values():
            for block in cfg.blocks:
                self._leaders.add(block.start)
        self._control = ControlDependenceTracker(program) if self.config.record_control else None
        # Dynamic state.
        self._last_reg: dict[tuple[int, int], tuple] = {}
        self._last_mem: dict[int, tuple] = {}
        self._block_instance: dict[int, int] = {}
        self._next_instance = 0
        self._prev_call_ret: dict[int, bool] = {}
        self._prev_leader: dict[int, int] = {}
        self._transition_counts: dict[tuple[int, int], int] = {}
        self._hot_transitions: set[tuple[int, int]] = set()
        self._redundant_load: dict[int, tuple[int, int]] = {}
        self._derived_reg: set[tuple[int, int]] = set()
        self._derived_mem: set[int] = set()
        self._last_readers: dict[int, list[tuple[int, int, int]]] = {}
        if self._packed or self._interner is not None:
            self._install_fast_hook()

    # -- lifecycle -----------------------------------------------------------
    def attach(self, machine: Machine) -> "OnlineTracer":
        self.machine = machine
        machine.hooks.subscribe(self)
        return self

    def finish_spill(self) -> str | None:
        """Seal the spill file (tail chunk + footer index) if this
        tracer is spilling; no-op otherwise.  Idempotent; returns the
        spill path when spilling."""
        close = getattr(self.buffer, "close", None)
        if close is not None and getattr(self.buffer, "spill_path", None):
            return close()
        return None

    def dependence_graph(self) -> DynamicDependenceGraph | PackedDDG:
        """DDG over the records currently in the buffer.

        Packed store: an O(1) :class:`PackedDDG` view whose queries run
        straight off the columns (and which materializes the legacy
        dicts lazily).  Legacy store: the materialized graph.
        """
        if self._packed:
            return PackedDDG(self.buffer)
        return build_ddg(self.buffer, complete=self.buffer.stats.evicted == 0)

    # -- helpers -------------------------------------------------------------
    def _store(self, record: DepRecord) -> int:
        self.buffer.append(record)
        stats = self.stats
        stored = stats.stored
        key = record.kind.value
        stored[key] = stored.get(key, 0) + 1
        b = record.bytes
        stats.stored_bytes += b
        return b

    def _emit_slow(
        self,
        kind: DepKind,
        consumer_seq: int,
        consumer_pc: int,
        producer_seq: int = -1,
        producer_pc: int = -1,
        tid: int = 0,
    ) -> int:
        """Reference path: a fresh :class:`DepRecord` per dependence."""
        record = DepRecord(kind, consumer_seq, consumer_pc, producer_seq, producer_pc, tid)
        self.buffer.append(record)
        stats = self.stats
        stored = stats.stored
        key = kind.value
        stored[key] = stored.get(key, 0) + 1
        b = record.bytes
        stats.stored_bytes += b
        return b

    def _emit_fast(
        self,
        kind: DepKind,
        consumer_seq: int,
        consumer_pc: int,
        producer_seq: int = -1,
        producer_pc: int = -1,
        tid: int = 0,
    ) -> int:
        """Fast path: intern the static template and fuse the buffer
        append + byte accounting into one call (same observable effect
        as :meth:`_emit_slow`, record for record)."""
        interner = self._interner
        key = (kind, consumer_pc, producer_pc, tid)
        template = interner.templates.get(key)
        if template is None:
            template = interner.templates[key] = RecordTemplate(kind, consumer_pc, producer_pc, tid)
        else:
            interner.hits += 1
        record = InternedDepRecord(template, consumer_seq, consumer_seq - producer_seq)
        b = template.bytes
        buf = self.buffer
        buf.records.append(record)
        cur = buf.current_bytes + b
        bstats = buf.stats
        bstats.appended += 1
        bstats.appended_bytes += b
        if cur > bstats.peak_bytes:
            bstats.peak_bytes = cur
        buf.current_bytes = cur
        if cur > buf.capacity_bytes:
            buf.evict_overflow()
        stats = self.stats
        stored = stats.stored
        kv = template.kind_value
        stored[kv] = stored.get(kv, 0) + 1
        stats.stored_bytes += b
        return b

    def _emit_packed(
        self,
        kind: DepKind,
        consumer_seq: int,
        consumer_pc: int,
        producer_seq: int = -1,
        producer_pc: int = -1,
        tid: int = 0,
    ) -> int:
        """Packed path: append one columnar row (the buffer does the
        byte/eviction accounting); same observable stats as the other
        emit paths, record for record."""
        b = self.buffer.append_row(
            KIND_CODES[kind], consumer_seq, consumer_pc, producer_seq, producer_pc, tid
        )
        stats = self.stats
        stored = stats.stored
        key = kind.value
        stored[key] = stored.get(key, 0) + 1
        stats.stored_bytes += b
        return b

    def _install_fast_hook(self) -> None:
        """Compile a specialized ``on_instruction`` for this tracer.

        The closure mirrors :meth:`on_instruction` statement for
        statement but captures the config flags, the dependence maps,
        the buffer internals and the template cache as locals, and fuses
        record construction with buffer accounting — removing the
        per-instruction attribute-chasing and per-record call overhead
        the generic hook pays.  Installed as an instance attribute so
        the hook bus dispatches straight to it.  Observable behavior is
        identical to the generic hook (the differential suite holds the
        two paths to bit-identical outputs); config flags are frozen at
        construction, which the generic hook only nominally re-reads.
        """
        cfg = self.config
        naive = cfg.naive
        infer_intra_block = cfg.infer_intra_block
        infer_traces = cfg.infer_traces
        elide_redundant_loads = cfg.elide_redundant_loads
        input_forward_slice = cfg.input_forward_slice
        record_war_waw = cfg.record_war_waw
        sel = cfg.selective_functions
        charge_overhead = cfg.charge_overhead
        stub_cycles = cfg.stub_cycles
        cycles_per_byte = cfg.cycles_per_byte
        control = self._control
        observe = control.observe if control is not None else None
        stats = self.stats
        stored = stats.stored
        skipped = stats.skipped
        buffer = self.buffer
        maintain = self._maintain_blocks
        block_instance = self._block_instance
        last_reg = self._last_reg
        last_mem = self._last_mem
        last_readers = self._last_readers
        redundant_load = self._redundant_load
        derived_reg = self._derived_reg
        derived_mem = self._derived_mem
        hot_transitions = self._hot_transitions
        IN, LOAD, POP = Opcode.IN, Opcode.LOAD, Opcode.POP
        BR, BRZ, SPAWN = Opcode.BR, Opcode.BRZ, Opcode.SPAWN
        K_INSTR, K_REG, K_IREG = DepKind.INSTR, DepKind.REG, DepKind.IREG
        K_MEM, K_IMEM, K_SUMMARY = DepKind.MEM, DepKind.IMEM, DepKind.SUMMARY
        K_CONTROL, K_BRANCH = DepKind.CONTROL, DepKind.BRANCH
        K_WAR, K_WAW = DepKind.WAR, DepKind.WAW

        if self._packed:
            append_row = buffer.append_row
            kind_codes = KIND_CODES

            def emit(kind, consumer_seq, consumer_pc, producer_seq, producer_pc, tid):
                # The packed buffer fuses the append with every byte /
                # peak / eviction counter (see append_row); only the
                # tracer-level per-kind accounting lives here.
                b = append_row(
                    kind_codes[kind], consumer_seq, consumer_pc, producer_seq, producer_pc, tid
                )
                kv = kind.value
                stored[kv] = stored.get(kv, 0) + 1
                if b:
                    stats.stored_bytes += b
                return b

        else:
            buf_append = buffer.records.append
            bstats = buffer.stats
            capacity = buffer.capacity_bytes
            interner = self._interner
            templates = interner.templates
            make_template = RecordTemplate
            make_record = InternedDepRecord
            rec_new = object.__new__

            def emit(kind, consumer_seq, consumer_pc, producer_seq, producer_pc, tid):
                key = (kind, consumer_pc, producer_pc, tid)
                template = templates.get(key)
                if template is None:
                    template = templates[key] = make_template(kind, consumer_pc, producer_pc, tid)
                else:
                    interner.hits += 1
                # Record construction inlined (three slot stores, no ctor frame).
                rec = rec_new(make_record)
                rec.template = template
                rec.consumer_seq = consumer_seq
                rec.producer_delta = consumer_seq - producer_seq
                buf_append(rec)
                bstats.appended += 1
                kv = template.kind_value
                stored[kv] = stored.get(kv, 0) + 1
                b = template.bytes
                if b:
                    # Zero-byte kinds (CONTROL/IREG/IMEM — the majority under
                    # full optimization) skip all byte bookkeeping: += 0 and the
                    # capacity check cannot change any counter or evict.
                    cur = buffer.current_bytes + b
                    bstats.appended_bytes += b
                    if cur > bstats.peak_bytes:
                        bstats.peak_bytes = cur
                    buffer.current_bytes = cur
                    if cur > capacity:
                        buffer.evict_overflow()
                    stats.stored_bytes += b
                return b

        def fast_on_instruction(ev):
            stats.instructions += 1
            tid = ev.tid
            seq = ev.seq
            pc = ev.pc
            instr = ev.instr
            op = instr.opcode

            bytes_stored = maintain(ev)
            instance = block_instance.get(tid, 0)

            parent = observe(ev) if observe is not None else None
            traced = sel is None or instr.function in sel

            if input_forward_slice:
                derived = op is IN
                if not derived:
                    for reg, _ in ev.reg_reads:
                        if (tid, reg) in derived_reg:
                            derived = True
                            break
                if not derived:
                    for addr, _ in ev.mem_reads:
                        if addr in derived_mem:
                            derived = True
                            break
            else:
                derived = True

            store_deps = traced and derived
            if traced and not derived:
                skipped["input_filter"] = skipped.get("input_filter", 0) + 1

            if naive and traced:
                bytes_stored += emit(K_INSTR, seq, pc, -1, -1, tid)

            reg_reads = ev.reg_reads
            if reg_reads:
                seen_regs = set()
                for reg, _ in reg_reads:
                    if reg in seen_regs:
                        continue
                    seen_regs.add(reg)
                    producer = last_reg.get((tid, reg))
                    if producer is None:
                        continue
                    if not store_deps:
                        continue
                    if producer[0] == _SUMMARY:
                        for pseq, ppc in producer[1]:
                            bytes_stored += emit(K_SUMMARY, seq, pc, pseq, ppc, tid)
                        continue
                    _, pseq, ppc, pinstance, ptid = producer
                    if (
                        not naive
                        and infer_intra_block
                        and ptid == tid
                        and pinstance == instance
                    ):
                        key = (
                            "static_block"
                            if not (infer_traces and hot_transitions)
                            else "static_trace"
                        )
                        skipped[key] = skipped.get(key, 0) + 1
                        bytes_stored += emit(K_IREG, seq, pc, pseq, ppc, tid)
                        continue
                    bytes_stored += emit(K_REG, seq, pc, pseq, ppc, tid)

            mem_reads = ev.mem_reads
            if mem_reads:
                for addr, _ in mem_reads:
                    producer = last_mem.get(addr)
                    if record_war_waw:
                        readers = last_readers.setdefault(addr, [])
                        if len(readers) < 8:
                            readers.append((seq, pc, tid))
                    if producer is None or not store_deps:
                        continue
                    if producer[0] == _SUMMARY:
                        for pseq, ppc in producer[1]:
                            bytes_stored += emit(K_SUMMARY, seq, pc, pseq, ppc, tid)
                        continue
                    _, pseq, ppc, _, ptid = producer
                    if not naive and elide_redundant_loads and (op is LOAD or op is POP):
                        cached = redundant_load.get(pc)
                        if cached == (addr, pseq):
                            skipped["redundant_load"] = skipped.get("redundant_load", 0) + 1
                            bytes_stored += emit(K_IMEM, seq, pc, pseq, ppc, tid)
                            continue
                        redundant_load[pc] = (addr, pseq)
                    bytes_stored += emit(K_MEM, seq, pc, pseq, ppc, tid)

            if parent is not None and store_deps:
                bytes_stored += emit(
                    K_CONTROL, seq, pc, parent.branch_seq, parent.branch_pc, tid
                )
            if (op is BR or op is BRZ) and observe is not None and traced:
                bytes_stored += emit(K_BRANCH, seq, pc, -1, -1, tid)

            if record_war_waw and ev.mem_writes:
                for addr, _ in ev.mem_writes:
                    prev_writer = last_mem.get(addr)
                    if prev_writer is not None and prev_writer[0] == _NODE:
                        _, pseq, ppc, _, ptid = prev_writer
                        if ptid != tid:
                            bytes_stored += emit(K_WAW, seq, pc, pseq, ppc, tid)
                    for rseq, rpc, rtid in last_readers.pop(addr, []):
                        if rtid != tid:
                            bytes_stored += emit(K_WAR, seq, pc, rseq, rpc, tid)

            if traced:
                entry = (_NODE, seq, pc, instance, tid)
            else:
                ancestors = set()
                for reg, _ in ev.reg_reads:
                    producer = last_reg.get((tid, reg))
                    if producer is None:
                        continue
                    if producer[0] == _NODE:
                        ancestors.add((producer[1], producer[2]))
                    else:
                        ancestors.update(producer[1])
                for addr, _ in ev.mem_reads:
                    producer = last_mem.get(addr)
                    if producer is None:
                        continue
                    if producer[0] == _NODE:
                        ancestors.add((producer[1], producer[2]))
                    else:
                        ancestors.update(producer[1])
                if len(ancestors) > SUMMARY_FANIN_CAP:
                    ancestors = set(sorted(ancestors)[-SUMMARY_FANIN_CAP:])
                entry = (_SUMMARY, frozenset(ancestors))

            for reg, _ in ev.reg_writes:
                last_reg[(tid, reg)] = entry
                if input_forward_slice:
                    if derived:
                        derived_reg.add((tid, reg))
                    else:
                        derived_reg.discard((tid, reg))
            for addr, _ in ev.mem_writes:
                last_mem[addr] = entry
                if input_forward_slice:
                    if derived:
                        derived_mem.add(addr)
                    else:
                        derived_mem.discard(addr)

            if op is SPAWN:
                # The child's r0 is defined by the spawn's argument flow.
                child = ev.reg_writes[0][1]
                last_reg[(child, 0)] = entry
                if input_forward_slice and derived:
                    derived_reg.add((child, 0))

            if charge_overhead:
                machine = self.machine
                if machine is not None:
                    machine.add_overhead(stub_cycles + bytes_stored * cycles_per_byte)

        self.on_instruction = fast_on_instruction

    def _is_traced(self, ev: InstrEvent) -> bool:
        sel = self.config.selective_functions
        return sel is None or ev.instr.function in sel

    def _bump_instance(self, tid: int) -> None:
        self._next_instance += 1
        self._block_instance[tid] = self._next_instance

    def _maintain_blocks(self, ev: InstrEvent) -> int:
        """Track dynamic basic-block (or hot-trace) instances; returns the
        extra bytes charged for newly formed traces."""
        tid = ev.tid
        extra = 0
        if self._prev_call_ret.get(tid, True):
            # Entering code after call/ret (or thread start): always a new
            # inference region — the callee may have clobbered registers.
            self._bump_instance(tid)
            if ev.pc in self._leaders:
                self._prev_leader[tid] = ev.pc
        elif ev.pc in self._leaders:
            fused = False
            if self.config.infer_traces:
                prev = self._prev_leader.get(tid, -1)
                if prev >= 0:
                    key = (prev, ev.pc)
                    count = self._transition_counts.get(key, 0) + 1
                    self._transition_counts[key] = count
                    if key in self._hot_transitions:
                        fused = True
                    elif count >= self.config.hot_trace_threshold:
                        self._hot_transitions.add(key)
                        self.stats.hot_traces += 1
                        extra = TRACE_FORMATION_BYTES
                        self.stats.stored_bytes += extra
                        fused = True
            if not fused:
                self._bump_instance(tid)
            self._prev_leader[tid] = ev.pc
        op = ev.instr.opcode
        self._prev_call_ret[tid] = (
            op is Opcode.CALL or op is Opcode.ICALL or op is Opcode.RET
        )
        return extra

    # -- the hook --------------------------------------------------------------
    def on_instruction(self, ev: InstrEvent) -> None:
        cfg = self.config
        stats = self.stats
        stats.instructions += 1
        tid = ev.tid
        seq = ev.seq
        pc = ev.pc
        instr = ev.instr
        op = instr.opcode
        _emit = self._emit

        bytes_stored = self._maintain_blocks(ev)
        instance = self._block_instance.get(tid, 0)

        parent = self._control.observe(ev) if self._control is not None else None

        sel = cfg.selective_functions
        traced = sel is None or instr.function in sel

        # --- input-derived flag of this instruction -------------------------
        if cfg.input_forward_slice:
            derived = op is Opcode.IN
            if not derived:
                for reg, _ in ev.reg_reads:
                    if (tid, reg) in self._derived_reg:
                        derived = True
                        break
            if not derived:
                for addr, _ in ev.mem_reads:
                    if addr in self._derived_mem:
                        derived = True
                        break
        else:
            derived = True

        store_deps = traced and derived
        if traced and not derived:
            stats._bump(stats.skipped, "input_filter")

        # --- per-instruction record (naive mode only) ------------------------
        if cfg.naive and traced:
            bytes_stored += _emit(DepKind.INSTR, seq, pc, -1, -1, tid)

        # --- register dependences ---------------------------------------------
        reg_reads = ev.reg_reads
        if reg_reads:
            last_reg_get = self._last_reg.get
            seen_regs: set[int] = set()
            for reg, _ in reg_reads:
                if reg in seen_regs:
                    continue
                seen_regs.add(reg)
                producer = last_reg_get((tid, reg))
                if producer is None:
                    continue
                if not store_deps:
                    continue
                if producer[0] == _SUMMARY:
                    for pseq, ppc in producer[1]:
                        bytes_stored += _emit(DepKind.SUMMARY, seq, pc, pseq, ppc, tid)
                    continue
                _, pseq, ppc, pinstance, ptid = producer
                if (
                    not cfg.naive
                    and cfg.infer_intra_block
                    and ptid == tid
                    and pinstance == instance
                ):
                    key = "static_block" if not self._was_fused(instance) else "static_trace"
                    skipped = stats.skipped
                    skipped[key] = skipped.get(key, 0) + 1
                    # The edge is recoverable from the binary at query time:
                    # keep it in the buffer at zero modeled cost.
                    bytes_stored += _emit(DepKind.IREG, seq, pc, pseq, ppc, tid)
                    continue
                bytes_stored += _emit(DepKind.REG, seq, pc, pseq, ppc, tid)

        # --- memory dependences --------------------------------------------------
        mem_reads = ev.mem_reads
        if mem_reads:
            record_war_waw = cfg.record_war_waw
            for addr, _ in mem_reads:
                producer = self._last_mem.get(addr)
                if record_war_waw:
                    readers = self._last_readers.setdefault(addr, [])
                    if len(readers) < 8:
                        readers.append((seq, pc, tid))
                if producer is None or not store_deps:
                    continue
                if producer[0] == _SUMMARY:
                    for pseq, ppc in producer[1]:
                        bytes_stored += _emit(DepKind.SUMMARY, seq, pc, pseq, ppc, tid)
                    continue
                _, pseq, ppc, _, ptid = producer
                if (
                    not cfg.naive
                    and cfg.elide_redundant_loads
                    and (op is Opcode.LOAD or op is Opcode.POP)
                ):
                    cached = self._redundant_load.get(pc)
                    if cached == (addr, pseq):
                        skipped = stats.skipped
                        skipped["redundant_load"] = skipped.get("redundant_load", 0) + 1
                        # Recoverable from the previously stored identical
                        # dependence: keep the edge at zero modeled cost.
                        bytes_stored += _emit(DepKind.IMEM, seq, pc, pseq, ppc, tid)
                        continue
                    self._redundant_load[pc] = (addr, pseq)
                bytes_stored += _emit(DepKind.MEM, seq, pc, pseq, ppc, tid)

        # --- control dependence ------------------------------------------------
        if parent is not None and store_deps:
            bytes_stored += _emit(
                DepKind.CONTROL, seq, pc, parent.branch_seq, parent.branch_pc, tid
            )
        if (op is Opcode.BR or op is Opcode.BRZ) and self._control is not None and traced:
            bytes_stored += _emit(DepKind.BRANCH, seq, pc, -1, -1, tid)

        # --- WAR/WAW (multithreaded slicing extension) ----------------------------
        if cfg.record_war_waw and ev.mem_writes:
            for addr, _ in ev.mem_writes:
                prev_writer = self._last_mem.get(addr)
                if prev_writer is not None and prev_writer[0] == _NODE:
                    _, pseq, ppc, _, ptid = prev_writer
                    if ptid != tid:
                        bytes_stored += _emit(DepKind.WAW, seq, pc, pseq, ppc, tid)
                for rseq, rpc, rtid in self._last_readers.pop(addr, []):
                    if rtid != tid:
                        bytes_stored += _emit(DepKind.WAR, seq, pc, rseq, rpc, tid)

        # --- update last-writer metadata --------------------------------------------
        if traced:
            entry = (_NODE, seq, pc, instance, tid)
        else:
            # Summarize through untraced code: inherit the traced
            # ancestors of every input so chains are not broken.
            ancestors: set[tuple[int, int]] = set()
            for reg, _ in ev.reg_reads:
                producer = self._last_reg.get((tid, reg))
                if producer is None:
                    continue
                if producer[0] == _NODE:
                    ancestors.add((producer[1], producer[2]))
                else:
                    ancestors.update(producer[1])
            for addr, _ in ev.mem_reads:
                producer = self._last_mem.get(addr)
                if producer is None:
                    continue
                if producer[0] == _NODE:
                    ancestors.add((producer[1], producer[2]))
                else:
                    ancestors.update(producer[1])
            if len(ancestors) > SUMMARY_FANIN_CAP:
                ancestors = set(sorted(ancestors)[-SUMMARY_FANIN_CAP:])
            entry = (_SUMMARY, frozenset(ancestors))

        for reg, _ in ev.reg_writes:
            self._last_reg[(tid, reg)] = entry
            if cfg.input_forward_slice:
                if derived:
                    self._derived_reg.add((tid, reg))
                else:
                    self._derived_reg.discard((tid, reg))
        for addr, _ in ev.mem_writes:
            self._last_mem[addr] = entry
            if cfg.input_forward_slice:
                if derived:
                    self._derived_mem.add(addr)
                else:
                    self._derived_mem.discard(addr)

        if op is Opcode.SPAWN:
            # The child's r0 is defined by the spawn's argument flow.
            child = ev.reg_writes[0][1]
            self._last_reg[(child, 0)] = entry
            if cfg.input_forward_slice and derived:
                self._derived_reg.add((child, 0))

        # --- overhead accounting --------------------------------------------------
        if cfg.charge_overhead and self.machine is not None:
            self.machine.add_overhead(cfg.stub_cycles + bytes_stored * cfg.cycles_per_byte)

    def publish_telemetry(self, registry) -> None:
        """Dump tracer stats (the paper's B/instr figures) into a
        :class:`~repro.telemetry.MetricsRegistry`; call after the run."""
        stats = self.stats
        registry.counter("ontrac.instructions").inc(stats.instructions)
        registry.counter("ontrac.stored_bytes").inc(stats.stored_bytes)
        registry.counter("ontrac.hot_traces").inc(stats.hot_traces)
        if self._interner is not None:
            registry.counter("ontrac.records_interned").inc(self._interner.hits)
            registry.gauge("ontrac.record_templates").set(len(self._interner.templates))
        for kind, count in sorted(stats.stored.items()):
            registry.counter(f"ontrac.records.stored.{kind}").inc(count)
        for reason, count in sorted(stats.skipped.items()):
            registry.counter(f"ontrac.records.elided.{reason}").inc(count)
        registry.gauge("ontrac.bytes_per_instruction").set(stats.bytes_per_instruction)
        buf = self.buffer
        registry.gauge("ontrac.buffer.capacity_bytes").set(buf.capacity_bytes)
        registry.gauge("ontrac.buffer.peak_bytes").set_max(buf.stats.peak_bytes)
        registry.gauge("ontrac.buffer.window_instructions").set(buf.window_instructions())
        registry.counter("ontrac.buffer.evicted_records").inc(buf.stats.evicted)
        if self._packed:
            # Deterministic column-payload figure (allocated chunk bytes),
            # NOT process residency — tracemalloc-measured residency lives
            # in benchmarks/bench_slicing.py where determinism is not
            # required for golden comparisons.
            registry.gauge("ontrac.store.resident_bytes").set(buf.resident_bytes())
            registry.gauge("ontrac.store.chunks").set(buf.chunk_count)

    def _was_fused(self, instance: int) -> bool:
        """Attribution only: whether this inference region spans a trace.

        We do not track fusion per instance (it would cost memory for a
        stat); attribute to traces whenever trace inference is on and at
        least one hot trace exists.
        """
        return self.config.infer_traces and bool(self._hot_transitions)
