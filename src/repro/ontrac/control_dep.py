"""Online dynamic control-dependence detection.

Implements the region-stack algorithm of Xin & Zhang (ISSTA'07, the
paper's [11]): every executed conditional branch opens a *region* that
closes when control reaches the branch's immediate post-dominator in
the same invocation; the dynamic control parent of an instruction is
the branch on top of its thread's open-region stack.

Two details make this exact across procedures and recursion:

* each stack entry records the *call depth* at which the branch
  executed, so a region whose ipdom is the function exit closes when
  the invocation returns (depth drops below the entry's depth), and a
  recursive re-execution of the same branch never matches an outer
  invocation's ipdom;
* callee instructions inherit the caller's open regions (one stack per
  thread, not per frame), giving interprocedural dynamic control
  dependence for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.cfg import build_cfgs
from ..isa.dominance import Dominance, branch_ipdom_table
from ..isa.instructions import Opcode
from ..isa.program import Program
from ..vm.events import InstrEvent


@dataclass(slots=True)
class Region:
    branch_seq: int
    branch_pc: int
    ipdom_pc: int  # -1 when the region extends to the invocation's exit
    depth: int


class ControlDependenceTracker:
    """Per-thread open-region stacks over one program."""

    def __init__(self, program: Program):
        self.program = program
        self.ipdom_pc: dict[int, int] = {}
        for name, cfg in build_cfgs(program).items():
            dom = Dominance(cfg)
            self.ipdom_pc.update(branch_ipdom_table(cfg, dom))
        self._stacks: dict[int, list[Region]] = {}
        self._depths: dict[int, int] = {}

    def observe(self, ev: InstrEvent) -> Region | None:
        """Process one executed instruction; returns its dynamic control
        parent (the innermost open region), or None at top level."""
        tid = ev.tid
        stack = self._stacks.get(tid)
        if stack is None:
            stack = self._stacks[tid] = []
        depth = self._depths.get(tid, 0)
        pc = ev.pc
        parent = None
        while stack:
            top = stack[-1]
            top_depth = top.depth
            if top_depth > depth or (top_depth == depth and top.ipdom_pc == pc):
                stack.pop()
            else:
                parent = top
                break
        op = ev.instr.opcode
        if op is Opcode.BR or op is Opcode.BRZ:
            # A re-executed loop branch replaces its own stale region
            # (same reconvergence point; the newest instance is the true
            # parent) so the stack stays bounded across iterations.
            if parent is not None and parent.branch_pc == pc and parent.depth == depth:
                stack.pop()
            stack.append(Region(ev.seq, pc, self.ipdom_pc.get(pc, -1), depth))
        elif op is Opcode.CALL or op is Opcode.ICALL:
            self._depths[tid] = depth + 1
        elif op is Opcode.RET:
            self._depths[tid] = depth - 1
        return parent

    def depth(self, tid: int) -> int:
        return self._depths.get(tid, 0)

    def open_regions(self, tid: int) -> list[Region]:
        return list(self._stacks.get(tid, []))
