"""Compact whole-execution-trace (WET) dependence representation.

§2.1 credits the prior work [18] ("Cost Effective Dynamic Program
Slicing", PLDI'04) with "a highly compact dependence graph
representation that made [slicing] highly efficient — dynamic slices
for program runs of several hundred million instructions can be
computed in a few seconds".  The key idea: dynamic dependence edges are
overwhelmingly *repetitions of static edges*.  Instead of one record
per dynamic edge, the WET form keeps one entry per static
``(consumer pc, producer pc)`` pair carrying the list of
``(consumer seq, producer seq)`` timestamp pairs — and runs of
constant-offset timestamps (loop-carried dependences execute in
lockstep) collapse further into strided intervals.

This module implements that compaction over our DDG:

* :func:`compact` — DDG -> :class:`CompactWET`;
* :meth:`CompactWET.to_ddg` — exact inverse (lossless);
* :meth:`CompactWET.producers_of` — direct slicing queries on the
  compact form, so :func:`compact_backward_slice` never materializes
  the full graph;
* modeled size accounting, so E1's storyline ("the compact form is what
  made offline slicing fast; *generating* it stayed expensive") can be
  quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .ddg import DynamicDependenceGraph
from .records import DepKind

#: modeled bytes: one static edge entry (pcs + kind + count).
STATIC_EDGE_BYTES = 12
#: modeled bytes: one strided interval (start pair, stride, length).
INTERVAL_BYTES = 12
#: modeled bytes: one raw dynamic edge (the uncompacted baseline).
RAW_EDGE_BYTES = 16


@dataclass(frozen=True)
class Interval:
    """Timestamp pairs (c0 + i*stride_c, p0 + i*stride_p) for i < length."""

    c0: int
    p0: int
    stride_c: int
    stride_p: int
    length: int

    def pairs(self) -> Iterable[tuple[int, int]]:
        for i in range(self.length):
            yield self.c0 + i * self.stride_c, self.p0 + i * self.stride_p

    def producer_for(self, consumer_seq: int) -> int | None:
        if self.stride_c == 0:
            return self.p0 if consumer_seq == self.c0 else None
        delta = consumer_seq - self.c0
        if delta < 0 or delta % self.stride_c:
            return None
        i = delta // self.stride_c
        if i >= self.length:
            return None
        return self.p0 + i * self.stride_p


@dataclass
class StaticEdge:
    """All dynamic instances of one static dependence edge."""

    consumer_pc: int
    producer_pc: int
    kind: DepKind
    intervals: list[Interval] = field(default_factory=list)

    @property
    def dynamic_count(self) -> int:
        return sum(iv.length for iv in self.intervals)

    @property
    def modeled_bytes(self) -> int:
        return STATIC_EDGE_BYTES + len(self.intervals) * INTERVAL_BYTES


def _compress_pairs(pairs: list[tuple[int, int]]) -> list[Interval]:
    """Greedy run-length compression of sorted timestamp pairs into
    constant-stride intervals."""
    intervals: list[Interval] = []
    i, n = 0, len(pairs)
    while i < n:
        c0, p0 = pairs[i]
        if i + 1 < n:
            stride_c = pairs[i + 1][0] - c0
            stride_p = pairs[i + 1][1] - p0
            length = 2
            while (
                i + length < n
                and pairs[i + length][0] - pairs[i + length - 1][0] == stride_c
                and pairs[i + length][1] - pairs[i + length - 1][1] == stride_p
            ):
                length += 1
            if length >= 2 and stride_c > 0:
                intervals.append(Interval(c0, p0, stride_c, stride_p, length))
                i += length
                continue
        intervals.append(Interval(c0, p0, 0, 0, 1))
        i += 1
    return intervals


@dataclass
class CompactWET:
    """The compacted dependence representation."""

    #: (consumer pc, producer pc, kind) -> StaticEdge
    edges: dict[tuple[int, int, DepKind], StaticEdge] = field(default_factory=dict)
    #: seq -> pc for every dynamic node (needed to answer pc queries).
    node_pcs: dict[int, int] = field(default_factory=dict)
    node_tids: dict[int, int] = field(default_factory=dict)
    #: consumer pc -> static edges consuming at that pc (slicing index).
    _by_consumer: dict[int, list[StaticEdge]] = field(default_factory=dict)
    raw_edges: int = 0

    # -- size accounting -------------------------------------------------
    @property
    def modeled_bytes(self) -> int:
        return sum(e.modeled_bytes for e in self.edges.values())

    @property
    def raw_bytes(self) -> int:
        return self.raw_edges * RAW_EDGE_BYTES

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / self.modeled_bytes if self.modeled_bytes else 1.0

    # -- queries -----------------------------------------------------------
    def producers_of(self, consumer_seq: int) -> list[tuple[int, DepKind]]:
        """Dynamic producers of one dynamic instance, from the compact form."""
        pc = self.node_pcs.get(consumer_seq)
        if pc is None:
            return []
        found: list[tuple[int, DepKind]] = []
        for edge in self._by_consumer.get(pc, []):
            for interval in edge.intervals:
                producer = interval.producer_for(consumer_seq)
                if producer is not None:
                    found.append((producer, edge.kind))
        return found

    def to_ddg(self) -> DynamicDependenceGraph:
        """Exact decompression back to the full DDG."""
        ddg = DynamicDependenceGraph(complete=True)
        for seq, pc in self.node_pcs.items():
            ddg.add_node(seq, pc, self.node_tids.get(seq, 0))
        for (consumer_pc, producer_pc, kind), edge in self.edges.items():
            for interval in edge.intervals:
                for consumer_seq, producer_seq in interval.pairs():
                    ddg.add_edge(
                        consumer_seq,
                        consumer_pc,
                        producer_seq,
                        producer_pc,
                        kind,
                        tid=self.node_tids.get(consumer_seq, 0),
                    )
        return ddg


def compact(ddg: DynamicDependenceGraph) -> CompactWET:
    """Compress a DDG into the WET form (lossless)."""
    grouped: dict[tuple[int, int, DepKind], list[tuple[int, int]]] = {}
    wet = CompactWET()
    for node in ddg.nodes.values():
        wet.node_pcs[node.seq] = node.pc
        wet.node_tids[node.seq] = node.tid
    for consumer_seq, deps in ddg.backward.items():
        consumer_pc = ddg.nodes[consumer_seq].pc
        for producer_seq, kind in deps:
            producer_pc = ddg.nodes[producer_seq].pc
            grouped.setdefault((consumer_pc, producer_pc, kind), []).append(
                (consumer_seq, producer_seq)
            )
            wet.raw_edges += 1
    for key, pairs in grouped.items():
        pairs.sort()
        edge = StaticEdge(
            consumer_pc=key[0],
            producer_pc=key[1],
            kind=key[2],
            intervals=_compress_pairs(pairs),
        )
        wet.edges[key] = edge
        wet._by_consumer.setdefault(key[0], []).append(edge)
    return wet


def compact_backward_slice(
    wet: CompactWET, criterion: int, kinds: frozenset[DepKind] | None = None
) -> set[int]:
    """Backward slice computed directly on the compact representation —
    the operation [18] made fast enough for interactive debugging."""
    if criterion not in wet.node_pcs:
        raise KeyError(f"criterion seq {criterion} unknown to this WET")
    from collections import deque

    seen = {criterion}
    queue = deque([criterion])
    while queue:
        seq = queue.popleft()
        for producer, kind in wet.producers_of(seq):
            if kinds is not None and kind not in kinds:
                continue
            if producer not in seen:
                seen.add(producer)
                queue.append(producer)
    return seen
