"""Dependence records and the byte-accounting encoder model.

ONTRAC's headline numbers are about *stored bytes per executed
instruction*: 16 B/instr for naive tracing versus 0.8 B/instr with all
optimizations, which is what lets a 16 MB buffer hold a 20 M-instruction
history window.  We therefore model the encoding explicitly: every
record type has a modeled wire size (what the paper's compact encoding
would spend), and the circular buffer evicts by those bytes.

Sizes (modeled on delta-encoded producer references):

=====================  =====  =========================================
record                 bytes  contents
=====================  =====  =========================================
INSTR (naive only)       4    pc of the executed instruction
REG_DEP                  6    producer seq delta + register id
MEM_DEP                  8    producer seq delta + address delta
CONTROL (branch)         1    branch outcome bit stream, amortized
CONTROL (edge)           0    derivable from outcomes + static CFG
SUMMARY                  6    traced ancestor reference
WAR / WAW                8    like MEM_DEP (multithreaded slicing ext.)
TRACE_FORM              16    one-time hot-trace registration
=====================  =====  =========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DepKind(enum.Enum):
    # Members are singletons and enums compare by identity, so identity
    # hashing is equivalent to Enum's name-based hash — but resolves at
    # C speed in the interner's and RECORD_BYTES' dict lookups.
    __hash__ = object.__hash__

    INSTR = "instr"  # naive-mode per-instruction record
    REG = "reg"  # register data dependence
    MEM = "mem"  # memory data dependence (RAW)
    IREG = "ireg"  # register dep recoverable from the binary (0 bytes)
    IMEM = "imem"  # memory dep recoverable from a prior record (0 bytes)
    CONTROL = "control"  # dynamic control dependence edge
    BRANCH = "branch"  # branch outcome record (1 byte, no edge)
    SUMMARY = "summary"  # dependence through untraced code
    WAR = "war"  # write-after-read (multithreaded extension)
    WAW = "waw"  # write-after-write (multithreaded extension)


#: modeled stored size per record kind, in bytes.
RECORD_BYTES: dict[DepKind, int] = {
    DepKind.INSTR: 4,
    DepKind.REG: 6,
    DepKind.MEM: 8,
    DepKind.IREG: 0,
    DepKind.IMEM: 0,
    DepKind.CONTROL: 0,
    DepKind.BRANCH: 1,
    DepKind.SUMMARY: 6,
    DepKind.WAR: 8,
    DepKind.WAW: 8,
}

TRACE_FORMATION_BYTES = 16

# --- packed-store encoding tables ------------------------------------------
# The columnar store (repro.ontrac.packed) keeps one unsigned byte per
# row for the kind; these tables fix the code assignment and give the
# hot paths O(1) list lookups for the modeled byte size.
#: DepKind -> small integer code used in the packed kind column.
KIND_CODES: dict[DepKind, int] = {kind: code for code, kind in enumerate(DepKind)}
#: inverse of :data:`KIND_CODES` (code -> DepKind), indexable by code.
KIND_BY_CODE: tuple[DepKind, ...] = tuple(DepKind)
#: modeled stored bytes per kind code (RECORD_BYTES, indexable by code).
KIND_MBYTES: tuple[int, ...] = tuple(RECORD_BYTES[kind] for kind in DepKind)
#: codes of the node-only record kinds (INSTR/BRANCH: producer fields
#: are unused and reconstruct as -1).
NODE_KIND_CODES: frozenset[int] = frozenset(
    (KIND_CODES[DepKind.INSTR], KIND_CODES[DepKind.BRANCH])
)


@dataclass(frozen=True)
class DepRecord:
    """One stored dependence: ``consumer`` depends on ``producer``.

    ``seq`` values are dynamic instruction numbers; ``pc`` values are
    static instruction indices (the statement identity used by slicing
    reports).  For INSTR/BRANCH records the producer fields are unused.
    """

    kind: DepKind
    consumer_seq: int
    consumer_pc: int
    producer_seq: int = -1
    producer_pc: int = -1
    tid: int = 0

    @property
    def bytes(self) -> int:
        return RECORD_BYTES[self.kind]

    def __str__(self) -> str:
        if self.kind in (DepKind.INSTR, DepKind.BRANCH):
            return f"{self.kind.value}@{self.consumer_seq}(pc={self.consumer_pc})"
        return (
            f"{self.kind.value}: {self.consumer_seq}(pc={self.consumer_pc})"
            f" -> {self.producer_seq}(pc={self.producer_pc})"
        )


# ---------------------------------------------------------------------------
# Fast path: interned templates + delta-encoded instances
# ---------------------------------------------------------------------------
#
# A hot loop stores the same *static* dependence over and over: same
# consumer pc, same producer pc, same kind, same thread — only the two
# dynamic sequence numbers move.  That static part is the "template"
# (the same observation behind ONTRAC's inference: repeated dynamic
# dependences are determined by the code), so the fast tracer interns
# one template per static dependence site and each stored record keeps
# just a template pointer, its consumer seq, and the delta to its
# producer seq — mirroring the modeled delta encoding in RECORD_BYTES.


class RecordTemplate:
    """The static part of a dependence, shared by every instance."""

    __slots__ = ("kind", "kind_value", "consumer_pc", "producer_pc", "tid", "bytes")

    def __init__(self, kind: DepKind, consumer_pc: int, producer_pc: int, tid: int):
        self.kind = kind
        self.kind_value = kind.value
        self.consumer_pc = consumer_pc
        self.producer_pc = producer_pc
        self.tid = tid
        self.bytes = RECORD_BYTES[kind]


class InternedDepRecord:
    """One dependence instance over an interned template.

    Read-compatible with :class:`DepRecord` (same attribute API), but
    construction touches three slots instead of six frozen-dataclass
    fields; everything static reads through the shared template (the
    fast append path charges ``template.bytes`` directly, so the
    per-record properties only run in post-run analysis).
    """

    __slots__ = ("template", "consumer_seq", "producer_delta")

    def __init__(self, template: RecordTemplate, consumer_seq: int, producer_delta: int):
        self.template = template
        self.consumer_seq = consumer_seq
        self.producer_delta = producer_delta

    @property
    def kind(self) -> DepKind:
        return self.template.kind

    @property
    def bytes(self) -> int:
        return self.template.bytes

    @property
    def consumer_pc(self) -> int:
        return self.template.consumer_pc

    @property
    def producer_seq(self) -> int:
        return self.consumer_seq - self.producer_delta

    @property
    def producer_pc(self) -> int:
        return self.template.producer_pc

    @property
    def tid(self) -> int:
        return self.template.tid

    def __str__(self) -> str:
        kind = self.kind
        if kind in (DepKind.INSTR, DepKind.BRANCH):
            return f"{kind.value}@{self.consumer_seq}(pc={self.consumer_pc})"
        return (
            f"{kind.value}: {self.consumer_seq}(pc={self.consumer_pc})"
            f" -> {self.producer_seq}(pc={self.producer_pc})"
        )


class RecordInterner:
    """Per-static-site template cache; call it like the DepRecord ctor."""

    __slots__ = ("templates", "hits")

    def __init__(self) -> None:
        self.templates: dict[tuple, RecordTemplate] = {}
        self.hits = 0

    def __call__(
        self,
        kind: DepKind,
        consumer_seq: int,
        consumer_pc: int,
        producer_seq: int = -1,
        producer_pc: int = -1,
        tid: int = 0,
    ) -> InternedDepRecord:
        key = (kind, consumer_pc, producer_pc, tid)
        template = self.templates.get(key)
        if template is None:
            template = self.templates[key] = RecordTemplate(kind, consumer_pc, producer_pc, tid)
        else:
            self.hits += 1
        return InternedDepRecord(template, consumer_seq, consumer_seq - producer_seq)
