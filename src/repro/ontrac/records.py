"""Dependence records and the byte-accounting encoder model.

ONTRAC's headline numbers are about *stored bytes per executed
instruction*: 16 B/instr for naive tracing versus 0.8 B/instr with all
optimizations, which is what lets a 16 MB buffer hold a 20 M-instruction
history window.  We therefore model the encoding explicitly: every
record type has a modeled wire size (what the paper's compact encoding
would spend), and the circular buffer evicts by those bytes.

Sizes (modeled on delta-encoded producer references):

=====================  =====  =========================================
record                 bytes  contents
=====================  =====  =========================================
INSTR (naive only)       4    pc of the executed instruction
REG_DEP                  6    producer seq delta + register id
MEM_DEP                  8    producer seq delta + address delta
CONTROL (branch)         1    branch outcome bit stream, amortized
CONTROL (edge)           0    derivable from outcomes + static CFG
SUMMARY                  6    traced ancestor reference
WAR / WAW                8    like MEM_DEP (multithreaded slicing ext.)
TRACE_FORM              16    one-time hot-trace registration
=====================  =====  =========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DepKind(enum.Enum):
    INSTR = "instr"  # naive-mode per-instruction record
    REG = "reg"  # register data dependence
    MEM = "mem"  # memory data dependence (RAW)
    IREG = "ireg"  # register dep recoverable from the binary (0 bytes)
    IMEM = "imem"  # memory dep recoverable from a prior record (0 bytes)
    CONTROL = "control"  # dynamic control dependence edge
    BRANCH = "branch"  # branch outcome record (1 byte, no edge)
    SUMMARY = "summary"  # dependence through untraced code
    WAR = "war"  # write-after-read (multithreaded extension)
    WAW = "waw"  # write-after-write (multithreaded extension)


#: modeled stored size per record kind, in bytes.
RECORD_BYTES: dict[DepKind, int] = {
    DepKind.INSTR: 4,
    DepKind.REG: 6,
    DepKind.MEM: 8,
    DepKind.IREG: 0,
    DepKind.IMEM: 0,
    DepKind.CONTROL: 0,
    DepKind.BRANCH: 1,
    DepKind.SUMMARY: 6,
    DepKind.WAR: 8,
    DepKind.WAW: 8,
}

TRACE_FORMATION_BYTES = 16


@dataclass(frozen=True)
class DepRecord:
    """One stored dependence: ``consumer`` depends on ``producer``.

    ``seq`` values are dynamic instruction numbers; ``pc`` values are
    static instruction indices (the statement identity used by slicing
    reports).  For INSTR/BRANCH records the producer fields are unused.
    """

    kind: DepKind
    consumer_seq: int
    consumer_pc: int
    producer_seq: int = -1
    producer_pc: int = -1
    tid: int = 0

    @property
    def bytes(self) -> int:
        return RECORD_BYTES[self.kind]

    def __str__(self) -> str:
        if self.kind in (DepKind.INSTR, DepKind.BRANCH):
            return f"{self.kind.value}@{self.consumer_seq}(pc={self.consumer_pc})"
        return (
            f"{self.kind.value}: {self.consumer_seq}(pc={self.consumer_pc})"
            f" -> {self.producer_seq}(pc={self.producer_pc})"
        )
