"""The two-phase offline baseline ONTRAC replaces (§2.1, citing [18,19]).

Phase 1 runs the instrumented program and streams a full address +
control-flow trace "to a file" (modeled at 16 bytes per executed
instruction with file-I/O cycle costs).  Phase 2 post-processes the
collected trace into the compact dynamic dependence graph — the step
the paper measured at up to an hour for seconds of execution, i.e. the
~540x overall slowdown that motivated ONTRAC.

The post-processing here performs the real dependence computation (the
resulting DDG is byte-for-byte what :class:`repro.ontrac.tracer.OnlineTracer`
produces in naive mode, minus buffer eviction), while the cycle charges
model the paper's cost regime so E1 can report the 19x-vs-540x shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import Opcode
from ..isa.program import Program
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine
from .control_dep import ControlDependenceTracker
from .ddg import DynamicDependenceGraph
from .records import DepKind


@dataclass
class OfflineConfig:
    stub_cycles: int = 25  # DBT dispatch + stubs during collection
    bytes_per_instruction: int = 16  # raw address+control trace entry
    io_cycles_per_byte: int = 6  # streaming the trace to a file
    postprocess_cycles_per_instruction: int = 800  # graph build + compaction


@dataclass
class _RawEntry:
    seq: int
    pc: int
    tid: int
    reg_reads: tuple
    reg_writes: tuple
    mem_reads: tuple
    mem_writes: tuple
    parent_seq: int
    parent_pc: int
    is_spawn: bool
    spawn_child: int


@dataclass
class OfflineStats:
    instructions: int = 0
    trace_bytes: int = 0
    collection_cycles: int = 0
    postprocess_cycles: int = 0

    @property
    def total_overhead_cycles(self) -> int:
        return self.collection_cycles + self.postprocess_cycles


class OfflineTracer(Hook):
    """Collects the raw trace during execution; ``postprocess()`` builds
    the full (unbounded) DDG afterwards."""

    def __init__(self, program: Program, config: OfflineConfig | None = None):
        self.program = program
        self.config = config or OfflineConfig()
        self.entries: list[_RawEntry] = []
        self.stats = OfflineStats()
        self._control = ControlDependenceTracker(program)
        self.machine: Machine | None = None

    def attach(self, machine: Machine) -> "OfflineTracer":
        self.machine = machine
        machine.hooks.subscribe(self)
        return self

    def on_instruction(self, ev: InstrEvent) -> None:
        cfg = self.config
        parent = self._control.observe(ev)
        is_spawn = ev.instr.opcode is Opcode.SPAWN
        self.entries.append(
            _RawEntry(
                seq=ev.seq,
                pc=ev.pc,
                tid=ev.tid,
                reg_reads=ev.reg_reads,
                reg_writes=ev.reg_writes,
                mem_reads=ev.mem_reads,
                mem_writes=ev.mem_writes,
                parent_seq=parent.branch_seq if parent else -1,
                parent_pc=parent.branch_pc if parent else -1,
                is_spawn=is_spawn,
                spawn_child=ev.reg_writes[0][1] if is_spawn else -1,
            )
        )
        self.stats.instructions += 1
        self.stats.trace_bytes += cfg.bytes_per_instruction
        cycles = cfg.stub_cycles + cfg.bytes_per_instruction * cfg.io_cycles_per_byte
        self.stats.collection_cycles += cycles
        if self.machine is not None:
            self.machine.add_overhead(cycles)

    def postprocess(self) -> DynamicDependenceGraph:
        """Phase 2: turn the raw trace into the full DDG.

        Charges ``postprocess_cycles_per_instruction`` per trace entry
        to :attr:`stats` (not to the machine — the program is no longer
        running; E1 adds collection and post-processing cycles together
        the way the paper's end-to-end numbers do).
        """
        ddg = DynamicDependenceGraph(complete=True)
        last_reg: dict[tuple[int, int], tuple[int, int]] = {}
        last_mem: dict[int, tuple[int, int]] = {}
        for entry in self.entries:
            tid = entry.tid
            ddg.add_node(entry.seq, entry.pc, tid)
            seen: set[int] = set()
            for reg, _ in entry.reg_reads:
                if reg in seen:
                    continue
                seen.add(reg)
                producer = last_reg.get((tid, reg))
                if producer is not None:
                    ddg.add_edge(entry.seq, entry.pc, producer[0], producer[1], DepKind.REG, tid)
            for addr, _ in entry.mem_reads:
                producer = last_mem.get(addr)
                if producer is not None:
                    ddg.add_edge(entry.seq, entry.pc, producer[0], producer[1], DepKind.MEM, tid)
            if entry.parent_seq >= 0:
                ddg.add_edge(
                    entry.seq, entry.pc, entry.parent_seq, entry.parent_pc, DepKind.CONTROL, tid
                )
            for reg, _ in entry.reg_writes:
                last_reg[(tid, reg)] = (entry.seq, entry.pc)
            for addr, _ in entry.mem_writes:
                last_mem[addr] = (entry.seq, entry.pc)
            if entry.is_spawn:
                last_reg[(entry.spawn_child, 0)] = (entry.seq, entry.pc)
        self.stats.postprocess_cycles = (
            len(self.entries) * self.config.postprocess_cycles_per_instruction
        )
        return ddg
