"""The two-phase offline baseline ONTRAC replaces (§2.1, citing [18,19]).

Phase 1 runs the instrumented program and streams a full address +
control-flow trace "to a file" (modeled at 16 bytes per executed
instruction with file-I/O cycle costs).  Phase 2 post-processes the
collected trace into the compact dynamic dependence graph — the step
the paper measured at up to an hour for seconds of execution, i.e. the
~540x overall slowdown that motivated ONTRAC.

The post-processing here performs the real dependence computation (the
resulting DDG is byte-for-byte what :class:`repro.ontrac.tracer.OnlineTracer`
produces in naive mode, minus buffer eviction), while the cycle charges
model the paper's cost regime so E1 can report the 19x-vs-540x shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import Opcode
from ..isa.program import Program
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine
from .control_dep import ControlDependenceTracker
from .ddg import DynamicDependenceGraph
from .records import DepKind


@dataclass
class OfflineConfig:
    stub_cycles: int = 25  # DBT dispatch + stubs during collection
    bytes_per_instruction: int = 16  # raw address+control trace entry
    io_cycles_per_byte: int = 6  # streaming the trace to a file
    postprocess_cycles_per_instruction: int = 800  # graph build + compaction


# One raw trace entry per executed instruction, kept as a plain tuple
# (collection runs inline with the guest; a constructor call per
# instruction would dominate the modeled "write to file" phase):
# (seq, pc, tid, reg_reads, reg_writes, mem_reads, mem_writes,
#  parent_seq, parent_pc, spawn_child)  — spawn_child is -1 for
# non-spawn instructions.
_RawEntry = tuple


@dataclass
class OfflineStats:
    instructions: int = 0
    trace_bytes: int = 0
    collection_cycles: int = 0
    postprocess_cycles: int = 0

    @property
    def total_overhead_cycles(self) -> int:
        return self.collection_cycles + self.postprocess_cycles


class OfflineTracer(Hook):
    """Collects the raw trace during execution; ``postprocess()`` builds
    the full (unbounded) DDG afterwards."""

    def __init__(self, program: Program, config: OfflineConfig | None = None):
        self.program = program
        self.config = config or OfflineConfig()
        self.entries: list[_RawEntry] = []
        self.stats = OfflineStats()
        self._control = ControlDependenceTracker(program)
        self.machine: Machine | None = None

    def attach(self, machine: Machine) -> "OfflineTracer":
        self.machine = machine
        machine.hooks.subscribe(self)
        return self

    def on_instruction(self, ev: InstrEvent) -> None:
        cfg = self.config
        parent = self._control.observe(ev)
        is_spawn = ev.instr.opcode is Opcode.SPAWN
        self.entries.append(
            (
                ev.seq,
                ev.pc,
                ev.tid,
                ev.reg_reads,
                ev.reg_writes,
                ev.mem_reads,
                ev.mem_writes,
                parent.branch_seq if parent else -1,
                parent.branch_pc if parent else -1,
                ev.reg_writes[0][1] if is_spawn else -1,
            )
        )
        stats = self.stats
        stats.instructions += 1
        stats.trace_bytes += cfg.bytes_per_instruction
        cycles = cfg.stub_cycles + cfg.bytes_per_instruction * cfg.io_cycles_per_byte
        stats.collection_cycles += cycles
        if self.machine is not None:
            self.machine.add_overhead(cycles)

    def postprocess(self) -> DynamicDependenceGraph:
        """Phase 2: turn the raw trace into the full DDG.

        Charges ``postprocess_cycles_per_instruction`` per trace entry
        to :attr:`stats` (not to the machine — the program is no longer
        running; E1 adds collection and post-processing cycles together
        the way the paper's end-to-end numbers do).
        """
        ddg = DynamicDependenceGraph(complete=True)
        last_reg: dict[tuple[int, int], tuple[int, int]] = {}
        last_mem: dict[int, tuple[int, int]] = {}
        add_node = ddg.add_node
        add_edge = ddg.add_edge
        reg_get = last_reg.get
        mem_get = last_mem.get
        for seq, pc, tid, reg_reads, reg_writes, mem_reads, mem_writes, parent_seq, parent_pc, spawn_child in self.entries:
            add_node(seq, pc, tid)
            seen: set[int] = set()
            for reg, _ in reg_reads:
                if reg in seen:
                    continue
                seen.add(reg)
                producer = reg_get((tid, reg))
                if producer is not None:
                    add_edge(seq, pc, producer[0], producer[1], DepKind.REG, tid)
            for addr, _ in mem_reads:
                producer = mem_get(addr)
                if producer is not None:
                    add_edge(seq, pc, producer[0], producer[1], DepKind.MEM, tid)
            if parent_seq >= 0:
                add_edge(seq, pc, parent_seq, parent_pc, DepKind.CONTROL, tid)
            node = (seq, pc)
            for reg, _ in reg_writes:
                last_reg[(tid, reg)] = node
            for addr, _ in mem_writes:
                last_mem[addr] = node
            if spawn_child >= 0:
                last_reg[(spawn_child, 0)] = node
        self.stats.postprocess_cycles = (
            len(self.entries) * self.config.postprocess_cycles_per_instruction
        )
        return ddg
