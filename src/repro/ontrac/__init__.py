"""ONTRAC: online dependence tracing (§2.1) and its offline baseline."""

from .buffer import BufferStats, TraceBuffer
from .control_dep import ControlDependenceTracker, Region
from .ddg import DDGNode, DynamicDependenceGraph, build_ddg
from .offline import OfflineConfig, OfflineStats, OfflineTracer
from .packed import (
    ROW_PAYLOAD_BYTES,
    PackedDDG,
    PackedRecord,
    PackedTraceBuffer,
    SliceQueryStats,
)
from .records import (
    RECORD_BYTES,
    TRACE_FORMATION_BYTES,
    DepKind,
    DepRecord,
    InternedDepRecord,
    RecordInterner,
    RecordTemplate,
)
from .tracer import SUMMARY_FANIN_CAP, OnlineTracer, OntracConfig, OntracStats

__all__ = [
    "BufferStats",
    "TraceBuffer",
    "ControlDependenceTracker",
    "Region",
    "DDGNode",
    "DynamicDependenceGraph",
    "build_ddg",
    "OfflineConfig",
    "OfflineStats",
    "OfflineTracer",
    "ROW_PAYLOAD_BYTES",
    "PackedDDG",
    "PackedRecord",
    "PackedTraceBuffer",
    "SliceQueryStats",
    "RECORD_BYTES",
    "TRACE_FORMATION_BYTES",
    "DepKind",
    "DepRecord",
    "InternedDepRecord",
    "RecordInterner",
    "RecordTemplate",
    "SUMMARY_FANIN_CAP",
    "OnlineTracer",
    "OntracConfig",
    "OntracStats",
]

from .wet import (  # noqa: E402  (appended export)
    CompactWET,
    Interval,
    StaticEdge,
    compact,
    compact_backward_slice,
)

__all__ += [
    "CompactWET",
    "Interval",
    "StaticEdge",
    "compact",
    "compact_backward_slice",
]
