"""Fixed-size circular trace buffer.

ONTRAC "make[s] the design decision of not outputting the dependences
to a file, instead storing them in memory in a specially allocated
fixed size circular buffer".  The buffer's byte capacity therefore
bounds the *execution history window*: a fault is debuggable with
dynamic slicing only if it is exercised within the window — which is
why the optimizations that shrink bytes/instruction directly grow the
reachable history (E3).

Eviction is oldest-first by modeled record bytes (see
:mod:`repro.ontrac.records`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .records import DepRecord


@dataclass
class BufferStats:
    appended: int = 0
    appended_bytes: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    #: occupancy high-water mark in modeled bytes.
    peak_bytes: int = 0
    #: overflow passes that evicted at least one record.  Both eviction
    #: entry points (:meth:`TraceBuffer.append`'s inline check and
    #: :meth:`TraceBuffer.evict_overflow` for direct-append callers)
    #: route through the same helper, so the counter — like ``evicted``
    #: and ``evicted_bytes`` — cannot drift between the two paths.
    eviction_passes: int = 0


class TraceBuffer:
    """Bounded deque of :class:`DepRecord` with byte accounting."""

    def __init__(self, capacity_bytes: int = 16 * 1024 * 1024):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.records: deque[DepRecord] = deque()
        self.current_bytes = 0
        self.stats = BufferStats()

    def append(self, record: DepRecord) -> None:
        b = record.bytes
        self.records.append(record)
        cur = self.current_bytes + b
        stats = self.stats
        stats.appended += 1
        stats.appended_bytes += b
        if cur > stats.peak_bytes:
            stats.peak_bytes = cur
        if cur > self.capacity_bytes:
            cur = self._evict_from(cur)
        self.current_bytes = cur

    def _evict_from(self, cur: int) -> int:
        """Oldest-first eviction loop shared by both overflow paths, so
        ``evicted`` / ``evicted_bytes`` / ``eviction_passes`` are
        accounted identically no matter which entry point ran."""
        records = self.records
        stats = self.stats
        evicted = False
        while cur > self.capacity_bytes and records:
            old_bytes = records.popleft().bytes
            cur -= old_bytes
            stats.evicted += 1
            stats.evicted_bytes += old_bytes
            evicted = True
        if evicted:
            stats.eviction_passes += 1
        return cur

    def evict_overflow(self) -> None:
        """Evict oldest-first until occupancy fits the capacity again
        (for callers that append to :attr:`records` directly)."""
        self.current_bytes = self._evict_from(self.current_bytes)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def oldest_seq(self) -> int:
        """Oldest dynamic instruction still referenced (-1 if empty)."""
        return self.records[0].consumer_seq if self.records else -1

    @property
    def newest_seq(self) -> int:
        return self.records[-1].consumer_seq if self.records else -1

    def window_instructions(self) -> int:
        """Length of the execution-history window covered by the buffer."""
        if not self.records:
            return 0
        return self.newest_seq - self.oldest_seq + 1

    def covers_seq(self, seq: int) -> bool:
        """True if dynamic instruction ``seq`` is inside the history window."""
        return bool(self.records) and self.oldest_seq <= seq <= self.newest_seq
