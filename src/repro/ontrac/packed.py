"""Columnar packed dependence store (the tentpole of the packed-store
fast path).

:class:`~repro.ontrac.buffer.TraceBuffer` keeps one Python object per
dependence — ~56+ real bytes for a 3-slot :class:`InternedDepRecord`
plus its boxed sequence number and deque cell, roughly 15x the modeled
wire size the paper's figures are about.  This module stores the same
stream as fixed-width **columns**: per row one kind byte, a 32-bit
consumer-seq offset against the chunk base, 16-bit consumer/producer
pcs (static instruction indices), a 32-bit producer-seq delta and a
16-bit tid — 15 bytes of column payload per row, appended into a ring
of preallocated chunk arrays that eviction recycles.  Real resident
bytes per instruction land within a small factor of the modeled figure
instead of ~15x it.

Two structures make the packed stream *queryable* without ever
materializing record objects:

* the consumer index is intrinsic — the tracer emits rows in
  consumer-seq order, so the sorted consumer column is maintained
  incrementally at append time and one ``bisect`` finds all rows of a
  dynamic instruction;
* the per-chunk **reverse index** (producer seq -> rows) is built on
  first forward-direction access and cached on the chunk (appends and
  evictions invalidate it), as two parallel sorted arrays — 12 bytes
  per edge row, only for chunks that forward queries actually touch.

:class:`PackedDDG` is the drop-in dependence-graph view over the
packed buffer: O(1) to construct, serves the hot queries straight off
the columns, and lazily materializes the exact legacy
:class:`~repro.ontrac.ddg.DynamicDependenceGraph` (via the same
``build_ddg``) for consumers that walk the raw ``nodes``/``backward``
dicts — so every observable is bit-identical to the legacy store by
construction.  The indexed slicing engine walking these columns lives
in :mod:`repro.slicing.engine`.

Values that do not fit their column (a pathological pc, a >4G-seq
delta, a tid >= 0xFFFF) are stored as a sentinel plus a per-chunk
side-dict entry, so the packed store accepts every record the legacy
store does.  Out-of-order consumer seqs (possible only through direct
``append`` calls, never from the tracer) clear :attr:`monotone` and
the query layer falls back to the materialized graph.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator

from .buffer import BufferStats
from .ddg import DynamicDependenceGraph, build_ddg
from .records import (
    KIND_BY_CODE,
    KIND_CODES,
    KIND_MBYTES,
    DepKind,
    DepRecord,
)

#: chunk capacities double from the seed so tiny traces do not pay for
#: a full chunk; recycled (ring) chunks are always max-size.
_SEED_CHUNK_ROWS = 256
_MAX_CHUNK_ROWS = 4096
#: retired max-size chunks kept for reuse (the "preallocated ring").
_POOL_CAP = 8

_SENT32 = 0xFFFFFFFF
_MAX32 = 0xFFFFFFFE
_SENT16 = 0xFFFF

#: column payload bytes per row: kind B + cseq_off I + cpc H + pdelta I
#: + ppc H + tid H.
ROW_PAYLOAD_BYTES = 1 + 4 + 2 + 4 + 2 + 2

_C_INSTR = KIND_CODES[DepKind.INSTR]
_C_BRANCH = KIND_CODES[DepKind.BRANCH]

# side-dict field tags for out-of-range values.
_F_CPC = 0
_F_PSEQ = 1
_F_PPC = 2
_F_TID = 3


class _Chunk:
    """One fixed-capacity block of column arrays."""

    __slots__ = (
        "cap", "cseq_base", "kind", "cseq_off", "cpc", "pdelta", "ppc",
        "tid", "n", "head", "over", "rindex",
    )

    def __init__(self, cseq_base: int, cap: int):
        self.cap = cap
        self.cseq_base = cseq_base
        self.kind = array("B", bytes(cap))
        self.cseq_off = array("I", bytes(4 * cap))
        self.cpc = array("H", bytes(2 * cap))
        self.pdelta = array("I", bytes(4 * cap))
        self.ppc = array("H", bytes(2 * cap))
        self.tid = array("H", bytes(2 * cap))
        self.n = 0  # rows written
        self.head = 0  # rows evicted from the front
        self.over: dict[tuple[int, int], int] | None = None
        #: cached reverse index: (sorted producer seqs 'q', rows 'I').
        self.rindex: tuple[array, array] | None = None

    def overflow(self) -> dict[tuple[int, int], int]:
        over = self.over
        if over is None:
            over = self.over = {}
        return over

    # -- row decoding --------------------------------------------------------
    def cseq_at(self, r: int) -> int:
        return self.cseq_base + self.cseq_off[r]

    def cpc_at(self, r: int) -> int:
        v = self.cpc[r]
        return self.over[(r, _F_CPC)] if v == _SENT16 else v

    def pseq_at(self, r: int) -> int:
        code = self.kind[r]
        if code == _C_INSTR or code == _C_BRANCH:
            return -1
        d = self.pdelta[r]
        if d == _SENT32:
            return self.over[(r, _F_PSEQ)]
        return self.cseq_base + self.cseq_off[r] - d

    def ppc_at(self, r: int) -> int:
        if self.kind[r] == _C_INSTR or self.kind[r] == _C_BRANCH:
            return -1
        v = self.ppc[r]
        return self.over[(r, _F_PPC)] if v == _SENT16 else v

    def tid_at(self, r: int) -> int:
        v = self.tid[r]
        return self.over[(r, _F_TID)] if v == _SENT16 else v

    def record_at(self, r: int) -> "PackedRecord":
        code = self.kind[r]
        cseq = self.cseq_base + self.cseq_off[r]
        cpc = self.cpc[r]
        if cpc == _SENT16:
            cpc = self.over[(r, _F_CPC)]
        if code == _C_INSTR or code == _C_BRANCH:
            pseq = ppc = -1
        else:
            d = self.pdelta[r]
            pseq = self.over[(r, _F_PSEQ)] if d == _SENT32 else cseq - d
            ppc = self.ppc[r]
            if ppc == _SENT16:
                ppc = self.over[(r, _F_PPC)]
        tid = self.tid[r]
        if tid == _SENT16:
            tid = self.over[(r, _F_TID)]
        return PackedRecord(KIND_BY_CODE[code], cseq, cpc, pseq, ppc, tid, KIND_MBYTES[code])

    def reverse_index(self) -> tuple[array, array]:
        """Producer-seq -> row index, cached until the chunk mutates."""
        rindex = self.rindex
        if rindex is None:
            pairs = []
            kind = self.kind
            offs = self.cseq_off
            pdelta = self.pdelta
            base = self.cseq_base
            over = self.over
            for r in range(self.head, self.n):
                code = kind[r]
                if code == _C_INSTR or code == _C_BRANCH:
                    continue
                d = pdelta[r]
                p = over[(r, _F_PSEQ)] if d == _SENT32 else base + offs[r] - d
                pairs.append((p, r))
            pairs.sort()
            rindex = self.rindex = (
                array("q", (p for p, _ in pairs)),
                array("I", (r for _, r in pairs)),
            )
        return rindex


class PackedRecord:
    """One row materialized with the :class:`DepRecord` attribute API."""

    __slots__ = (
        "kind", "consumer_seq", "consumer_pc", "producer_seq",
        "producer_pc", "tid", "bytes",
    )

    def __init__(self, kind, consumer_seq, consumer_pc, producer_seq,
                 producer_pc, tid, bytes_):
        self.kind = kind
        self.consumer_seq = consumer_seq
        self.consumer_pc = consumer_pc
        self.producer_seq = producer_seq
        self.producer_pc = producer_pc
        self.tid = tid
        self.bytes = bytes_

    def __str__(self) -> str:
        if self.kind in (DepKind.INSTR, DepKind.BRANCH):
            return f"{self.kind.value}@{self.consumer_seq}(pc={self.consumer_pc})"
        return (
            f"{self.kind.value}: {self.consumer_seq}(pc={self.consumer_pc})"
            f" -> {self.producer_seq}(pc={self.producer_pc})"
        )


class _PackedRecordsView:
    """Sequence-like view over the live rows, yielding PackedRecords."""

    __slots__ = ("_buf",)

    def __init__(self, buf: "PackedTraceBuffer"):
        self._buf = buf

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[PackedRecord]:
        return iter(self._buf)

    def __getitem__(self, index: int) -> PackedRecord:
        buf = self._buf
        if index < 0:
            index += len(buf)
        if index < 0:
            raise IndexError("record index out of range")
        for c in buf._chunks:
            live = c.n - c.head
            if index < live:
                return c.record_at(c.head + index)
            index -= live
        raise IndexError("record index out of range")


class PackedTraceBuffer:
    """Drop-in :class:`TraceBuffer` replacement over packed columns.

    Same capacity/eviction semantics (oldest-first by modeled record
    bytes), same :class:`BufferStats` accounting record for record, and
    a :attr:`records` view that reconstructs DepRecord-compatible rows
    — plus the packed-only API the indexed slicing engine uses
    (:meth:`append_row`, :meth:`consumer_spans`, chunk reverse
    indexes).
    """

    def __init__(self, capacity_bytes: int = 16 * 1024 * 1024):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.current_bytes = 0
        self.stats = BufferStats()
        self._chunks: list[_Chunk] = []
        #: first live consumer seq per chunk (kept sorted; stale for a
        #: fully drained tail, which lookups skip via head==n).
        self._firsts: list[int] = []
        self._pool: list[_Chunk] = []
        self._tail: _Chunk | None = None
        self._rows = 0
        self._next_cap = _SEED_CHUNK_ROWS
        self._last_cseq = -(1 << 62)
        #: epoch-keyed flat edge view shared by every PackedDDG.
        self._flat: tuple = (None, None)
        #: False once a consumer seq arrived out of order (direct
        #: appends only); the query layer then uses the materialized
        #: graph instead of the column indexes.
        self.monotone = True

    # -- append paths --------------------------------------------------------
    def append_row(self, code: int, cseq: int, cpc: int,
                   pseq: int = -1, ppc: int = -1, tid: int = 0) -> int:
        """Append one packed row; returns its modeled byte size."""
        c = self._tail
        if c is None or c.n == c.cap:
            c = self._grow(cseq)
        off = cseq - c.cseq_base
        if off < 0 or off > _MAX32:
            c = self._grow(cseq)
            off = 0
        if cseq < self._last_cseq:
            self.monotone = False
        else:
            self._last_cseq = cseq
        n = c.n
        c.cseq_off[n] = off
        c.kind[n] = code
        if 0 <= cpc < _SENT16:
            c.cpc[n] = cpc
        else:
            c.cpc[n] = _SENT16
            c.overflow()[(n, _F_CPC)] = cpc
        if code == _C_INSTR or code == _C_BRANCH:
            c.pdelta[n] = 0
            c.ppc[n] = 0
        else:
            d = cseq - pseq
            if 0 <= d < _SENT32:
                c.pdelta[n] = d
            else:
                c.pdelta[n] = _SENT32
                c.overflow()[(n, _F_PSEQ)] = pseq
            if 0 <= ppc < _SENT16:
                c.ppc[n] = ppc
            else:
                c.ppc[n] = _SENT16
                c.overflow()[(n, _F_PPC)] = ppc
        if 0 <= tid < _SENT16:
            c.tid[n] = tid
        else:
            c.tid[n] = _SENT16
            c.overflow()[(n, _F_TID)] = tid
        if c.head == n:  # first live row of this chunk
            self._firsts[-1] = cseq
        c.n = n + 1
        c.rindex = None
        self._rows += 1
        b = KIND_MBYTES[code]
        stats = self.stats
        stats.appended += 1
        stats.appended_bytes += b
        if b:
            cur = self.current_bytes + b
            if cur > stats.peak_bytes:
                stats.peak_bytes = cur
            if cur > self.capacity_bytes:
                cur = self._evict_from(cur)
            self.current_bytes = cur
        return b

    def append(self, record: DepRecord) -> None:
        """Legacy-signature append for direct (non-tracer) callers."""
        self.append_row(
            KIND_CODES[record.kind],
            record.consumer_seq,
            record.consumer_pc,
            record.producer_seq,
            record.producer_pc,
            record.tid,
        )

    def evict_overflow(self) -> None:
        self.current_bytes = self._evict_from(self.current_bytes)

    def _grow(self, cseq: int) -> _Chunk:
        pool = self._pool
        if pool:
            c = pool.pop()
            c.cseq_base = cseq
        else:
            cap = self._next_cap
            self._next_cap = min(cap * 4, _MAX_CHUNK_ROWS)
            c = _Chunk(cseq, cap)
        self._chunks.append(c)
        self._firsts.append(cseq)
        self._tail = c
        return c

    def _retire(self, c: _Chunk) -> None:
        if c.cap == _MAX_CHUNK_ROWS and len(self._pool) < _POOL_CAP:
            c.n = 0
            c.head = 0
            c.over = None
            c.rindex = None
            self._pool.append(c)

    def _evict_from(self, cur: int) -> int:
        """Oldest-first eviction, accounting exactly like the legacy
        buffer's shared helper (evicted/evicted_bytes/eviction_passes)."""
        stats = self.stats
        chunks = self._chunks
        firsts = self._firsts
        cap = self.capacity_bytes
        mbytes = KIND_MBYTES
        evicted = False
        while cur > cap and self._rows:
            c = chunks[0]
            h = c.head
            b = mbytes[c.kind[h]]
            h += 1
            c.head = h
            c.rindex = None
            self._rows -= 1
            cur -= b
            stats.evicted += 1
            stats.evicted_bytes += b
            evicted = True
            if h == c.n:
                if c is not self._tail:
                    chunks.pop(0)
                    firsts.pop(0)
                    self._retire(c)
                else:
                    firsts[0] = c.cseq_base + c.cseq_off[h - 1]
            else:
                firsts[0] = c.cseq_base + c.cseq_off[h]
        if evicted:
            stats.eviction_passes += 1
        return cur

    # -- container API -------------------------------------------------------
    def __len__(self) -> int:
        return self._rows

    def __iter__(self) -> Iterator[PackedRecord]:
        for c in self._chunks:
            record_at = c.record_at
            for r in range(c.head, c.n):
                yield record_at(r)

    @property
    def records(self) -> _PackedRecordsView:
        return _PackedRecordsView(self)

    @property
    def oldest_seq(self) -> int:
        return self._firsts[0] if self._rows else -1

    @property
    def newest_seq(self) -> int:
        if not self._rows:
            return -1
        c = self._tail
        return c.cseq_base + c.cseq_off[c.n - 1]

    def window_instructions(self) -> int:
        if not self._rows:
            return 0
        return self.newest_seq - self.oldest_seq + 1

    def covers_seq(self, seq: int) -> bool:
        return bool(self._rows) and self.oldest_seq <= seq <= self.newest_seq

    # -- packed-only API -----------------------------------------------------
    @property
    def epoch(self) -> tuple[int, int]:
        """Mutation stamp ((appended, evicted)); query-layer caches and
        the slice memo are valid only while it is unchanged."""
        stats = self.stats
        return (stats.appended, stats.evicted)

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def resident_bytes(self) -> int:
        """Allocated column payload bytes (live chunks + recycling
        pool + cached reverse indexes).  Deterministic by construction —
        the benchmark measures true process residency with tracemalloc
        separately."""
        total = 0
        for c in self._chunks:
            total += c.cap * ROW_PAYLOAD_BYTES
            if c.rindex is not None:
                total += len(c.rindex[0]) * 12
        total += len(self._pool) * _MAX_CHUNK_ROWS * ROW_PAYLOAD_BYTES
        return total

    def release(self) -> None:
        """Drop every chunk (including the recycling pool); used by the
        residency benchmark to measure the store's true footprint."""
        self._chunks.clear()
        self._firsts.clear()
        self._pool.clear()
        self._tail = None
        self._rows = 0
        self._flat = (None, None)
        self.current_bytes = 0

    def consumer_spans(self, seq: int) -> list[tuple[_Chunk, int, int]]:
        """Row ranges holding consumer ``seq``: ``[(chunk, lo, hi)]``.

        Valid only while :attr:`monotone`; rows of one consumer are
        contiguous but may span a chunk boundary.
        """
        firsts = self._firsts
        i = bisect_right(firsts, seq) - 1
        if i < 0:
            return []
        chunks = self._chunks
        spans = []
        c = chunks[i]
        off = seq - c.cseq_base
        if 0 <= off <= _MAX32:
            offs = c.cseq_off
            lo = bisect_left(offs, off, c.head, c.n)
            hi = bisect_right(offs, off, lo, c.n)
            if hi > lo:
                spans.append((c, lo, hi))
        # Rows may continue backward into earlier chunks that *end* with
        # this seq (a chunk sealed mid-instruction).
        j = i
        while j > 0 and firsts[j] == seq:
            p = chunks[j - 1]
            off = seq - p.cseq_base
            if not (0 <= off <= _MAX32) or p.n == p.head:
                break
            if p.cseq_off[p.n - 1] != off:
                break
            lo = bisect_left(p.cseq_off, off, p.head, p.n)
            spans.insert(0, (p, lo, p.n))
            j -= 1
        return spans

    def live_chunks(self) -> list[_Chunk]:
        return [c for c in self._chunks if c.head < c.n]

    def flat_edges(self) -> tuple[dict, bytes, list, list]:
        """Flat decoded *edge-only* view of the live rows for the
        backward walk: ``(ranges, kinds, pseqs, ppcs)``.

        Node rows (INSTR/BRANCH) are dropped at build time: ``ranges``
        maps a consumer seq to the contiguous ``(lo, hi)`` span of its
        *edge* rows (valid while :attr:`monotone` — rows of one
        consumer are adjacent, and filtering preserves contiguity), so
        a seq absent from ``ranges`` is exactly a node with no stored
        dependence rows — the legacy slicer's truncation condition.
        ``kinds`` is the edge kind-code bytes and ``pseqs``/``ppcs``
        the fully decoded producer seq/pc per edge row, so the slicing
        inner loop is one dict hit plus plain list reads per node and
        never touches a node row.  The view is built once per mutation
        :attr:`epoch` and cached on the buffer, so every
        :class:`PackedDDG` over a quiescent store — and every query
        under it — shares the same index instead of rebuilding an
        object graph per ``dependence_graph()`` call.
        """
        ep = self.epoch
        cached_ep, flat = self._flat
        if cached_ep == ep:
            return flat
        ranges: dict[int, tuple[int, int]] = {}
        kinds = bytearray()
        pseqs: list[int] = []
        ppcs: list[int] = []
        ap_k = kinds.append
        ap_p = pseqs.append
        ap_pc = ppcs.append
        prev = None
        start = 0
        for c in self._chunks:
            h, n = c.head, c.n
            if h >= n:
                continue
            offs = c.cseq_off
            kindcol = c.kind
            pdelta = c.pdelta
            ppccol = c.ppc
            base = c.cseq_base
            over = c.over
            for r in range(h, n):
                cseq = base + offs[r]
                if cseq != prev:
                    if prev is not None and len(pseqs) > start:
                        ranges[prev] = (start, len(pseqs))
                    prev = cseq
                    start = len(pseqs)
                code = kindcol[r]
                if code == _C_INSTR or code == _C_BRANCH:
                    continue
                ap_k(code)
                d = pdelta[r]
                ap_p(over[(r, _F_PSEQ)] if d == _SENT32 else cseq - d)
                v = ppccol[r]
                ap_pc(over[(r, _F_PPC)] if v == _SENT16 else v)
        if prev is not None and len(pseqs) > start:
            ranges[prev] = (start, len(pseqs))
        flat = (ranges, bytes(kinds), pseqs, ppcs)
        self._flat = (ep, flat)
        return flat


@dataclass
class SliceQueryStats:
    """Introspection counters for the indexed slicing engine."""

    queries: int = 0
    memo_hits: int = 0
    rows_scanned: int = 0


#: closure fragments kept per PackedDDG (LRU).
MEMO_CAP = 1024


class PackedDDG:
    """Dependence-graph view over a :class:`PackedTraceBuffer`.

    Construction is O(1).  The hot queries (``pc_of``, instance
    lookups, producer/consumer lists, the slicing closures in
    :mod:`repro.slicing.engine`) run straight off the packed columns;
    ``nodes``/``backward``/``forward`` lazily materialize the exact
    legacy graph via :func:`build_ddg` for consumers that walk the raw
    dicts.  Unlike the legacy graph (a snapshot), this view follows the
    live buffer: mutating the buffer bumps its epoch, which drops every
    cache and the slice memo on the next query.
    """

    def __init__(self, buffer: PackedTraceBuffer):
        self.buffer = buffer
        self.complete = buffer.stats.evicted == 0
        self._epoch = buffer.epoch
        self._mat: DynamicDependenceGraph | None = None
        self._node_pc: dict[int, int] | None = None
        self._node_tid: dict[int, int] | None = None
        self._pc_index: dict[int, list[int]] | None = None
        #: (is_forward, seq, kinds) -> (frozenset seqs, frozenset pcs, truncated)
        self.memo: OrderedDict = OrderedDict()
        self.query_stats = SliceQueryStats()

    # -- cache discipline ----------------------------------------------------
    def check_epoch(self) -> None:
        epoch = self.buffer.epoch
        if epoch != self._epoch:
            self._epoch = epoch
            self.complete = self.buffer.stats.evicted == 0
            self._mat = None
            self._node_pc = None
            self._node_tid = None
            self._pc_index = None
            self.memo.clear()

    @property
    def indexable(self) -> bool:
        """Columns usable for bisect-based queries (consumer seqs arrived
        in order — always true for tracer-produced streams)."""
        return self.buffer.monotone

    # -- legacy-dict compatibility -------------------------------------------
    def _materialized(self) -> DynamicDependenceGraph:
        self.check_epoch()
        mat = self._mat
        if mat is None:
            mat = self._mat = build_ddg(self.buffer, complete=self.complete)
        return mat

    @property
    def nodes(self):
        return self._materialized().nodes

    @property
    def backward(self):
        return self._materialized().backward

    @property
    def forward(self):
        return self._materialized().forward

    # -- node table (exact legacy node set/pcs/tids, no edge lists) ----------
    def _node_tables(self) -> tuple[dict[int, int], dict[int, int]]:
        self.check_epoch()
        node_pc = self._node_pc
        if node_pc is None:
            node_pc = {}
            node_tid = {}
            for c in self.buffer._chunks:
                kind = c.kind
                offs = c.cseq_off
                cpcs = c.cpc
                pdelta = c.pdelta
                ppcs = c.ppc
                tids = c.tid
                base = c.cseq_base
                over = c.over
                for r in range(c.head, c.n):
                    cseq = base + offs[r]
                    if cseq not in node_pc:
                        v = cpcs[r]
                        node_pc[cseq] = over[(r, _F_CPC)] if v == _SENT16 else v
                        t = tids[r]
                        node_tid[cseq] = over[(r, _F_TID)] if t == _SENT16 else t
                    code = kind[r]
                    if code != _C_INSTR and code != _C_BRANCH:
                        d = pdelta[r]
                        p = over[(r, _F_PSEQ)] if d == _SENT32 else cseq - d
                        if p not in node_pc:
                            v = ppcs[r]
                            node_pc[p] = over[(r, _F_PPC)] if v == _SENT16 else v
                            t = tids[r]
                            node_tid[p] = over[(r, _F_TID)] if t == _SENT16 else t
            self._node_pc = node_pc
            self._node_tid = node_tid
        return self._node_pc, self._node_tid

    def _producer_row(self, seq: int):
        """First live row whose producer is ``seq`` (chunk, row), or
        None — resolves producer-only nodes without building tables."""
        for c in self.buffer.live_chunks():
            pseqs, rows = c.reverse_index()
            if not pseqs or pseqs[0] > seq or pseqs[-1] < seq:
                continue
            i = bisect_left(pseqs, seq)
            if i < len(pseqs) and pseqs[i] == seq:
                return c, rows[i]
        return None

    def has_node(self, seq: int) -> bool:
        self.check_epoch()
        if self._node_pc is None and self.buffer.monotone:
            # The legacy node set is exactly (consumer seqs | producer
            # seqs); both sides are answerable from the column indexes.
            if self.buffer.consumer_spans(seq):
                return True
            return self._producer_row(seq) is not None
        return seq in self._node_tables()[0]

    def pc_of(self, seq: int) -> int:
        self.check_epoch()
        if self._node_pc is None and self.buffer.monotone:
            spans = self.buffer.consumer_spans(seq)
            if spans:
                c, lo, _ = spans[0]
                return c.cpc_at(lo)
            hit = self._producer_row(seq)
            if hit is not None:
                c, r = hit
                return c.ppc_at(r)
        return self._node_tables()[0][seq]

    def tid_of(self, seq: int) -> int:
        return self._node_tables()[1][seq]

    def node_items(self) -> Iterable[tuple[int, int]]:
        """(seq, pc) pairs in legacy node-insertion order."""
        return self._node_tables()[0].items()

    def seqs_of_pcs(self, pcs) -> list[int]:
        """Seqs of nodes whose pc is in ``pcs``, in node-insertion order
        (matches iterating the legacy ``nodes`` dict)."""
        return [seq for seq, pc in self._node_tables()[0].items() if pc in pcs]

    def _pc_map(self) -> dict[int, list[int]]:
        self.check_epoch()
        index = self._pc_index
        if index is None:
            index = {}
            for seq, pc in self._node_tables()[0].items():
                index.setdefault(pc, []).append(seq)
            for seqs in index.values():
                seqs.sort()
            self._pc_index = index
        return index

    # -- legacy query API -----------------------------------------------------
    def instances_of_pc(self, pc: int) -> list[int]:
        return list(self._pc_map().get(pc, ()))

    def last_instance_of_pc(self, pc: int) -> int | None:
        seqs = self._pc_map().get(pc)
        return seqs[-1] if seqs else None

    def producers(self, seq: int, kinds: Iterable[DepKind] | None = None):
        self.check_epoch()
        if not self.buffer.monotone:
            return self._materialized().producers(seq, kinds)
        wanted = None if kinds is None else set(kinds)
        out = []
        for c, lo, hi in self.buffer.consumer_spans(seq):
            kindcol = c.kind
            for r in range(lo, hi):
                code = kindcol[r]
                if code == _C_INSTR or code == _C_BRANCH:
                    continue
                k = KIND_BY_CODE[code]
                if wanted is not None and k not in wanted:
                    continue
                out.append((c.pseq_at(r), k))
        return out

    def consumers(self, seq: int, kinds: Iterable[DepKind] | None = None):
        self.check_epoch()
        if not self.buffer.monotone:
            return self._materialized().consumers(seq, kinds)
        wanted = None if kinds is None else set(kinds)
        out = []
        for c in self.buffer.live_chunks():
            pseqs, rows = c.reverse_index()
            if not pseqs or pseqs[0] > seq or pseqs[-1] < seq:
                continue
            lo = bisect_left(pseqs, seq)
            hi = bisect_right(pseqs, seq, lo)
            for i in range(lo, hi):
                r = rows[i]
                k = KIND_BY_CODE[c.kind[r]]
                if wanted is not None and k not in wanted:
                    continue
                out.append((c.cseq_at(r), k))
        return out

    def iter_edge_rows(self) -> Iterator[tuple[int, int, int, int, int, DepKind]]:
        """All live edge rows in append order:
        (consumer_seq, consumer_pc, consumer_tid, producer_seq,
        producer_pc, kind)."""
        by_code = KIND_BY_CODE
        for c in self.buffer._chunks:
            kindcol = c.kind
            for r in range(c.head, c.n):
                code = kindcol[r]
                if code == _C_INSTR or code == _C_BRANCH:
                    continue
                yield (
                    c.cseq_at(r), c.cpc_at(r), c.tid_at(r),
                    c.pseq_at(r), c.ppc_at(r), by_code[code],
                )

    @property
    def edge_count(self) -> int:
        self.check_epoch()
        count = 0
        for c in self.buffer._chunks:
            kindcol = c.kind
            for r in range(c.head, c.n):
                code = kindcol[r]
                if code != _C_INSTR and code != _C_BRANCH:
                    count += 1
        return count

    def stats(self) -> dict[str, int]:
        by_code = [0] * len(KIND_BY_CODE)
        for c in self.buffer._chunks:
            kindcol = c.kind
            for r in range(c.head, c.n):
                by_code[kindcol[r]] += 1
        by_kind = {
            KIND_BY_CODE[code].value: count
            for code, count in enumerate(by_code)
            if count and code != _C_INSTR and code != _C_BRANCH
        }
        edges = sum(by_kind.values())
        return {"nodes": len(self._node_tables()[0]), "edges": edges, **by_kind}

    def publish_telemetry(self, registry) -> None:
        """Dump the indexed slicing engine's counters into a
        :class:`~repro.telemetry.MetricsRegistry`."""
        qs = self.query_stats
        registry.counter("slicing.queries").inc(qs.queries)
        registry.counter("slicing.memo_hits").inc(qs.memo_hits)
        registry.counter("slicing.rows_scanned").inc(qs.rows_scanned)
