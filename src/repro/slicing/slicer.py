"""Backward and forward dynamic slicing over the DDG.

A dynamic slice is the transitive closure of data (and optionally
control) dependences from a slicing criterion — a dynamic instruction
instance, usually the instruction that produced a wrong value or the
failure point.  Slices computed from a circular-buffer DDG are
truncated at the history window's edge; :attr:`DynamicSlice.truncated`
reports when that happened, because it means the root cause may predate
the window (the paper's motivation for maximizing window length).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..ontrac.ddg import DynamicDependenceGraph
from ..ontrac.packed import PackedDDG
from ..ontrac.records import DepKind
from .engine import backward_closure, forward_closure

#: dependence kinds followed by ordinary (data+control) slicing.
#: IREG/IMEM are the zero-cost statically-recoverable edges the
#: optimized tracer materializes instead of storing bytes for.
DATA_KINDS = frozenset(
    {DepKind.REG, DepKind.MEM, DepKind.IREG, DepKind.IMEM, DepKind.SUMMARY}
)
DEFAULT_KINDS = DATA_KINDS | {DepKind.CONTROL}
#: extension for multithreaded slicing / race detection (§3.1).
MULTITHREADED_KINDS = DEFAULT_KINDS | {DepKind.WAR, DepKind.WAW}


@dataclass
class DynamicSlice:
    """Result of a slicing query."""

    criterion: int
    #: dynamic instances in the slice (includes the criterion).
    seqs: set[int] = field(default_factory=set)
    #: static instructions (pcs) covered by those instances.
    pcs: set[int] = field(default_factory=set)
    #: True when the closure touched the edge of a truncated DDG.
    truncated: bool = False

    def __contains__(self, seq: int) -> bool:
        return seq in self.seqs

    def __len__(self) -> int:
        return len(self.seqs)

    def statement_lines(self, compiled) -> set[int]:
        """Map slice pcs to MiniC source lines via a CompiledProgram."""
        return {compiled.line_of(pc) for pc in self.pcs if compiled.line_of(pc)}


def backward_slice(
    ddg: DynamicDependenceGraph,
    criterion: int,
    kinds: frozenset[DepKind] = DEFAULT_KINDS,
) -> DynamicSlice:
    """Transitive closure of ``kinds`` dependences ending at ``criterion``."""
    if isinstance(ddg, PackedDDG) and ddg.indexable:
        # Indexed engine: walks packed columns directly (and consults /
        # feeds the closure-fragment memo).  Same seqs/pcs/truncated as
        # the BFS below, proven by the differential suite.
        seqs, pcs, truncated = backward_closure(ddg, criterion, kinds)
        return DynamicSlice(
            criterion=criterion, seqs=set(seqs), pcs=set(pcs), truncated=truncated
        )
    if criterion not in ddg.nodes:
        raise KeyError(f"criterion seq {criterion} is not in the DDG (outside the window?)")
    result = DynamicSlice(criterion=criterion)
    queue = deque([criterion])
    seen = {criterion}
    while queue:
        seq = queue.popleft()
        result.seqs.add(seq)
        result.pcs.add(ddg.pc_of(seq))
        edges = ddg.backward.get(seq)
        if edges is None:
            # A node with no recorded producers: either genuinely
            # input/constant-defined, or its producers were evicted.
            if not ddg.complete:
                result.truncated = True
            continue
        for producer, kind in edges:
            if kind in kinds and producer not in seen:
                seen.add(producer)
                queue.append(producer)
    return result


def forward_slice(
    ddg: DynamicDependenceGraph,
    criterion: int,
    kinds: frozenset[DepKind] = DEFAULT_KINDS,
) -> DynamicSlice:
    """Everything (transitively) affected by ``criterion``."""
    if isinstance(ddg, PackedDDG) and ddg.indexable:
        seqs, pcs, _ = forward_closure(ddg, criterion, kinds)
        return DynamicSlice(criterion=criterion, seqs=set(seqs), pcs=set(pcs))
    if criterion not in ddg.nodes:
        raise KeyError(f"criterion seq {criterion} is not in the DDG")
    result = DynamicSlice(criterion=criterion)
    queue = deque([criterion])
    seen = {criterion}
    while queue:
        seq = queue.popleft()
        result.seqs.add(seq)
        result.pcs.add(ddg.pc_of(seq))
        for consumer, kind in ddg.forward.get(seq, []):
            if kind in kinds and consumer not in seen:
                seen.add(consumer)
                queue.append(consumer)
    return result


def slice_at_last_output(ddg: DynamicDependenceGraph, out_pc: int, **kw) -> DynamicSlice:
    """Backward slice at the last dynamic instance of static pc ``out_pc``."""
    seq = ddg.last_instance_of_pc(out_pc)
    if seq is None:
        raise KeyError(f"pc {out_pc} never executed within the window")
    return backward_slice(ddg, seq, **kw)


def chop(
    ddg: DynamicDependenceGraph,
    source: int,
    sink: int,
    kinds: frozenset[DepKind] = DEFAULT_KINDS,
) -> set[int]:
    """Failure-inducing chop ([1]): nodes on some dependence path from
    ``source`` to ``sink`` — the intersection of the source's forward
    slice with the sink's backward slice."""
    fwd = forward_slice(ddg, source, kinds=kinds)
    bwd = backward_slice(ddg, sink, kinds=kinds)
    return fwd.seqs & bwd.seqs
