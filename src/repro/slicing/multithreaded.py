"""Multithreaded dynamic slicing (§3.1).

The paper extends dynamic slicing to multithreaded programs "in a way
that incorporates write-after-read and write-after-write dependences so
that data races can be detected using dynamic slicing" [8].  ONTRAC
records cross-thread WAR/WAW edges when ``record_war_waw`` is enabled;
this module provides the slice variants that follow them and small
queries over the cross-thread structure that the race detector
(:mod:`repro.races`) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ontrac.ddg import DynamicDependenceGraph
from ..ontrac.packed import PackedDDG
from ..ontrac.records import DepKind
from .slicer import MULTITHREADED_KINDS, DynamicSlice, backward_slice


def multithreaded_backward_slice(
    ddg: DynamicDependenceGraph, criterion: int
) -> DynamicSlice:
    """Backward slice following data, control, WAR and WAW dependences."""
    return backward_slice(ddg, criterion, kinds=MULTITHREADED_KINDS)


@dataclass(frozen=True)
class CrossThreadDependence:
    """One dependence whose endpoints run on different threads."""

    kind: DepKind
    consumer_seq: int
    consumer_pc: int
    consumer_tid: int
    producer_seq: int
    producer_pc: int
    producer_tid: int


def cross_thread_dependences(ddg: DynamicDependenceGraph) -> list[CrossThreadDependence]:
    """All dependences connecting two threads (RAW/WAR/WAW on shared
    memory) — the raw material for race detection."""
    found: list[CrossThreadDependence] = []
    if isinstance(ddg, PackedDDG) and ddg.indexable:
        # Iterate packed edge rows directly; tids/pcs come from the node
        # tables (which replicate the legacy graph's first-mention node
        # attribution) so the result — including the stable-sort tie
        # order — matches the dict walk below edge for edge.
        shared = (DepKind.MEM, DepKind.WAR, DepKind.WAW)
        for cseq, _cpc, _ctid, pseq, _ppc, kind in ddg.iter_edge_rows():
            if kind not in shared:
                continue
            ctid = ddg.tid_of(cseq)
            ptid = ddg.tid_of(pseq)
            if ptid != ctid:
                found.append(
                    CrossThreadDependence(
                        kind=kind,
                        consumer_seq=cseq,
                        consumer_pc=ddg.pc_of(cseq),
                        consumer_tid=ctid,
                        producer_seq=pseq,
                        producer_pc=ddg.pc_of(pseq),
                        producer_tid=ptid,
                    )
                )
        return sorted(found, key=lambda d: d.consumer_seq)
    for consumer, edges in ddg.backward.items():
        ctid = ddg.nodes[consumer].tid
        for producer, kind in edges:
            ptid = ddg.nodes[producer].tid
            if ptid != ctid and kind in (DepKind.MEM, DepKind.WAR, DepKind.WAW):
                found.append(
                    CrossThreadDependence(
                        kind=kind,
                        consumer_seq=consumer,
                        consumer_pc=ddg.nodes[consumer].pc,
                        consumer_tid=ctid,
                        producer_seq=producer,
                        producer_pc=ddg.nodes[producer].pc,
                        producer_tid=ptid,
                    )
                )
    return sorted(found, key=lambda d: d.consumer_seq)
