"""Indexed slicing engine over the packed dependence store.

The legacy slicer BFS-walks ``DynamicDependenceGraph`` dicts, which
first requires *building* those dicts — one DDGNode and one edge-list
entry per record object.  This engine answers the same closures
straight off :class:`~repro.ontrac.packed.PackedTraceBuffer` columns:

* the frontier is a plain stack of seq integers — no node objects;
* a consumer's dependence rows are one dict hit into the buffer's
  epoch-cached flat edge view (:meth:`flat_edges`), with producer
  seq/pc predecoded per row;
* forward closures bisect the per-chunk reverse indexes (built lazily,
  cached on the chunk);
* an LRU memo on the owning :class:`PackedDDG` caches the closure
  fragment of every seq it finishes, so repeated criteria — fault
  localization probing many outputs, pruning passes, lineage queries —
  splice in prior work instead of re-walking the graph.

Closure semantics are the legacy slicer's, bit for bit: same KeyError
messages for unknown criteria, same ``truncated`` rule (a reached node
with *no* stored dependence rows at all, of any kind, in an incomplete
window), same seq/pc sets.  Results are returned as plain
``(frozenset seqs, frozenset pcs, truncated)`` triples;
:mod:`repro.slicing.slicer` wraps them into :class:`DynamicSlice`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from ..ontrac.packed import MEMO_CAP
from ..ontrac.records import KIND_BY_CODE

_SENT16 = 0xFFFF
_F_CPC = 0

#: kinds frozenset -> per-code wanted flags (10 entries, indexed by code).
_WANTED_CACHE: dict[frozenset, list[bool]] = {}


def _wanted(kinds: frozenset) -> list[bool]:
    flags = _WANTED_CACHE.get(kinds)
    if flags is None:
        flags = [KIND_BY_CODE[code] in kinds for code in range(len(KIND_BY_CODE))]
        _WANTED_CACHE[kinds] = flags
    return flags


def backward_closure(ddg, criterion: int, kinds) -> tuple[frozenset, frozenset, bool]:
    """Backward closure of ``criterion`` over the packed columns.

    Returns ``(seqs, pcs, truncated)``; raises the legacy slicer's
    KeyError verbatim for a criterion outside the window.
    """
    ddg.check_epoch()
    kinds = frozenset(kinds)
    stats = ddg.query_stats
    stats.queries += 1
    memo = ddg.memo
    key = (False, criterion, kinds)
    cached = memo.get(key)
    if cached is not None:
        memo.move_to_end(key)
        stats.memo_hits += 1
        return cached
    if not ddg.has_node(criterion):
        raise KeyError(f"criterion seq {criterion} is not in the DDG (outside the window?)")
    complete = ddg.complete
    wanted = _wanted(kinds)
    # Producer seq/pc come predecoded from the flat view, so the inner
    # loop is one range-map hit plus list reads — a node's pc is
    # recorded when it is *pushed* (the edge row carries it), which
    # yields the same pc set as the legacy pop-time add.
    ranges, kindrow, pseqs, ppcs = ddg.buffer.flat_edges()
    # Memo keys present for this direction+kinds; probing this set per
    # pop is far cheaper than building a (False, seq, kinds) tuple and
    # touching the LRU for the common miss.
    frag_seqs = {s for (fwd, s, k) in memo if not fwd and k == kinds}
    seqs: set[int] = set()
    pcs: set[int] = {ddg.pc_of(criterion)}
    truncated = False
    seen = {criterion}
    stack = [criterion]
    push = stack.append
    seqs_add = seqs.add
    pcs_add = pcs.add
    seen_add = seen.add
    ranges_get = ranges.get
    rows_scanned = 0
    while stack:
        seq = stack.pop()
        if seq in seqs:
            continue
        if seq in frag_seqs:
            # Splice a previously computed closure fragment instead of
            # re-walking the subgraph below this node.
            fkey = (False, seq, kinds)
            memo.move_to_end(fkey)
            stats.memo_hits += 1
            fseqs, fpcs, ftrunc = memo[fkey]
            seqs |= fseqs
            pcs |= fpcs
            seen |= fseqs
            truncated = truncated or ftrunc
            continue
        seqs_add(seq)
        span = ranges_get(seq)
        if span is None:
            # Same rule as the legacy BFS: no dependence rows at all
            # for this node (the edge-only flat view has no span) in an
            # evicting window means its history may be gone.
            if not complete:
                truncated = True
            continue
        lo, hi = span
        rows_scanned += hi - lo
        for r in range(lo, hi):
            if not wanted[kindrow[r]]:
                continue
            producer = pseqs[r]
            if producer in seen:
                continue
            seen_add(producer)
            pcs_add(ppcs[r])
            push(producer)
    stats.rows_scanned += rows_scanned
    result = (frozenset(seqs), frozenset(pcs), truncated)
    memo[key] = result
    if len(memo) > MEMO_CAP:
        memo.popitem(last=False)
    return result


def forward_closure(ddg, criterion: int, kinds) -> tuple[frozenset, frozenset, bool]:
    """Forward closure of ``criterion`` via the per-chunk reverse
    indexes.  Never truncated (matching the legacy forward slicer)."""
    ddg.check_epoch()
    kinds = frozenset(kinds)
    stats = ddg.query_stats
    stats.queries += 1
    memo = ddg.memo
    key = (True, criterion, kinds)
    cached = memo.get(key)
    if cached is not None:
        memo.move_to_end(key)
        stats.memo_hits += 1
        return cached
    if not ddg.has_node(criterion):
        raise KeyError(f"criterion seq {criterion} is not in the DDG")
    buffer = ddg.buffer
    wanted = _wanted(kinds)
    seqs: set[int] = set()
    pcs: set[int] = set()
    seen = {criterion}
    stack = [(criterion, ddg.pc_of(criterion))]
    rows_scanned = 0
    while stack:
        seq, pc = stack.pop()
        if seq in seqs:
            continue
        fkey = (True, seq, kinds)
        fragment = memo.get(fkey)
        if fragment is not None:
            memo.move_to_end(fkey)
            stats.memo_hits += 1
            fseqs, fpcs, _ = fragment
            seqs |= fseqs
            pcs |= fpcs
            seen |= fseqs
            continue
        seqs.add(seq)
        pcs.add(pc)
        for c in buffer.live_chunks():
            pseqs, rows = c.reverse_index()
            if not pseqs or pseqs[0] > seq or pseqs[-1] < seq:
                continue
            lo = bisect_left(pseqs, seq)
            hi = bisect_right(pseqs, seq, lo)
            rows_scanned += hi - lo
            kindcol = c.kind
            cpccol = c.cpc
            offs = c.cseq_off
            base = c.cseq_base
            over = c.over
            for i in range(lo, hi):
                r = rows[i]
                if not wanted[kindcol[r]]:
                    continue
                consumer = base + offs[r]
                if consumer in seen:
                    continue
                seen.add(consumer)
                v = cpccol[r]
                stack.append((consumer, over[(r, _F_CPC)] if v == _SENT16 else v))
    stats.rows_scanned += rows_scanned
    result = (frozenset(seqs), frozenset(pcs), False)
    memo[key] = result
    if len(memo) > MEMO_CAP:
        memo.popitem(last=False)
    return result
