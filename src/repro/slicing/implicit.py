"""Implicit dependences via predicate switching (§3.1, citing [16]
"Towards Locating Execution Omission Errors", PLDI'07).

An execution-omission error fails because some statements did *not*
execute; dynamic slices cannot contain them.  The fully dynamic fix:
force the omitted code to run by switching the outcome of a single
dynamic predicate instance and re-executing.  If the value at the
slicing criterion changes, an **implicit dependence** from the
criterion to that predicate is verified, and the predicate (plus its
own backward slice) joins the fault-candidate set.

Verification is demand-driven: candidates are tried most-recent-first,
filtered to predicates that statically control a store (the potential-
dependence heuristic from :mod:`repro.slicing.relevant`), so few
re-executions are needed before the root cause is exposed — the paper's
"small number of verifications".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import Instruction, Opcode
from ..ontrac.ddg import DynamicDependenceGraph
from ..runner import ProgramRunner
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Intervention
from .relevant import branches_with_potential_stores
from .slicer import DEFAULT_KINDS, backward_slice


class PredicateSwitcher(Intervention):
    """Flip the outcome of exactly one dynamic branch instance."""

    def __init__(self, pc: int, occurrence: int):
        self.pc = pc
        self.occurrence = occurrence
        self.fired = False

    def branch_outcome(self, instr: Instruction, occurrence: int, default: bool) -> bool:
        if instr.index == self.pc and occurrence == self.occurrence:
            self.fired = True
            return not default
        return default


class CriterionRecorder(Hook):
    """Records the last value produced at a static pc (register write,
    memory write, or output operand)."""

    def __init__(self, pc: int):
        self.pc = pc
        self.value: int | None = None
        self.seq: int | None = None

    def on_instruction(self, ev: InstrEvent) -> None:
        if ev.pc != self.pc:
            return
        if ev.reg_writes:
            self.value = ev.reg_writes[0][1]
        elif ev.mem_writes:
            self.value = ev.mem_writes[0][1]
        elif ev.io_value is not None:
            self.value = ev.io_value
        elif ev.reg_reads:
            self.value = ev.reg_reads[0][1]
        self.seq = ev.seq


@dataclass
class ImplicitDependence:
    branch_seq: int
    branch_pc: int
    occurrence: int
    switched_value: int | None


@dataclass
class ImplicitSearchResult:
    criterion_pc: int
    baseline_value: int | None
    verified: list[ImplicitDependence] = field(default_factory=list)
    verifications: int = 0
    #: fault-candidate seqs: original slice + verified predicates' closures.
    candidate_seqs: set[int] = field(default_factory=set)
    candidate_pcs: set[int] = field(default_factory=set)


def _occurrence_of(ddg: DynamicDependenceGraph, seq: int) -> int:
    """0-based dynamic occurrence index of ``seq`` among instances of
    its pc (within the DDG window — exact when the window covers the
    whole run, which re-execution searches arrange)."""
    pc = ddg.pc_of(seq)
    return ddg.instances_of_pc(pc).index(seq)


def find_implicit_dependences(
    runner: ProgramRunner,
    ddg: DynamicDependenceGraph,
    criterion_pc: int,
    max_verifications: int = 50,
    restrict_to_potential: bool = True,
) -> ImplicitSearchResult:
    """Search for implicit dependences of the last instance of
    ``criterion_pc`` by single-predicate switching.

    ``ddg`` must come from tracing the failing run that ``runner``
    reproduces.  Each verification is one full re-execution with one
    predicate instance flipped.
    """
    criterion_seq = ddg.last_instance_of_pc(criterion_pc)
    if criterion_seq is None:
        raise KeyError(f"criterion pc {criterion_pc} never executed")

    # Baseline value at the criterion.
    baseline = CriterionRecorder(criterion_pc)
    runner.run(hooks=(baseline,))
    result = ImplicitSearchResult(criterion_pc=criterion_pc, baseline_value=baseline.value)

    base_slice = backward_slice(ddg, criterion_seq)
    result.candidate_seqs |= base_slice.seqs
    result.candidate_pcs |= base_slice.pcs

    # Candidate predicates: executed branch instances before the
    # criterion, most recent first, not already explaining the criterion
    # (i.e. outside its dynamic slice), optionally restricted to
    # branches that statically control a store.
    potential = (
        branches_with_potential_stores(runner.program) if restrict_to_potential else None
    )
    branch_ops = (Opcode.BR, Opcode.BRZ)
    candidates = [
        seq
        for seq, pc in sorted(ddg.node_items(), reverse=True)
        if seq < criterion_seq
        and runner.program.code[pc].opcode in branch_ops
        and (potential is None or pc in potential)
    ]

    for seq in candidates:
        if result.verifications >= max_verifications:
            break
        pc = ddg.pc_of(seq)
        occurrence = _occurrence_of(ddg, seq)
        switcher = PredicateSwitcher(pc, occurrence)
        recorder = CriterionRecorder(criterion_pc)
        runner.run(hooks=(recorder,), intervention=switcher)
        result.verifications += 1
        if not switcher.fired:
            continue
        if recorder.value != result.baseline_value:
            # Implicit dependence verified: the predicate's outcome
            # influences the criterion even though no dynamic dependence
            # chain connected them.
            result.verified.append(
                ImplicitDependence(
                    branch_seq=seq,
                    branch_pc=pc,
                    occurrence=occurrence,
                    switched_value=recorder.value,
                )
            )
            closure = backward_slice(ddg, seq, kinds=DEFAULT_KINDS)
            result.candidate_seqs |= closure.seqs | {seq}
            result.candidate_pcs |= closure.pcs | {pc}
    return result
