"""Dynamic slicing: backward/forward slices, chops, pruning, relevant
slicing, implicit dependences, multithreaded extensions."""

from .engine import backward_closure, forward_closure
from .implicit import (
    CriterionRecorder,
    ImplicitDependence,
    ImplicitSearchResult,
    PredicateSwitcher,
    find_implicit_dependences,
)
from .multithreaded import (
    CrossThreadDependence,
    cross_thread_dependences,
    multithreaded_backward_slice,
)
from .pruning import PrunedSlice, classify_outputs, kept_pcs, prune_slice
from .relevant import RelevantSlice, branches_with_potential_stores, relevant_slice
from .slicer import (
    DATA_KINDS,
    DEFAULT_KINDS,
    MULTITHREADED_KINDS,
    DynamicSlice,
    backward_slice,
    chop,
    forward_slice,
    slice_at_last_output,
)

__all__ = [
    "backward_closure",
    "forward_closure",
    "CriterionRecorder",
    "ImplicitDependence",
    "ImplicitSearchResult",
    "PredicateSwitcher",
    "find_implicit_dependences",
    "CrossThreadDependence",
    "cross_thread_dependences",
    "multithreaded_backward_slice",
    "PrunedSlice",
    "classify_outputs",
    "kept_pcs",
    "prune_slice",
    "RelevantSlice",
    "branches_with_potential_stores",
    "relevant_slice",
    "DATA_KINDS",
    "DEFAULT_KINDS",
    "MULTITHREADED_KINDS",
    "DynamicSlice",
    "backward_slice",
    "chop",
    "forward_slice",
    "slice_at_last_output",
]
