"""Relevant slicing via potential dependences.

Execution-omission errors leave no dynamic trace, so prior work extended
dynamic slices with *potential dependences*: a predicate is potentially
relevant to a later load if taking its other outcome could have executed
a store the load would have seen.  Because the check is static and
conservative, relevant slices are "overly large" (§3.1) — which is
exactly what the fully-dynamic predicate-switching approach in
:mod:`repro.slicing.implicit` improves on.  E7 compares the two sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.cfg import EXIT_BLOCK, build_cfgs
from ..isa.dominance import Dominance
from ..isa.instructions import Opcode
from ..isa.program import Program
from ..ontrac.ddg import DynamicDependenceGraph
from .slicer import DEFAULT_KINDS, DynamicSlice, backward_slice


def branches_with_potential_stores(program: Program) -> set[int]:
    """Static pcs of conditional branches whose controlled region (from
    the branch to its immediate post-dominator) contains a memory write.

    Such a branch could, under its other outcome, have (not) executed a
    store — a potential dependence source for any later load.
    """
    result: set[int] = set()
    for cfg in build_cfgs(program).values():
        dom = Dominance(cfg)
        for block in cfg.blocks:
            br = cfg.branch_instruction(block.bid)
            if br is None:
                continue
            stop = dom.immediate_postdominator(block.bid)
            # Collect blocks control-dependent on this branch by walking
            # each successor's post-dominator chain up to the ipdom.
            region: set[int] = set()
            for succ in block.succs:
                node = succ
                while node != stop and node != EXIT_BLOCK:
                    region.add(node)
                    node = dom.immediate_postdominator(node)
            for bid in region:
                for instr in cfg.instructions(bid):
                    # Calls are conservatively assumed to store (the
                    # callee may write memory the analysis cannot see).
                    if instr.opcode in (
                        Opcode.STORE,
                        Opcode.PUSH,
                        Opcode.CALL,
                        Opcode.ICALL,
                    ):
                        result.add(br.index)
                        break
                if br.index in result:
                    break
    return result


@dataclass
class RelevantSlice:
    base: DynamicSlice
    #: branch instances added through potential dependences.
    potential_branches: set[int] = field(default_factory=set)
    seqs: set[int] = field(default_factory=set)
    pcs: set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.seqs)


def relevant_slice(
    ddg: DynamicDependenceGraph,
    program: Program,
    criterion: int,
    kinds=DEFAULT_KINDS,
) -> RelevantSlice:
    """Backward slice plus the conservative potential-dependence closure.

    Every executed instance (before the criterion) of a branch that
    statically controls a store is added, together with its own backward
    slice — the conservative over-approximation the paper criticizes.
    """
    base = backward_slice(ddg, criterion, kinds=kinds)
    potential_pcs = branches_with_potential_stores(program)
    result = RelevantSlice(base=base, seqs=set(base.seqs), pcs=set(base.pcs))
    # seqs_of_pcs preserves node-insertion order on both DDG flavors, so
    # potential_branches accumulate exactly as the nodes-dict loop did.
    for seq in ddg.seqs_of_pcs(potential_pcs):
        if seq > criterion:
            continue
        if seq in result.seqs:
            continue
        result.potential_branches.add(seq)
        sub = backward_slice(ddg, seq, kinds=kinds)
        result.seqs |= sub.seqs
        result.pcs |= sub.pcs
    result.seqs.add(criterion)
    return result
