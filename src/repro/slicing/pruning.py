"""Confidence-based slice pruning (§3.1, citing [17] "Pruning Dynamic
Slices With Confidence", PLDI'06).

The insight of [17]: in a failing run some outputs are typically still
*correct*, and a statement instance whose value flowed (only) into
correct outputs is very likely not the root cause — it has high
confidence.  Pruning removes high-confidence nodes from the slice,
shrinking the fault candidate set.

This implementation computes, for every node in a backward slice, which
output instances its value (transitively) reaches, and assigns:

* confidence 1.0 — reaches at least one correct output and no
  incorrect output (prunable);
* confidence 0.0 — reaches an incorrect output or no output at all
  (kept; "no output" means the value may have corrupted control flow).

That is the boolean skeleton of [17]'s lattice (their fractional
confidences come from value-profile alternatives, which
:mod:`repro.apps.faultloc.value_replace` models separately).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..ontrac.ddg import DynamicDependenceGraph
from ..ontrac.packed import PackedDDG
from .engine import backward_closure
from .slicer import DEFAULT_KINDS, DynamicSlice


@dataclass
class PrunedSlice:
    original: DynamicSlice
    kept_seqs: set[int] = field(default_factory=set)
    pruned_seqs: set[int] = field(default_factory=set)
    #: seq -> 1.0 (prunable) or 0.0 (suspect)
    confidence: dict[int, float] = field(default_factory=dict)

    @property
    def reduction(self) -> float:
        """Fraction of the original slice removed by pruning."""
        total = len(self.kept_seqs) + len(self.pruned_seqs)
        return len(self.pruned_seqs) / total if total else 0.0


def prune_slice(
    ddg: DynamicDependenceGraph,
    sl: DynamicSlice,
    correct_outputs: set[int],
    incorrect_outputs: set[int],
    kinds=DEFAULT_KINDS,
) -> PrunedSlice:
    """Prune ``sl`` given classified output instances (dynamic seqs).

    ``correct_outputs`` / ``incorrect_outputs`` are the seqs of output
    instructions whose emitted values matched / mismatched the expected
    output (callers get them from comparing ``machine.io.output()``
    against an oracle; see :func:`classify_outputs`).
    """
    # Propagate "reaches correct" / "reaches incorrect" backward from
    # the classified outputs, restricted to slice members.
    reaches_correct: set[int] = set()
    reaches_incorrect: set[int] = set()
    indexed = isinstance(ddg, PackedDDG) and ddg.indexable
    for targets, marker in ((correct_outputs, reaches_correct),
                            (incorrect_outputs, reaches_incorrect)):
        if indexed:
            # The multi-source reachability set is the union of the
            # per-target backward closures (closures are transitive), so
            # the indexed engine — and its memo, across the two passes
            # and repeated prune calls — serves each target directly.
            for target in targets:
                if ddg.has_node(target):
                    closure_seqs, _, _ = backward_closure(ddg, target, kinds)
                    marker |= closure_seqs
            continue
        queue = deque(t for t in targets if t in ddg.nodes)
        seen = set(queue)
        while queue:
            seq = queue.popleft()
            marker.add(seq)
            for producer, kind in ddg.backward.get(seq, []):
                if kind in kinds and producer not in seen:
                    seen.add(producer)
                    queue.append(producer)

    result = PrunedSlice(original=sl)
    for seq in sl.seqs:
        prunable = (
            seq in reaches_correct
            and seq not in reaches_incorrect
            and seq != sl.criterion
        )
        result.confidence[seq] = 1.0 if prunable else 0.0
        if prunable:
            result.pruned_seqs.add(seq)
        else:
            result.kept_seqs.add(seq)
    return result


def kept_pcs(ddg: DynamicDependenceGraph, pruned: PrunedSlice) -> set[int]:
    """Static instructions surviving the prune."""
    return {ddg.pc_of(seq) for seq in pruned.kept_seqs}


def classify_outputs(
    ddg: DynamicDependenceGraph,
    output_events: list[tuple[int, int]],
    expected: list[int],
) -> tuple[set[int], set[int]]:
    """Split output instances into correct/incorrect against an oracle.

    ``output_events`` is ``[(seq, value), ...]`` in emission order (what
    an output-recording hook captured); ``expected`` is the oracle
    value list.  Extra or missing outputs count as incorrect.
    """
    correct: set[int] = set()
    incorrect: set[int] = set()
    for i, (seq, value) in enumerate(output_events):
        if i < len(expected) and value == expected[i]:
            correct.add(seq)
        else:
            incorrect.add(seq)
    return correct, incorrect
