"""Reproducible program runs.

Almost every technique in this repo re-executes the same program under
different instrumentation or perturbation: dynamic slicing traces a
failing run, predicate switching re-runs it with a branch flipped,
value replacement re-runs it with a value rewritten, fault avoidance
re-runs it under a different schedule.  :class:`ProgramRunner` packages
(program, inputs, arguments, scheduler recipe) so each re-execution is
bit-identical except for the requested perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .isa.program import Program
from .telemetry import Telemetry
from .vm.events import Hook
from .vm.machine import Intervention, Machine, RunResult
from .vm.scheduler import RoundRobinScheduler, Scheduler


@dataclass
class ProgramRunner:
    """A reproducible run recipe."""

    program: Program
    inputs: dict[int, list[int]] = field(default_factory=dict)
    args: tuple[int, ...] = ()
    #: fresh-scheduler factory; defaults to deterministic round-robin.
    scheduler_factory: Callable[[], Scheduler] | None = None
    max_instructions: int = 10_000_000
    #: shared telemetry bundle; None (default) keeps runs unobserved.
    telemetry: Telemetry | None = None

    def machine(self) -> Machine:
        scheduler = self.scheduler_factory() if self.scheduler_factory else RoundRobinScheduler()
        m = Machine(self.program, scheduler=scheduler, args=self.args, telemetry=self.telemetry)
        for channel, values in self.inputs.items():
            m.io.provide(channel, list(values))
        return m

    def run(
        self,
        hooks: tuple[Hook, ...] = (),
        intervention: Intervention | None = None,
    ) -> tuple[Machine, RunResult]:
        """Execute once; returns the machine (for outputs/state) and result."""
        m = self.machine()
        for hook in hooks:
            m.hooks.subscribe(hook)
        if intervention is not None:
            m.intervention = intervention
        result = m.run(max_instructions=self.max_instructions)
        return m, result

    def run_traced(self, config=None):
        """Execute under ONTRAC; returns (machine, tracer, result)."""
        from .ontrac.tracer import OnlineTracer

        m = self.machine()
        tracer = OnlineTracer(self.program, config).attach(m)
        result = m.run(max_instructions=self.max_instructions)
        # Seal the trace-lake spill (no-op unless config.spill_path is
        # set) so the footer index lands even without an explicit close.
        tracer.finish_spill()
        if self.telemetry is not None and self.telemetry.enabled:
            tracer.publish_telemetry(self.telemetry.registry)
        return m, tracer, result

    def with_inputs(self, inputs: dict[int, list[int]]) -> "ProgramRunner":
        """A copy of this recipe with different inputs."""
        return ProgramRunner(
            program=self.program,
            inputs={k: list(v) for k, v in inputs.items()},
            args=self.args,
            scheduler_factory=self.scheduler_factory,
            max_instructions=self.max_instructions,
            telemetry=self.telemetry,
        )
