"""Experiment runners: one function per paper claim (E1..E12).

Each ``run_eN`` executes the experiment at a configurable scale and
returns an :class:`ExperimentResult` with the table the paper's claim
corresponds to, plus a ``headline`` dict of the scalar numbers
EXPERIMENTS.md quotes against the paper.  The pytest-benchmark files in
``benchmarks/`` call these same functions, so the printed tables and
the recorded numbers can never drift apart.

See DESIGN.md §4 for the claim -> experiment mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.faultavoid import FaultAvoidanceFramework, PatchFile
from ..apps.faultloc import SliceBasedFaultLocator, ValueReplacementRanker
from ..apps.lineage import LineageTracer, verify_against_reference
from ..apps.security import AttackMonitor, attack_corpus
from ..dift.engine import DIFTEngine
from ..dift.policy import BoolTaintPolicy
from ..multicore import HelperCoreDIFT, hardware_interconnect, shared_memory_channel
from ..ontrac import OfflineTracer, OnlineTracer, OntracConfig
from ..races import RaceDetector, SyncAwareRaceDetector, SyncHistory, SyncRecognizer
from ..reduction import CheckpointingLogger, ExecutionReducer
from ..runner import ProgramRunner
from ..slicing import backward_slice, find_implicit_dependences, relevant_slice
from ..telemetry import MetricsRegistry
from ..tm import Resolution, TMConfig, TransactionalMonitor
from ..util.tables import format_table
from ..workloads import (
    build_server,
    by_category,
    lineage_suite,
    race_kernels,
    suite,
    tm_kernels,
)
from ..isa.instructions import Opcode


@dataclass
class ExperimentResult:
    experiment: str
    claim: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    headline: dict[str, float] = field(default_factory=dict)
    #: flat counter/gauge snapshot from the experiment's subsystems.
    metrics: dict[str, float] = field(default_factory=dict)
    notes: str = ""
    #: host wall-clock seconds for the whole experiment (stamped by
    #: :func:`run_experiment`; 0.0 when the runner was called directly).
    #: Reported next to the modeled-cycle tables so the two currencies
    #: stay side by side and never get conflated.
    wall_time_s: float = 0.0

    def table(self) -> str:
        return format_table(self.headers, self.rows, title=f"{self.experiment}: {self.claim}")


# ---------------------------------------------------------------------------
# E1 — ONTRAC slowdown: online ~19x vs offline post-processing ~540x
# ---------------------------------------------------------------------------
def run_e1(scale: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E1",
        claim="online tracing ~19x avg vs ~540x offline post-processing (§2.1)",
        headers=["workload", "native cyc/instr", "online x", "offline x"],
    )
    online_xs, offline_xs = [], []
    for w in suite(scale):
        runner = w.runner()
        _, base = runner.run()
        base_cycles = base.cycles.base

        _, tracer, online = runner.run_traced(OntracConfig(hot_trace_threshold=20))
        online_x = online.cycles.total / base_cycles

        m = runner.machine()
        off = OfflineTracer(runner.program).attach(m)
        off_res = m.run()
        off.postprocess()
        offline_x = (off_res.cycles.base + off.stats.total_overhead_cycles) / base_cycles

        online_xs.append(online_x)
        offline_xs.append(offline_x)
        result.rows.append(
            [w.name, base_cycles / max(1, base.instructions), online_x, offline_x]
        )
    result.rows.append(
        ["average", "", sum(online_xs) / len(online_xs), sum(offline_xs) / len(offline_xs)]
    )
    result.headline = {
        "online_slowdown_avg": sum(online_xs) / len(online_xs),
        "offline_slowdown_avg": sum(offline_xs) / len(offline_xs),
        "paper_online": 19.0,
        "paper_offline": 540.0,
    }
    registry = MetricsRegistry()
    tracer.publish_telemetry(registry)  # last workload's online tracer
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E2 — bytes/instruction: 16 unoptimized -> 0.8 optimized, with ablation
# ---------------------------------------------------------------------------
def run_e2(scale: int = 1) -> ExperimentResult:
    configs = [
        ("naive", OntracConfig.unoptimized()),
        ("+intra-block", OntracConfig(infer_traces=False, elide_redundant_loads=False)),
        ("+traces", OntracConfig(elide_redundant_loads=False, hot_trace_threshold=20)),
        ("+redundant-loads", OntracConfig(hot_trace_threshold=20)),
        ("+input-filter", OntracConfig(hot_trace_threshold=20, input_forward_slice=True)),
    ]
    result = ExperimentResult(
        experiment="E2",
        claim="trace rate 16 B/instr naive -> 0.8 B/instr optimized (§2.1)",
        headers=["configuration"] + [w.name for w in suite(scale)] + ["average"],
    )
    averages = {}
    for label, config in configs:
        rates = []
        for w in suite(scale):
            _, tracer, _ = w.runner().run_traced(config)
            rates.append(tracer.stats.bytes_per_instruction)
        averages[label] = sum(rates) / len(rates)
        result.rows.append([label] + rates + [averages[label]])
    result.headline = {
        "naive_bytes_per_instr": averages["naive"],
        "optimized_bytes_per_instr": averages["+input-filter"],
        "paper_naive": 16.0,
        "paper_optimized": 0.8,
    }
    registry = MetricsRegistry()
    tracer.publish_telemetry(registry)  # fully-optimized config, last workload
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E3 — history window vs buffer size (paper: 20M instructions in 16MB)
# ---------------------------------------------------------------------------
def run_e3(buffer_sizes: tuple[int, ...] = (4096, 16384, 65536), scale: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E3",
        claim="a 16MB buffer holds ~20M instructions of history (§2.1)",
        headers=["buffer bytes", "window (instr)", "instr per KB", "extrapolated @16MB"],
    )
    # A long-running loop so every buffer size overflows and the window
    # is buffer-limited (as in the paper's long executions).
    from ..workloads.spec_like import hashloop

    w = hashloop(3000 * scale)
    per_kb = 0.0
    for cap in buffer_sizes:
        _, tracer, _ = w.runner().run_traced(
            OntracConfig(buffer_bytes=cap, hot_trace_threshold=20, input_forward_slice=True)
        )
        window = tracer.buffer.window_instructions()
        per_kb = window / (cap / 1024)
        result.rows.append([cap, window, per_kb, per_kb * 16 * 1024])
    result.headline = {
        "instr_per_kb": per_kb,
        "extrapolated_window_at_16mb": per_kb * 16 * 1024,
        "paper_window_at_16mb": 20_000_000.0,
    }
    registry = MetricsRegistry()
    tracer.publish_telemetry(registry)  # largest buffer size
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E4 — multicore DIFT overhead ~48% (hw interconnect) vs software channel
# ---------------------------------------------------------------------------
def run_e4(scale: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E4",
        claim="helper-core DIFT overhead ~48% for SPEC int (§2.1)",
        headers=["workload", "inline %", "hw channel %", "sw channel %", "hw stalls"],
    )
    hw_overheads, sw_overheads, inline_overheads = [], [], []
    for w in suite(scale):
        runner = w.runner()
        m_inline = runner.machine()
        DIFTEngine(BoolTaintPolicy(), sinks=[]).attach(m_inline)
        inline = m_inline.run()
        inline_pct = (inline.cycles.slowdown - 1.0) * 100

        reports = {}
        for name, channel in (("hw", hardware_interconnect()), ("sw", shared_memory_channel())):
            m = runner.machine()
            helper = HelperCoreDIFT(BoolTaintPolicy(), channel=channel).attach(m)
            m.run()
            reports[name] = helper.report()
        hw_pct = reports["hw"].overhead * 100
        sw_pct = reports["sw"].overhead * 100
        inline_overheads.append(inline_pct)
        hw_overheads.append(hw_pct)
        sw_overheads.append(sw_pct)
        result.rows.append([w.name, inline_pct, hw_pct, sw_pct, reports["hw"].stall_cycles])
    result.rows.append(
        [
            "average",
            sum(inline_overheads) / len(inline_overheads),
            sum(hw_overheads) / len(hw_overheads),
            sum(sw_overheads) / len(sw_overheads),
            "",
        ]
    )
    result.headline = {
        "hw_overhead_pct": sum(hw_overheads) / len(hw_overheads),
        "sw_overhead_pct": sum(sw_overheads) / len(sw_overheads),
        "inline_overhead_pct": sum(inline_overheads) / len(inline_overheads),
        "paper_overhead_pct": 48.0,
    }
    registry = MetricsRegistry()
    helper.publish_telemetry(registry)  # sw channel, last workload
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E5 — execution reduction (the MySQL case study's shape)
# ---------------------------------------------------------------------------
def run_e5(workers: int = 3, requests: int = 150, checkpoint_interval: int = 8000) -> ExperimentResult:
    scenario = build_server(workers=workers, requests=requests, busywork=10)
    runner = scenario.runner()

    _, base = runner.run()
    base_cycles = base.cycles.base

    m_log = runner.machine()
    logger = CheckpointingLogger(checkpoint_interval=checkpoint_interval).attach(m_log)
    log_res = m_log.run()
    log = logger.finalize()
    logging_x = log_res.cycles.slowdown

    m_trace = runner.machine()
    full_tracer = OnlineTracer(
        runner.program, OntracConfig.unoptimized(buffer_bytes=1 << 26)
    ).attach(m_trace)
    trace_res = m_trace.run()
    tracing_x = trace_res.cycles.slowdown
    full_deps = full_tracer.dependence_graph().edge_count

    reducer = ExecutionReducer(runner.program, log)
    outcome = reducer.reduce_and_trace(OntracConfig.unoptimized(buffer_bytes=1 << 26))
    replay_cycles = outcome.replay.result.cycles.total - (
        outcome.replay.result.cycles.base - outcome.replay.machine.cycles.base
    )
    reduced_deps = outcome.traced_dependences

    result = ExperimentResult(
        experiment="E5",
        claim="MySQL case study: 14.8s/16.8s/3736s/0.67s; 976M -> 3175 deps (§2.2)",
        headers=["quantity", "this repro", "paper"],
        rows=[
            ["original (cycles / s)", base_cycles, "14.8 s"],
            ["with logging (x)", logging_x, "1.14x (16.8 s)"],
            ["fully traced (x)", tracing_x, "252x (3736 s)"],
            ["reduced traced replay (fraction)", outcome.replayed_fraction, "4.5% (0.67 s)"],
            ["dependences full", full_deps, "976,000,000"],
            ["dependences reduced", reduced_deps, "3,175"],
            ["dep reduction factor", full_deps / max(1, reduced_deps), "307,000x"],
            ["relevant threads", len(outcome.plan.include_tids), "-"],
            ["failure reproduced", int(outcome.replay.reproduced_failure), "yes"],
        ],
    )
    result.headline = {
        "logging_slowdown": logging_x,
        "tracing_slowdown": tracing_x,
        "replayed_fraction": outcome.replayed_fraction,
        "dep_reduction": full_deps / max(1, reduced_deps),
        "reproduced": float(outcome.replay.reproduced_failure),
    }
    result.notes = (
        f"thread reduction kept {sorted(outcome.plan.include_tids)} of "
        f"{workers + 1} threads; fallback={outcome.fell_back_to_all_threads}"
    )
    registry = MetricsRegistry()
    logger.publish_telemetry(registry)
    outcome.publish_telemetry(registry)
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E6 — TM monitoring: naive livelocks, sync-aware doesn't (§2.2)
# ---------------------------------------------------------------------------
def run_e6() -> ExperimentResult:
    result = ExperimentResult(
        experiment="E6",
        claim="sync-aware conflict resolution avoids livelock, cuts overhead (§2.2)",
        headers=["kernel", "policy", "completed", "livelock", "aborts", "overhead x"],
    )
    livelocks = {"naive": 0, "sync_aware": 0}
    overheads = {"naive": [], "sync_aware": []}
    registry = MetricsRegistry()
    for kernel in tm_kernels():
        for policy in (Resolution.NAIVE, Resolution.SYNC_AWARE):
            res = TransactionalMonitor(kernel, TMConfig(resolution=policy)).run()
            if policy is Resolution.SYNC_AWARE:
                res.publish_telemetry(registry)
            livelocks[policy.value] += int(res.livelock)
            if res.completed:
                overheads[policy.value].append(res.overhead)
            result.rows.append(
                [
                    kernel.name,
                    policy.value,
                    int(res.completed),
                    int(res.livelock),
                    res.aborts,
                    res.overhead,
                ]
            )
    result.headline = {
        "naive_livelocks": float(livelocks["naive"]),
        "sync_aware_livelocks": float(livelocks["sync_aware"]),
        "sync_aware_overhead_avg": (
            sum(overheads["sync_aware"]) / max(1, len(overheads["sync_aware"]))
        ),
    }
    result.metrics = registry.flat()  # sync-aware runs, summed over kernels
    return result


# ---------------------------------------------------------------------------
# E7 — execution omission: relevant slices vs predicate switching (§3.1)
# ---------------------------------------------------------------------------
def run_e7() -> ExperimentResult:
    result = ExperimentResult(
        experiment="E7",
        claim="predicate switching exposes omission errors with few verifications (§3.1)",
        headers=[
            "bug", "plain slice has bug", "relevant size", "implicit size",
            "verifications", "implicit has bug",
        ],
    )
    found, total_verifications = 0, 0
    registry = MetricsRegistry()
    for bug in by_category("omission"):
        runner = bug.runner()
        machine, tracer, _ = runner.run_traced(OntracConfig(buffer_bytes=1 << 22))
        ddg = tracer.dependence_graph()
        out_pc = max(
            pc
            for pc in range(len(bug.compiled.program.code))
            if bug.compiled.program.code[pc].opcode is Opcode.OUT
        )
        criterion = ddg.last_instance_of_pc(out_pc)
        plain = backward_slice(ddg, criterion)
        plain_has = bool(plain.statement_lines(bug.compiled) & bug.bug_lines)
        rel = relevant_slice(ddg, runner.program, criterion)
        search = find_implicit_dependences(runner, ddg, out_pc)
        implicit_lines = {
            bug.compiled.line_of(pc) for pc in search.candidate_pcs if bug.compiled.line_of(pc)
        }
        has_bug = bool(implicit_lines & bug.bug_lines)
        found += int(has_bug)
        total_verifications += search.verifications
        registry.counter("slicing.verification_runs").inc(search.verifications)
        registry.counter("slicing.implicit_candidates").inc(len(search.candidate_seqs))
        registry.counter("slicing.relevant_slice_instances").inc(len(rel))
        result.rows.append(
            [
                bug.name,
                int(plain_has),
                len(rel),
                len(search.candidate_seqs),
                search.verifications,
                int(has_bug),
            ]
        )
    n = len(by_category("omission"))
    result.headline = {
        "omission_bugs_located": float(found),
        "omission_bugs_total": float(n),
        "avg_verifications": total_verifications / n,
    }
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E8 — value-replacement ranking (§3.1)
# ---------------------------------------------------------------------------
def run_e8(max_replacements: int = 300) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E8",
        claim="value replacement ranks faulty statements near the top (§3.1)",
        headers=["bug", "category", "ivmps", "tried", "bug line rank", "slice has bug"],
    )
    ranked_top2 = 0
    registry = MetricsRegistry()
    bugs = by_category("value") + by_category("omission")
    for bug in bugs:
        ranker = ValueReplacementRanker(
            bug.runner(),
            bug.compiled,
            bug.expected_output(),
            passing_runner=bug.runner(failing=False),
            max_replacements=max_replacements,
        )
        report = ranker.rank()
        rank = min((report.rank_of_line(line) or 99) for line in bug.bug_lines)
        try:
            locator = SliceBasedFaultLocator(bug.runner(), bug.compiled, bug.expected_output())
            slice_has = locator.locate().contains_bug(bug.bug_lines)
        except ValueError:
            slice_has = False
        ranked_top2 += int(rank <= 2)
        registry.counter("faultloc.ivmps").inc(len(report.ivmps))
        registry.counter("faultloc.replacements_tried").inc(report.replacements_tried)
        result.rows.append(
            [bug.name, bug.category, len(report.ivmps), report.replacements_tried,
             rank if rank < 99 else "-", int(slice_has)]
        )
    result.headline = {
        "bugs_ranked_top2": float(ranked_top2),
        "bugs_total": float(len(bugs)),
    }
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E9 — sync-aware race detection filters benign races (§3.1)
# ---------------------------------------------------------------------------
def run_e9() -> ExperimentResult:
    result = ExperimentResult(
        experiment="E9",
        claim="sync-aware filtering removes benign synchronization races (§3.1)",
        headers=["kernel", "candidates", "baseline reported", "sync-aware reported",
                 "filtered", "true races found"],
    )
    total_filtered = 0
    registry = MetricsRegistry()
    for kernel in race_kernels():
        runner = kernel.runner()
        machine = runner.machine()
        tracer = OnlineTracer(
            runner.program, OntracConfig(buffer_bytes=1 << 23, record_war_waw=True)
        ).attach(machine)
        logger = CheckpointingLogger(checkpoint_interval=1 << 30).attach(machine)
        recognizer = SyncRecognizer()
        machine.hooks.subscribe(recognizer)
        machine.run(max_instructions=runner.max_instructions)
        log = logger.finalize()

        ddg = tracer.dependence_graph()
        history = SyncHistory.from_event_log(log)
        detector = RaceDetector(ddg, history)
        baseline = detector.races()
        aware = SyncAwareRaceDetector(detector, recognizer.flag_syncs).detect()
        aware.publish_telemetry(registry)

        reported_lines = {
            kernel.compiled.line_of(pc)
            for r in aware.reported
            for pc in (r.dependence.consumer_pc, r.dependence.producer_pc)
            if kernel.compiled.line_of(pc)
        }
        true_found = bool(reported_lines & kernel.racy_lines) if kernel.racy_lines else (
            not aware.reported
        )
        filtered = len(baseline) - len(aware.reported)
        total_filtered += max(0, filtered)
        result.rows.append(
            [
                kernel.name,
                aware.baseline_count,
                len(baseline),
                len(aware.reported),
                filtered,
                int(true_found),
            ]
        )
    result.headline = {"benign_races_filtered": float(total_filtered)}
    result.metrics = registry.flat()  # summed over kernels
    return result


# ---------------------------------------------------------------------------
# E10 — fault avoidance for the three environment-fault classes (§3.2)
# ---------------------------------------------------------------------------
def run_e10() -> ExperimentResult:
    result = ExperimentResult(
        experiment="E10",
        claim="atomicity / heap-overflow / malformed-request faults avoided (§3.2)",
        headers=["bug", "class", "avoided", "strategy", "attempts", "future run clean"],
    )
    avoided = 0
    registry = MetricsRegistry()
    patch_file = PatchFile()
    framework = FaultAvoidanceFramework(patch_file)
    bugs = by_category("atomicity") + by_category("overflow") + by_category("malformed")
    for bug in bugs:
        runner = bug.runner()
        outcome = framework.avoid(runner)
        clean = False
        if outcome.avoided:
            _, protected, _ = patch_file.protected_run(
                runner, outcome.failure_kind, outcome.failure_pc
            )
            clean = not protected.failed
        avoided += int(outcome.avoided and clean)
        registry.counter("faultavoid.attempts").inc(len(outcome.attempts))
        registry.counter("faultavoid.avoided").inc(int(outcome.avoided))
        registry.counter("faultavoid.clean_reruns").inc(int(clean))
        result.rows.append(
            [
                bug.name,
                bug.category,
                int(outcome.avoided),
                outcome.patch.strategy if outcome.patch else "-",
                len(outcome.attempts),
                int(clean),
            ]
        )
    result.headline = {"faults_avoided": float(avoided), "faults_total": float(len(bugs))}
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E11 — attack detection + PC-taint root cause (§3.3)
# ---------------------------------------------------------------------------
def run_e11() -> ExperimentResult:
    result = ExperimentResult(
        experiment="E11",
        claim="attacks detected; PC taint names the root-cause statement (§3.3)",
        headers=["scenario", "benign clean", "detected", "stopped", "culprit line",
                 "root cause named"],
    )
    detected_count, named_count = 0, 0
    registry = MetricsRegistry()
    for scenario in attack_corpus():
        benign = AttackMonitor.for_scenario(scenario).monitor(
            scenario.runner(attack=False), scenario.compiled, scenario.name
        )
        attack = AttackMonitor.for_scenario(scenario).monitor(
            scenario.runner(attack=True), scenario.compiled, scenario.name
        )
        named = attack.culprit_line in scenario.root_cause_lines
        detected_count += int(attack.detected)
        named_count += int(named)
        registry.counter("security.scenarios").inc()
        registry.counter("security.attacks_detected").inc(int(attack.detected))
        registry.counter("security.stopped_by_dift").inc(int(attack.stopped_by_dift))
        registry.counter("security.root_causes_named").inc(int(named))
        result.rows.append(
            [
                scenario.name,
                int(not benign.detected),
                int(attack.detected),
                int(attack.stopped_by_dift),
                attack.culprit_line,
                int(named),
            ]
        )
    n = len(attack_corpus())
    result.headline = {
        "attacks_detected": float(detected_count),
        "root_causes_named": float(named_count),
        "scenarios": float(n),
    }
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# E12 — lineage: slowdown <40x, memory ~300%, roBDD vs naive (§3.4)
# ---------------------------------------------------------------------------
def run_e12(scale: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E12",
        claim="lineage tracing <40x slowdown, ~300% memory; roBDD beats naive sets (§3.4)",
        headers=["workload", "repr", "exact lineage", "slowdown x", "mem overhead x",
                 "set bytes", "union cycles"],
    )
    from ..workloads.scientific import cumulative_sum

    workloads = lineage_suite()
    if scale > 1:
        workloads.append(cumulative_sum(n=200 * scale))
    slowdowns = []
    mem_ratio_on_overlapping = 1.0
    registry = MetricsRegistry()
    for w in workloads:
        per_repr = {}
        for representation in ("naive", "robdd"):
            tracer = LineageTracer(representation=representation)
            trace = tracer.trace(w.runner())
            matches, _ = verify_against_reference(trace, w.expected_lineage)
            # charge modeled union cycles into the slowdown figure
            slow = (
                trace.result.cycles.total + trace.union_cycles
            ) / trace.result.cycles.base
            per_repr[representation] = trace
            if representation == "robdd":
                slowdowns.append(slow)
                registry.counter("lineage.union_cycles").inc(trace.union_cycles)
                registry.gauge("lineage.shadow_set_bytes.peak").set_max(
                    trace.shadow_set_bytes
                )
                registry.gauge("lineage.memory_overhead.peak").set_max(
                    trace.memory_overhead
                )
            result.rows.append(
                [
                    w.name,
                    representation,
                    f"{matches}/{w.n_outputs}",
                    slow,
                    trace.memory_overhead,
                    trace.shadow_set_bytes,
                    trace.union_cycles,
                ]
            )
        if w.name == "cumulative-sum":
            mem_ratio_on_overlapping = per_repr["naive"].shadow_set_bytes / max(
                1, per_repr["robdd"].shadow_set_bytes
            )
    result.headline = {
        "robdd_slowdown_max": max(slowdowns),
        "paper_slowdown_bound": 40.0,
        "naive_over_robdd_memory_on_overlapping_sets": mem_ratio_on_overlapping,
    }
    result.metrics = registry.flat()  # roBDD representation, all workloads
    return result


# ---------------------------------------------------------------------------
# Fast path — wall-clock speedup of the implementation, not a paper claim
# ---------------------------------------------------------------------------
def run_fastpath(scale: int = 1, repeats: int = 5) -> ExperimentResult:
    """Wall-clock cost of the E1 ONTRAC workload suite with the fast
    execution path off vs on (``repro.fastpath`` flags).

    The modeled cycle counts and the stored record stream are asserted
    identical between the two configurations on every workload — the
    speedup is purely host-side implementation efficiency, never a
    change in what the simulation computes.  Per-side times are the min
    over ``repeats`` runs to suppress host timing noise.
    """
    import time

    from .. import fastpath
    from ..fastpath import FastPathConfig

    result = ExperimentResult(
        experiment="fastpath",
        claim="fast execution path >=2x wall-clock on traced suite, bit-identical",
        headers=["workload", "off s", "on s", "speedup", "identical"],
    )

    workloads = suite(scale)  # compiled once; timing covers execution only

    def digest(tracer, res):
        return (
            res.cycles.total,
            res.instructions,
            tracer.stats.stored_bytes,
            dict(tracer.stats.stored),
            dict(tracer.stats.skipped),
            [
                (r.kind, r.consumer_seq, r.consumer_pc, r.producer_seq, r.producer_pc, r.tid)
                for r in tracer.buffer.records
            ],
        )

    def side(config):
        """min-over-repeats time of one full traced pass over the suite."""
        best_total, best_times, digests, tracers = float("inf"), None, None, None
        with fastpath.overridden(config):
            for _ in range(repeats):
                pass_times, pass_digests, pass_tracers = [], [], []
                for w in workloads:
                    runner = w.runner()
                    t0 = time.perf_counter()
                    _, tracer, res = runner.run_traced(OntracConfig())
                    pass_times.append(time.perf_counter() - t0)
                    pass_digests.append(digest(tracer, res))
                    pass_tracers.append(tracer)
                total = sum(pass_times)
                if total < best_total:
                    best_total, best_times = total, pass_times
                    digests, tracers = pass_digests, pass_tracers
        return best_total, best_times, digests, tracers

    off_total, off_times, off_digests, _ = side(FastPathConfig.all_off())
    on_total, on_times, on_digests, tracers = side(FastPathConfig.all_on())
    all_identical = True
    for w, off_s, on_s, off_d, on_d in zip(
        workloads, off_times, on_times, off_digests, on_digests
    ):
        identical = off_d == on_d
        all_identical = all_identical and identical
        result.rows.append([w.name, off_s, on_s, off_s / on_s, identical])
    if not all_identical:
        result.notes = "BIT-IDENTITY VIOLATED — fast path changed observables"
    result.rows.append(["suite pass", off_total, on_total, off_total / on_total, ""])

    registry = MetricsRegistry()
    for tracer in tracers:
        tracer.publish_telemetry(registry)

    # One instrumented run so the introspection counters land in metrics
    # (dispatch hits from the VM, page counts from a paged DIFT shadow).
    with fastpath.overridden(FastPathConfig.all_on()):
        from ..telemetry import Telemetry

        telemetry = Telemetry(registry=registry)
        runner = workloads[0].runner()
        runner.telemetry = telemetry
        m = runner.machine()
        engine = DIFTEngine(BoolTaintPolicy()).attach(m)
        m.run(max_instructions=runner.max_instructions)
        engine.publish_telemetry(registry)

    result.headline = {
        "traced_suite_speedup": off_total / on_total,
        "target_speedup": 2.0,
        "bit_identical": float(all_identical),
    }
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# Batch propagation kernel — array vs reference throughput, bit-identical
# ---------------------------------------------------------------------------
def run_kernel(scale: int = 2, repeats: int = 5) -> ExperimentResult:
    """Propagation throughput of the vectorized
    :class:`~repro.dift.kernel.ArrayKernel` vs the pure-python
    :class:`~repro.dift.kernel.ReferenceKernel` over identical captured
    record streams.

    Each workload's packed record stream (the ring wire format) is
    captured once; both kernels then consume the very same chunks, so
    the comparison isolates propagation itself from VM execution.
    Alerts, stats, shadow taint sets and the peak-location high-water
    mark are asserted identical per workload; the headline speedup is
    aggregate propagation throughput (records/s over the whole suite,
    min-over-``repeats`` per side).  Without numpy the array side runs
    the reference kernel (``numpy_available`` records which case ran)
    and the speedup degenerates to ~1.
    """
    import time

    from .. import fastpath
    from ..dift.engine import SinkRule
    from ..dift.kernel import RECORD_SIZE, RecordStreamCapture, build_kernel
    from ..dift.policy import BoolTaintPolicy as _Bool

    result = ExperimentResult(
        experiment="kernel",
        claim=(
            "vectorized batch propagation >=3x reference throughput on the "
            "DIFT-heavy suite, observables bit-identical"
        ),
        headers=["workload", "records", "ref s", "array s", "speedup", "identical"],
    )
    workloads = suite(scale)
    numpy_ok = fastpath.numpy_available()
    array_name = "array" if numpy_ok else "reference"

    captures = []
    for w in workloads:
        runner = w.runner()
        m = runner.machine()
        cap = RecordStreamCapture().attach(m)
        m.run(max_instructions=runner.max_instructions)
        cap.finish()
        captures.append(cap)

    def one_pass(name, cap):
        kern = build_kernel(
            name, _Bool(), sinks=[SinkRule(kind="out", action="record")]
        )
        cap.prime(kern)
        t0 = time.perf_counter()
        for chunk in cap.chunks:
            kern.propagate_batch(chunk)
        elapsed = time.perf_counter() - t0
        cap.patch_alerts(kern.alerts)
        return kern, elapsed

    all_identical = True
    ref_total = arr_total = 0.0
    total_records = 0
    arr_kernels = []
    for w, cap in zip(workloads, captures):
        best_ref = best_arr = float("inf")
        for _ in range(repeats):
            ref_kern, ref_s = one_pass("reference", cap)
            arr_kern, arr_s = one_pass(array_name, cap)
            best_ref = min(best_ref, ref_s)
            best_arr = min(best_arr, arr_s)
        identical = (
            str(ref_kern.alerts) == str(arr_kern.alerts)
            and ref_kern.stats == arr_kern.stats
            and ref_kern.shadow.regs == arr_kern.shadow.regs
            and ref_kern.shadow.mem_items() == arr_kern.shadow.mem_items()
            and ref_kern.shadow.peak_locations == arr_kern.shadow.peak_locations
        )
        all_identical = all_identical and identical
        arr_kernels.append(arr_kern)
        n_rec = sum(len(c) for c in cap.chunks) // RECORD_SIZE
        total_records += n_rec
        ref_total += best_ref
        arr_total += best_arr
        result.rows.append(
            [w.name, n_rec, best_ref, best_arr, best_ref / best_arr, identical]
        )
    result.rows.append(
        ["suite", total_records, ref_total, arr_total, ref_total / arr_total, ""]
    )
    if not all_identical:
        result.notes = "BIT-IDENTITY VIOLATED — array kernel changed observables"

    result.headline = {
        "propagation_speedup": ref_total / arr_total,
        "target_speedup": 3.0,
        "identical": float(all_identical),
        "numpy_available": float(numpy_ok),
        "reference_records_per_s": total_records / max(ref_total, 1e-9),
        "array_records_per_s": total_records / max(arr_total, 1e-9),
    }
    result.metrics = {
        "dift.kernel.batches": float(sum(k.batches for k in arr_kernels)),
        "dift.kernel.records": float(sum(k.records_consumed for k in arr_kernels)),
        "dift.kernel.replayed": float(sum(k.records_replayed for k in arr_kernels)),
        "dift.kernel.fixpoint_fallbacks": float(
            sum(getattr(k, "fixpoint_fallbacks", 0) for k in arr_kernels)
        ),
    }
    return result


# ---------------------------------------------------------------------------
# Function-summary DIFT — call-region replay vs instruction-level propagation
# ---------------------------------------------------------------------------
def run_summaries(scale: int = 1, repeats: int = 3) -> ExperimentResult:
    """Propagation wall clock with and without function summaries
    (:class:`~repro.dift.summaries.SummaryKernel`) over identical
    marked record streams.

    Each workload's stream is captured once with CALL/RET markers cut
    in (zero-weight records base kernels ignore, so both sides consume
    the very same bytes).  The base side is the session's batch kernel
    alone; the summary side wraps a fresh kernel + fresh cache per
    pass, so every timed pass pays its own learning — the speedup is
    the realistic single-run number, not a warm-cache best case.  The
    suite is the six call-free spec workloads (summaries must not
    slow them) plus the call-heavy trio at 0%/10%/50% polymorphism;
    alerts, stats, shadow taint and peak residency are asserted
    identical per workload, and the record ledger must reconcile:
    consumed == markers + elided + records reaching the inner kernel.
    """
    import time

    from .. import fastpath
    from ..dift.engine import SinkRule
    from ..dift.kernel import RECORD_SIZE, RecordStreamCapture, build_kernel
    from ..dift.policy import BoolTaintPolicy as _Bool
    from ..dift.summaries import SummaryKernel
    from ..workloads.generators import call_heavy

    result = ExperimentResult(
        experiment="summaries",
        claim=(
            "learned call summaries replay taint transfer in O(footprint): "
            ">=5x propagation on call-heavy code, >=2x suite aggregate, "
            "observables bit-identical"
        ),
        headers=[
            "workload", "records", "base s", "summary s", "speedup",
            "hits", "inval", "elided", "identical",
        ],
    )
    iters = 128 * scale
    workloads = list(suite(scale)) + [
        call_heavy(0, iterations=iters, stmts=64, name="calls-p0"),
        call_heavy(10, iterations=iters, stmts=64, name="calls-p10"),
        call_heavy(2, iterations=iters, stmts=64, name="calls-p50"),
    ]
    numpy_ok = fastpath.numpy_available()
    kernel_name = "array" if numpy_ok else "reference"

    captures = []
    for w in workloads:
        runner = w.runner()
        m = runner.machine()
        cap = RecordStreamCapture(markers=True).attach(m)
        m.run(max_instructions=runner.max_instructions)
        cap.finish()
        captures.append(cap)

    def base_pass(cap):
        kern = build_kernel(
            kernel_name, _Bool(), sinks=[SinkRule(kind="out", action="record")]
        )
        cap.prime(kern)
        t0 = time.perf_counter()
        for chunk in cap.chunks:
            kern.propagate_batch(chunk)
        elapsed = time.perf_counter() - t0
        cap.patch_alerts(kern.alerts)
        return kern, elapsed

    def summary_pass(cap):
        inner = build_kernel(
            kernel_name, _Bool(), sinks=[SinkRule(kind="out", action="record")]
        )
        kern = SummaryKernel(inner)
        cap.prime(kern)
        t0 = time.perf_counter()
        for chunk in cap.chunks:
            kern.propagate_batch(chunk)
        kern.settle()
        elapsed = time.perf_counter() - t0
        cap.patch_alerts(kern.alerts)
        return kern, elapsed

    all_identical = True
    all_reconciled = True
    base_total = summ_total = 0.0
    total_records = 0
    per_name: dict[str, float] = {}
    counter_totals = {"learned": 0, "hits": 0, "invalidations": 0, "records_elided": 0}
    p50_invalidations = 0
    for w, cap in zip(workloads, captures):
        best_base = best_summ = float("inf")
        for _ in range(repeats):
            base_kern, base_s = base_pass(cap)
            summ_kern, summ_s = summary_pass(cap)
            best_base = min(best_base, base_s)
            best_summ = min(best_summ, summ_s)
        identical = (
            str(base_kern.alerts) == str(summ_kern.alerts)
            and base_kern.stats == summ_kern.stats
            and base_kern.shadow.regs == summ_kern.shadow.regs
            and base_kern.shadow.mem_items() == summ_kern.shadow.mem_items()
            and base_kern.shadow.peak_locations == summ_kern.shadow.peak_locations
        )
        all_identical = all_identical and identical
        reconciled = summ_kern.records_consumed == (
            summ_kern.markers
            + summ_kern.records_elided
            + summ_kern.inner.records_consumed
        )
        all_reconciled = all_reconciled and reconciled
        counters = summ_kern.counters()
        for key in counter_totals:
            counter_totals[key] += counters[key]
        if w.name == "calls-p50":
            p50_invalidations = counters["invalidations"]
        n_rec = sum(len(c) for c in cap.chunks) // RECORD_SIZE
        total_records += n_rec
        base_total += best_base
        summ_total += best_summ
        per_name[w.name] = best_base / best_summ
        result.rows.append(
            [
                w.name, n_rec, best_base, best_summ, best_base / best_summ,
                counters["hits"], counters["invalidations"],
                counters["records_elided"], identical and reconciled,
            ]
        )
    result.rows.append(
        ["suite", total_records, base_total, summ_total,
         base_total / summ_total, "", "", "", ""]
    )
    if not all_identical:
        result.notes = "BIT-IDENTITY VIOLATED — summary replay changed observables"
    elif not all_reconciled:
        result.notes = "RECORD LEDGER MISMATCH — elision double-counted records"

    attempts = counter_totals["hits"] + counter_totals["learned"] + (
        counter_totals["invalidations"]
    )
    result.headline = {
        "callheavy_speedup": per_name.get("calls-p0", 0.0),
        "aggregate_speedup": base_total / summ_total,
        "target_callheavy_speedup": 5.0,
        "target_aggregate_speedup": 2.0,
        "identical": float(all_identical),
        "reconciled": float(all_reconciled),
        "polymorphic_invalidations": float(p50_invalidations),
        "summary_hit_rate": (
            counter_totals["hits"] / attempts if attempts else 0.0
        ),
        "numpy_available": float(numpy_ok),
    }
    result.metrics = {
        f"dift.summaries.{key}": float(value)
        for key, value in counter_totals.items()
    }
    result.metrics["dift.summaries.records_total"] = float(total_records)
    return result


# ---------------------------------------------------------------------------
# Packed store + indexed slicing — query wall clock and real residency
# ---------------------------------------------------------------------------
def run_slicing(scale: int = 1, repeats: int = 3) -> ExperimentResult:
    """Backward-slicing wall clock and trace-store residency with the
    packed columnar store + indexed engine vs the legacy object-deque
    DDG pipeline.

    Both sides trace every suite workload with an identical
    ``OntracConfig`` (only ``packed_store`` differs) and answer the same
    deterministic criterion batch — a spread of dynamic instances, each
    queried twice, the fault-localization access pattern the closure
    memo exists for.  Every slice's (seqs, pcs, truncated) triple is
    asserted equal between the sides, so the speedup column can never
    hide a semantic difference.  The timed region is graph construction
    plus the query batch: that is what `slice`/fault-localization
    callers actually pay, and it is where the legacy path loses (one
    DDGNode + edge-list entry per record before the first query).

    Residency is measured, not modeled: tracemalloc's traced delta from
    freeing the trace store after a run (records + interner templates on
    the legacy side, column chunks on the packed side) at equal window
    — the implementation-metric counterpart to the paper's modeled
    ``bytes_per_instruction`` (see EXPERIMENTS.md).
    """
    import gc
    import time
    import tracemalloc

    result = ExperimentResult(
        experiment="slicing",
        claim=(
            "packed columnar store: >=3x backward slicing and >=4x lower "
            "measured trace-store residency, slices bit-identical"
        ),
        headers=["workload", "legacy s", "packed s", "speedup", "identical"],
    )
    workloads = suite(scale)
    n_criteria = 24

    def traced(w, packed):
        runner = w.runner()
        _, tracer, _ = runner.run_traced(OntracConfig(packed_store=packed))
        return tracer

    def criteria_of(ddg):
        seqs = sorted(s for s, _ in ddg.node_items())
        if len(seqs) > n_criteria:
            step = len(seqs) // n_criteria
            picked = seqs[::step][:n_criteria]
        else:
            picked = list(seqs)
        return picked + picked  # repeated criteria exercise the memo

    def slice_pass(tracer, crits):
        """One timed graph-construction + query batch; returns the
        elapsed time, the comparable slice states, and the DDG."""
        t0 = time.perf_counter()
        ddg = tracer.dependence_graph()
        slices = [backward_slice(ddg, c) for c in crits]
        elapsed = time.perf_counter() - t0
        states = [
            (c, tuple(sorted(s.seqs)), tuple(sorted(s.pcs)), s.truncated)
            for c, s in zip(crits, slices)
        ]
        return elapsed, states, ddg

    def resident_store_bytes(w, packed):
        """tracemalloc delta from freeing the trace store post-run."""
        gc.collect()
        tracemalloc.start()
        tracer = traced(w, packed)
        gc.collect()
        before = tracemalloc.get_traced_memory()[0]
        if packed:
            tracer.buffer.release()
        else:
            tracer.buffer.records.clear()
            if tracer._interner is not None:
                tracer._interner.templates.clear()
        gc.collect()
        after = tracemalloc.get_traced_memory()[0]
        tracemalloc.stop()
        return max(before - after, 1), max(tracer.stats.instructions, 1)

    registry = MetricsRegistry()
    legacy_total = packed_total = 0.0
    legacy_resident = packed_resident = 0
    instructions_total = 0
    modeled_bytes = 0
    all_identical = True
    for w in workloads:
        legacy_tracer = traced(w, packed=False)
        packed_tracer = traced(w, packed=True)
        # The criterion batch is picked outside the timed region (it is
        # workload state, not slicing work) and must agree across sides.
        crits = criteria_of(legacy_tracer.dependence_graph())
        assert crits == criteria_of(packed_tracer.dependence_graph())
        best_legacy = best_packed = float("inf")
        legacy_states = packed_states = None
        packed_ddg = None
        for _ in range(repeats):
            elapsed, states, _ = slice_pass(legacy_tracer, crits)
            if elapsed < best_legacy:
                best_legacy, legacy_states = elapsed, states
            elapsed, states, ddg = slice_pass(packed_tracer, crits)
            if elapsed < best_packed:
                best_packed, packed_states = elapsed, states
                packed_ddg = ddg
        identical = legacy_states == packed_states
        all_identical = all_identical and identical
        legacy_total += best_legacy
        packed_total += best_packed
        result.rows.append(
            [w.name, best_legacy, best_packed, best_legacy / best_packed, identical]
        )
        packed_ddg.publish_telemetry(registry)
        packed_tracer.publish_telemetry(registry)
        modeled_bytes += packed_tracer.stats.stored_bytes
        lb, instrs = resident_store_bytes(w, packed=False)
        pb, _ = resident_store_bytes(w, packed=True)
        legacy_resident += lb
        packed_resident += pb
        instructions_total += instrs
    result.rows.append(
        ["suite pass", legacy_total, packed_total, legacy_total / packed_total, ""]
    )
    result.rows.append(
        [
            "resident B/instr",
            legacy_resident / instructions_total,
            packed_resident / instructions_total,
            legacy_resident / packed_resident,
            "",
        ]
    )
    if not all_identical:
        result.notes = "SLICE MISMATCH — packed store diverged from legacy slices"
    result.headline = {
        "slice_speedup": legacy_total / packed_total,
        "target_speedup": 3.0,
        "residency_reduction": legacy_resident / packed_resident,
        "target_residency_reduction": 4.0,
        "identical": float(all_identical),
        # paper metric (modeled wire bytes) vs implementation metric
        # (measured resident store bytes) at the same window.
        "modeled_bytes_per_instr": modeled_bytes / instructions_total,
        "measured_packed_bytes_per_instr": packed_resident / instructions_total,
        "measured_legacy_bytes_per_instr": legacy_resident / instructions_total,
    }
    result.metrics = registry.flat()
    return result


# ---------------------------------------------------------------------------
# Trace lake — stored-run query fidelity and cross-run diff localization
# ---------------------------------------------------------------------------
def run_lake(scale: int = 1) -> ExperimentResult:
    """Persist every suite workload's trace into a throwaway lake and
    prove the stored runs answer queries **without re-execution** and
    **bit-identically** to the live in-memory buffer.

    Three checks per workload: (1) backward and forward slices over a
    spread of criteria, queried on the live packed DDG and on the
    mmap'd stored run, must match exactly (seqs, pcs, truncated); (2)
    the stored node set itself must match; (3) the spill-enabled trace
    must not slow tracing beyond a small constant factor (sealed chunks
    are written once, off the hot append path).

    Then the cross-run story: for each diffable buggy-corpus family the
    failing *buggy* run is diffed — in source-line space, via the
    manifests' pc→line maps — against passing *fixed* runs, and the
    suspect edge set must implicate a known bug line.  Families whose
    injected bug does not change the dependence-edge set (e.g. a wrong
    operator on the same operands) are reported but not required to
    localize.
    """
    import shutil
    import tempfile
    import time

    from ..lake import (
        TraceLake,
        diff_runs,
        input_hash,
        postmortem,
        program_hash,
        slice_stored,
        suspect_lines,
    )
    from ..slicing import forward_slice
    from ..workloads import corpus

    result = ExperimentResult(
        experiment="lake",
        claim=(
            "stored runs answer slice/lineage/postmortem re-execution-free "
            "and bit-identical; cross-run diff localizes injected bugs"
        ),
        headers=["case", "rows", "identical", "spill ratio", "detail"],
    )
    import os

    root = tempfile.mkdtemp(prefix="repro-lake-exp-")
    lake = TraceLake(root)
    n_criteria = 12
    repeats = 3
    all_identical = True
    plain_total = spill_total = 0.0
    try:
        for w in suite(scale):
            plain_s = spill_s = float("inf")
            scratch = os.path.join(root, "scratch.rlk")
            tracer = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                w.runner().run_traced(OntracConfig())
                plain_s = min(plain_s, time.perf_counter() - t0)
                t0 = time.perf_counter()
                _, tracer, _ = w.runner().run_traced(
                    OntracConfig(spill_path=scratch)
                )
                spill_s = min(spill_s, time.perf_counter() - t0)
            pending = lake.begin_run(
                program=w.name, input_hash=input_hash(w.inputs),
            )
            # finish() seals the scratch spill and copies it into the
            # reserved run directory.
            run_id = pending.finish(tracer=tracer, compiled=w.compiled)
            os.remove(scratch)
            ratio = spill_s / max(plain_s, 1e-9)
            plain_total += plain_s
            spill_total += spill_s

            live = tracer.dependence_graph()
            live_nodes = sorted(live.node_items())
            seqs = [s for s, _ in live_nodes]
            step = max(1, len(seqs) // n_criteria)
            crits = seqs[::step][:n_criteria]
            identical = True
            with lake.open(run_id) as stored:
                identical &= sorted(stored.ddg().node_items()) == live_nodes
                for crit in crits:
                    for direction, ref in (
                        ("backward", backward_slice(live, crit)),
                        ("forward", forward_slice(live, crit)),
                    ):
                        got = slice_stored(stored, crit, direction=direction)
                        identical &= (
                            got.seqs == ref.seqs
                            and got.pcs == ref.pcs
                            and got.truncated == ref.truncated
                        )
                report = postmortem(stored, lake.manifest(run_id))
                identical &= not report["recovered"]
                identical &= report["rows"] == len(tracer.buffer)
            all_identical &= identical
            result.rows.append(
                [w.name, len(tracer.buffer), identical, ratio,
                 f"{len(crits)}x2 slices"]
            )

        # Cross-run diff: failing buggy build vs passing fixed builds.
        # These families' injected bugs change the dependence-edge set,
        # so the line-space diff must implicate a recorded bug line
        # (wrong-operator/wrong-constant compute the same dependences
        # with different values; heap-overflow's suspect edge is the
        # corrupting store, one line below the faulty loop bound).
        diffable = {
            "wrong-variable", "omission-predicate", "omission-init",
            "malformed-request",
        }
        localized = 0
        attempted = 0
        for b in corpus():
            if not b.failing_inputs or not b.passing_inputs:
                continue
            attempted += 1
            _, tr, _ = b.runner(failing=True).run_traced(
                OntracConfig()
            )
            failing_id = lake.put(
                tr.buffer,
                program=program_hash(b.source),
                input_hash=input_hash(b.failing_inputs),
                compiled=b.compiled,
                notes=f"{b.name} failing",
            )
            passing_ids = []
            for inputs in (b.failing_inputs, b.passing_inputs):
                runner = ProgramRunner(
                    b.fixed_compiled.program,
                    inputs={k: list(v) for k, v in inputs.items()},
                    scheduler_factory=b.scheduler_factory,
                    max_instructions=2_000_000,
                )
                _, tr, _ = runner.run_traced(OntracConfig())
                passing_ids.append(lake.put(
                    tr.buffer,
                    program=program_hash(b.fixed_source),
                    input_hash=input_hash(inputs),
                    compiled=b.fixed_compiled,
                    notes=f"{b.name} fixed",
                ))
            diff = diff_runs(lake, failing_id, passing_ids)
            hit = bool(suspect_lines(diff) & b.bug_lines)
            localized += hit
            if b.name in diffable and not hit:
                all_identical = False
            result.rows.append(
                [f"diff:{b.name}", diff["failing_edges"],
                 diff["space"] == "line", "",
                 f"{len(diff['suspects'])} suspects, "
                 f"{len(diff['missing'])} missing"
                 + (", bug line hit" if hit else "")]
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if not all_identical:
        result.notes = (
            "LAKE MISMATCH — stored-run queries diverged from live buffers "
            "or a diffable bug family failed to localize"
        )
    result.headline = {
        "identical": float(all_identical),
        "spill_overhead": spill_total / max(plain_total, 1e-9),
        "target_spill_overhead": 1.15,
        "diff_localized_families": float(localized),
        "diff_attempted_families": float(attempted),
        "target_localized_families": 2.0,
    }
    return result


# ---------------------------------------------------------------------------
# Parallel helper — wall-clock cost of the *real* out-of-process worker
# ---------------------------------------------------------------------------
def run_parallel(scale: int = 2, repeats: int = 2, batch_size: int = 256) -> ExperimentResult:
    """Wall-clock cost of a DIFT-heavy pass over the workload suite with
    the inline engine vs :class:`~repro.multicore.parallel.ParallelHelperDIFT`.

    Where :func:`run_e4` *models* the helper core in cycles, this
    experiment *runs* it: a real worker process consumes the
    shared-memory ring and executes the unmodified engine.  Every
    workload's alerts, taint sets and stats are asserted equal between
    the two runs, so the speedup column can never hide a semantic
    difference.  Per-side times are the min over ``repeats`` passes.

    Three timelines are reported.  *Wall clock* (the per-workload rows)
    is host-dependent: with a single usable CPU the parent and worker
    time-share one core, so parity is the ceiling.  *Application-core
    CPU* (``time.process_time``, which never counts the worker's cycles)
    measures what the paper actually claims — how much of the main
    core's time DIFT still consumes once propagation is offloaded — and
    is host-independent.  ``projected_multicore_speedup`` extrapolates
    the >=2-CPU end-to-end case from the measured split (app-core CPU
    vs worker busy time overlap there instead of serializing), and
    ``usable_cpus`` records which regime produced the wall numbers.

    The inline comparator runs the per-event reference kernel: the
    offload claim is about where per-record propagation happens, so its
    baseline does that work inline.  Two kernel A/B views accompany it:
    ``app_core_speedup_vs_array_inline`` re-times the inline side with
    the default (array) batch kernel — near-parity there means on-core
    batched propagation rivals offloading, which is the PR 8 kernel
    working as intended — and ``worker_kernel_lift`` re-times the
    *worker* pinned to the reference kernel, isolating what the array
    kernel buys the offloaded pipeline end to end.
    """
    import os
    import time

    from ..dift.policy import BoolTaintPolicy as _Bool
    from ..dift.engine import SinkRule
    from ..multicore.parallel import ParallelHelperDIFT

    result = ExperimentResult(
        experiment="parallel",
        claim=(
            "out-of-process DIFT helper cuts application-core overhead >=1.5x "
            "with identical observables; end-to-end wall clock is worker-bound"
        ),
        headers=["workload", "inline s", "parallel s", "speedup", "identical"],
    )
    workloads = suite(scale)
    sinks = lambda: [SinkRule(kind="out", action="record")]  # noqa: E731

    INF = float("inf")
    best_bare = {w.name: INF for w in workloads}
    best_inline = {w.name: INF for w in workloads}
    best_inline_cpu = {w.name: INF for w in workloads}
    best_array_cpu = {w.name: INF for w in workloads}
    best_parallel = {w.name: INF for w in workloads}
    best_parent_cpu = {w.name: INF for w in workloads}
    engines, helpers = {}, {}
    for _ in range(repeats):
        for w in workloads:
            # Uninstrumented baseline: application-core CPU with no DIFT.
            runner = w.runner()
            m = runner.machine()
            c0 = time.process_time()
            m.run(max_instructions=runner.max_instructions)
            best_bare[w.name] = min(best_bare[w.name], time.process_time() - c0)

            # Offload comparator: per-event inline propagation.  The
            # offload claim is about *where* per-record propagation
            # runs, so its baseline does that work inline (the paper's
            # main-core software DIFT); the batched array kernel's own
            # inline cost is measured separately below and reported
            # ungated.
            runner = w.runner()
            m = runner.machine()
            engine = DIFTEngine(_Bool(), sinks=sinks(), kernel="reference").attach(m)
            t0 = time.perf_counter()
            c0 = time.process_time()
            m.run(max_instructions=runner.max_instructions)
            elapsed = time.perf_counter() - t0
            best_inline_cpu[w.name] = min(
                best_inline_cpu[w.name], time.process_time() - c0
            )
            if elapsed < best_inline[w.name]:
                best_inline[w.name] = elapsed
                engines[w.name] = engine

            runner = w.runner()
            m = runner.machine()
            DIFTEngine(_Bool(), sinks=sinks()).attach(m)
            c0 = time.process_time()
            m.run(max_instructions=runner.max_instructions)
            best_array_cpu[w.name] = min(
                best_array_cpu[w.name], time.process_time() - c0
            )

            m = runner.machine()
            helper = ParallelHelperDIFT(_Bool(), sinks=sinks(), batch_size=batch_size)
            helper.attach(m)
            t0 = time.perf_counter()
            c0 = time.process_time()
            m.run(max_instructions=runner.max_instructions)
            helper.finish()
            elapsed = time.perf_counter() - t0
            # process_time excludes the worker's CPU, so this is the
            # application core's true cost even when both time-share one
            # CPU (the wall clock above cannot make that distinction).
            best_parent_cpu[w.name] = min(
                best_parent_cpu[w.name], time.process_time() - c0
            )
            if elapsed < best_parallel[w.name]:
                best_parallel[w.name] = elapsed
                helpers[w.name] = helper

    all_identical = True
    worker_busy_total = 0.0
    for w in workloads:
        engine, helper = engines[w.name], helpers[w.name]
        identical = (
            engine.alerts == helper.alerts
            and engine.stats == helper.stats
            and engine.shadow.regs == helper.shadow.regs
            and engine.shadow.mem_items() == helper.shadow.mem_items()
        )
        all_identical = all_identical and identical
        worker_busy_total += helper.report().worker_busy_s
        result.rows.append(
            [
                w.name,
                best_inline[w.name],
                best_parallel[w.name],
                best_inline[w.name] / best_parallel[w.name],
                identical,
            ]
        )
    bare_total = sum(best_bare.values())
    inline_total = sum(best_inline.values())
    inline_cpu_total = sum(best_inline_cpu.values())
    parallel_total = sum(best_parallel.values())
    parent_cpu_total = sum(best_parent_cpu.values())
    result.rows.append(
        ["suite pass", inline_total, parallel_total, inline_total / parallel_total, ""]
    )
    array_cpu_total = sum(best_array_cpu.values())
    result.rows.append(
        [
            "app-core CPU",
            inline_cpu_total,
            parent_cpu_total,
            inline_cpu_total / parent_cpu_total,
            "",
        ]
    )
    # Informational, ungated: the PR 8 array kernel makes *inline* DIFT
    # cheap enough that on-core batched propagation rivals offloading —
    # a ratio near (or below) 1.0 here is the kernel working, not the
    # helper failing.
    result.rows.append(
        [
            "app-core CPU vs array-inline",
            array_cpu_total,
            parent_cpu_total,
            array_cpu_total / parent_cpu_total,
            "",
        ]
    )
    if not all_identical:
        result.notes = "OBSERVABLE MISMATCH — parallel helper diverged from inline"

    # Kernel A/B: the same offloaded pass with the worker pinned to the
    # reference kernel — what the vectorized batch kernel buys the
    # worker end-to-end (wall clock is worker-bound, so a faster
    # propagation loop shows up directly).
    ref_kernel_total = 0.0
    for w in workloads:
        runner = w.runner()
        m = runner.machine()
        helper = ParallelHelperDIFT(
            _Bool(), sinks=sinks(), batch_size=batch_size, kernel="reference"
        )
        helper.attach(m)
        t0 = time.perf_counter()
        m.run(max_instructions=runner.max_instructions)
        helper.finish()
        ref_kernel_total += time.perf_counter() - t0
    worker_kernel_lift = ref_kernel_total / max(parallel_total, 1e-9)
    result.rows.append(
        [
            "worker kernel A/B",
            ref_kernel_total,
            parallel_total,
            worker_kernel_lift,
            "",
        ]
    )

    # Extrapolate the >=2-CPU end-to-end speedup from the measured work
    # split: parent CPU and worker busy time overlap on a multicore host,
    # so the wall clock there is their max rather than their sum.
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = os.cpu_count() or 1
    projected = inline_cpu_total / max(parent_cpu_total, worker_busy_total, 1e-9)

    result.headline = {
        "suite_speedup": inline_total / parallel_total,
        "app_core_speedup": inline_cpu_total / parent_cpu_total,
        "app_core_slowdown_inline": inline_cpu_total / bare_total,
        "app_core_slowdown_parallel": parent_cpu_total / bare_total,
        "app_core_speedup_vs_array_inline": array_cpu_total / parent_cpu_total,
        "projected_multicore_speedup": projected,
        "worker_kernel_lift": worker_kernel_lift,
        "usable_cpus": float(cpus),
        "identical": float(all_identical),
        "batch_size": float(batch_size),
    }
    registry = MetricsRegistry()
    for w in workloads:
        helpers[w.name].publish_telemetry(registry)
    result.metrics = registry.flat()
    return result


def run_service(
    jobs: int = 8, scale: int = 1, scaled_workers: int = 4, burst: int = 10
) -> ExperimentResult:
    """Throughput, overload shedding and cache idempotency of the
    analysis service (:mod:`repro.service`).

    Three live measurements against real daemons on Unix sockets:

    * **Worker scaling** — ``jobs`` cache-defeating jobs of interleaved
      kinds against a 1-worker and a ``scaled_workers``-worker daemon;
      the ratio of job throughputs is the pool's process-level scaling.
      Meaningful only with >=2 usable CPUs (``usable_cpus`` records the
      regime; on one CPU the workers time-share a core).
    * **Overload burst** — ``burst`` concurrent jobs against a 1-worker,
      capacity-4 daemon.  Every response must arrive (zero hangs); the
      split across ok / degraded / rejected shows admission shedding
      fidelity first and jobs only at the capacity wall.
    * **Cache idempotency** — the same slice job twice; the repeat must
      be served from cache, bit-identical, and much faster.
    """
    import json
    import os
    import tempfile
    import threading
    import time

    from ..service import AnalysisServer, ServiceClient, ServiceConfig
    from ..telemetry.obs import latency_summary

    result = ExperimentResult(
        experiment="service",
        claim=(
            "DIFT-as-a-service: worker processes scale throughput, overload "
            "sheds fidelity then jobs (never hangs), cached repeats are "
            "bit-identical"
        ),
        headers=["measurement", "value", "detail"],
    )
    tmp = tempfile.mkdtemp(prefix="repro-service-exp-")
    kinds = ("trace", "attack", "slice", "lineage")

    def submit_burst(address, n, tag, cache=False, deadline_s=120.0):
        """n concurrent one-job clients; returns (statuses, elapsed_s, hangs)."""
        statuses: list[str] = []
        lock = threading.Lock()

        def one(i):
            with ServiceClient(address) as client:
                response = client.submit(
                    kinds[i % len(kinds)],
                    workload="hashloop",
                    scale=scale,
                    cache=cache,
                    params={"tag": f"{tag}-{i}"},
                    deadline_s=deadline_s,
                )
            with lock:
                statuses.append(response.get("status", "no-response"))

        threads = [threading.Thread(target=one, args=(i,), daemon=True) for i in range(n)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        elapsed = time.perf_counter() - t0
        hangs = sum(1 for t in threads if t.is_alive())
        return statuses, elapsed, hangs

    # -- worker scaling -------------------------------------------------------
    throughput = {}
    for workers in (1, scaled_workers):
        config = ServiceConfig(
            socket_path=os.path.join(tmp, f"scale-{workers}.sock"),
            workers=workers,
            queue_capacity=max(16, 2 * jobs),
            degrade=False,  # uniform full-fidelity work for a fair ratio
        )
        with AnalysisServer(config):
            statuses, elapsed, hangs = submit_burst(
                config.address(), jobs, tag=f"w{workers}"
            )
        ok = sum(1 for s in statuses if s == "ok")
        throughput[workers] = ok / elapsed if elapsed > 0 else 0.0
        result.rows.append(
            [f"throughput {workers}w", f"{throughput[workers]:.2f} jobs/s",
             f"{ok}/{jobs} ok in {elapsed:.2f}s, {hangs} hangs"]
        )
    scaling = throughput[scaled_workers] / max(throughput[1], 1e-9)
    result.rows.append(
        [f"scaling 1w->{scaled_workers}w", f"{scaling:.2f}x", ""]
    )

    # -- overload burst -------------------------------------------------------
    config = ServiceConfig(
        socket_path=os.path.join(tmp, "overload.sock"),
        workers=1,
        queue_capacity=4,
    )
    with AnalysisServer(config) as server:
        statuses, elapsed, hangs = submit_burst(config.address(), burst, tag="burst")
        slo = latency_summary(server.registry)
    from collections import Counter

    counts = Counter(statuses)
    result.rows.append(
        ["overload burst",
         f"{counts.get('ok', 0)} ok / {counts.get('degraded', 0)} degraded / "
         f"{counts.get('rejected', 0)} rejected",
         f"{burst} jobs at capacity 4, {hangs} hangs"]
    )
    p50 = slo.get("p50_ms") or 0.0
    p95 = slo.get("p95_ms") or 0.0
    p99 = slo.get("p99_ms") or 0.0
    result.rows.append(
        ["overload SLO",
         f"p50 {p50:.0f} ms / p95 {p95:.0f} ms / p99 {p99:.0f} ms",
         f"shed rate {slo.get('shed_rate', 0.0):.2f} "
         f"({int(slo.get('jobs_received', 0))} received)"]
    )

    # -- cache idempotency ----------------------------------------------------
    config = ServiceConfig(
        socket_path=os.path.join(tmp, "cache.sock"), workers=1, queue_capacity=8
    )
    with AnalysisServer(config):
        with ServiceClient(config.address()) as client:
            t0 = time.perf_counter()
            cold = client.submit("slice", workload="sort", scale=scale)
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = client.submit("slice", workload="sort", scale=scale)
            warm_s = time.perf_counter() - t0
    canonical = lambda r: json.dumps(r.get("result"), sort_keys=True)  # noqa: E731
    cache_identical = (
        cold.get("status") == "ok"
        and warm.get("status") == "ok"
        and warm.get("cached") is True
        and canonical(cold) == canonical(warm)
    )
    cache_speedup = cold_s / max(warm_s, 1e-9)
    result.rows.append(
        ["cache repeat", f"{cache_speedup:.0f}x faster",
         f"cold {cold_s*1e3:.1f} ms -> warm {warm_s*1e3:.1f} ms, "
         f"identical={cache_identical}"]
    )
    if hangs or not cache_identical:
        result.notes = "SERVICE MISBEHAVED — hang or cache divergence (see rows)"

    # -- propagation-kernel A/B ----------------------------------------------
    # The same DIFT-heavy attack jobs against daemons whose workers run
    # the array vs the reference propagation kernel (workers fork under
    # the active fastpath override, so the whole pool inherits it).
    # Job results never carry the kernel name — only wall clock moves.
    from dataclasses import replace as _replace

    from .. import fastpath as _fastpath

    def attack_burst(sock_name: str, n: int = 6) -> float:
        config = ServiceConfig(
            socket_path=os.path.join(tmp, sock_name),
            workers=1,
            queue_capacity=max(16, 2 * n),
            degrade=False,
        )
        with AnalysisServer(config):
            with ServiceClient(config.address()) as client:
                t0 = time.perf_counter()
                for i in range(n):
                    client.submit(
                        "attack",
                        workload="matmul",
                        scale=scale,
                        cache=False,
                        params={"tag": f"{sock_name}-{i}", "out_sink": True},
                        deadline_s=120.0,
                    )
                return time.perf_counter() - t0

    arr_burst_s = attack_burst("kernel-array.sock")
    with _fastpath.overridden(
        _replace(_fastpath.current(), array_kernel=False)
    ):
        ref_burst_s = attack_burst("kernel-reference.sock")
    service_kernel_lift = ref_burst_s / max(arr_burst_s, 1e-9)
    result.rows.append(
        ["kernel A/B (attack jobs)", f"{service_kernel_lift:.2f}x lift",
         f"reference {ref_burst_s:.2f}s -> array {arr_burst_s:.2f}s, 6 jobs"]
    )

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = os.cpu_count() or 1
    result.headline = {
        "worker_scaling": scaling,
        "scaled_workers": float(scaled_workers),
        "usable_cpus": float(cpus),
        "overload_ok": float(counts.get("ok", 0)),
        "overload_degraded": float(counts.get("degraded", 0)),
        "overload_rejected": float(counts.get("rejected", 0)),
        "overload_hangs": float(hangs),
        "slo_p50_ms": p50,
        "slo_p95_ms": p95,
        "slo_p99_ms": p99,
        "shed_rate": float(slo.get("shed_rate", 0.0)),
        "cache_speedup": cache_speedup,
        "cache_identical": float(cache_identical),
        "service_kernel_lift": service_kernel_lift,
    }
    return result


def run_router(
    clients: int = 200, backends: int = 3, workers: int = 2, scale: int = 1
) -> ExperimentResult:
    """Load + correctness of the consistent-hash router tier
    (:mod:`repro.service.router`) fronting ``backends`` real daemons.

    Three live measurements:

    * **Concurrent load** — ``clients`` simultaneous one-job clients
      against 1 router + ``backends`` daemons.  The hard contract is
      *zero hangs*: every client gets a terminal frame, with overload
      answered by degraded/rejected statuses (the backends' admission
      ladder republished through the router), never silence.  The
      router's own ``router.latency.total_s`` histogram yields the
      p50/p95/p99 SLO, and the placement spread across backends shows
      consistent hashing actually fanning out.
    * **Streaming identity** — one job submitted twice: streamed through
      the router and blocking against its backend directly.  The
      reassembled partial ops and the terminal result must be
      byte-identical to the direct response.
    * **Router cache** — a cached job repeated at the router must be
      answered from the router's own cache (no backend round trip).
    """
    import json
    import os
    import tempfile
    import threading
    import time
    from collections import Counter

    from ..service import (
        AnalysisServer,
        RouterConfig,
        RouterServer,
        ServiceClient,
        ServiceConfig,
        reassemble,
    )
    from ..telemetry.obs import latency_summary

    result = ExperimentResult(
        experiment="router",
        claim=(
            "router tier: consistent-hash fan-out over N daemons sustains "
            f"{clients} concurrent clients with zero hangs, streamed relays "
            "stay bit-identical, and the router cache absorbs repeats"
        ),
        headers=["measurement", "value", "detail"],
    )
    tmp = tempfile.mkdtemp(prefix="repro-router-exp-")
    kinds = ("trace", "attack", "slice", "lineage")
    workloads = ("matmul", "sort", "hashloop", "rle", "bfs", "fsm")

    servers = [
        AnalysisServer(
            ServiceConfig(
                socket_path=os.path.join(tmp, f"backend-{i}.sock"),
                workers=workers,
                # Consistent hashing is intentionally unequal (programs,
                # not requests, are the unit); size each queue for the
                # skewed share so capacity rejects stay a small minority
                # even when one backend owns most of the hot keys.
                queue_capacity=max(32, (2 * clients) // backends),
            )
        ).start()
        for i in range(backends)
    ]
    router = RouterServer(
        RouterConfig(
            backends=[s.config.socket_path for s in servers],
            socket_path=os.path.join(tmp, "router.sock"),
            health_interval_s=0.2,
        )
    ).start()
    address = router.config.socket_path
    try:
        # -- concurrent load --------------------------------------------------
        statuses: list[str] = []
        lock = threading.Lock()

        def one(i):
            with ServiceClient(address, timeout_s=300.0) as client:
                response = client.submit(
                    kinds[i % len(kinds)],
                    workload=workloads[i % len(workloads)],
                    scale=scale,
                    fidelity="log",
                    cache=False,
                    params={"tag": f"load-{i}"},
                )
            with lock:
                statuses.append(response.get("status", "no-response"))

        threads = [
            threading.Thread(target=one, args=(i,), daemon=True)
            for i in range(clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600.0)
        elapsed = time.perf_counter() - t0
        hangs = sum(1 for t in threads if t.is_alive())
        counts = Counter(statuses)
        throughput = len(statuses) / elapsed if elapsed > 0 else 0.0
        spread = [b["jobs_relayed"] for b in router.health()["backends"].values()]
        result.rows.append(
            ["concurrent load",
             f"{len(statuses)}/{clients} answered in {elapsed:.2f}s",
             f"{counts.get('ok', 0)} ok / {counts.get('degraded', 0)} degraded / "
             f"{counts.get('rejected', 0)} rejected, {hangs} hangs"]
        )
        result.rows.append(
            ["placement spread", "/".join(str(n) for n in sorted(spread)),
             f"jobs relayed per backend ({backends} backends)"]
        )
        slo = latency_summary(router.registry, prefix="router")
        p50 = slo.get("p50_ms") or 0.0
        p95 = slo.get("p95_ms") or 0.0
        p99 = slo.get("p99_ms") or 0.0
        result.rows.append(
            ["router SLO", f"p50 {p50:.0f} ms / p95 {p95:.0f} ms / p99 {p99:.0f} ms",
             f"shed rate {slo.get('shed_rate', 0.0):.2f}, "
             f"reject rate {slo.get('reject_rate', 0.0):.2f}"]
        )

        # -- streaming identity -----------------------------------------------
        canonical = lambda obj: json.dumps(obj, sort_keys=True)  # noqa: E731
        with ServiceClient(servers[0].config.socket_path) as direct_client:
            # route the probe job to backend 0 by asking it directly for
            # the reference result; the router may place it anywhere
            direct = direct_client.submit("slice", workload="matmul",
                                          scale=scale, cache=False)
        with ServiceClient(address) as client:
            streamed, ops = client.submit_stream("slice", workload="matmul",
                                                 scale=scale, cache=False)
        stream_identical = (
            direct.get("status") == "ok"
            and streamed.get("status") == "ok"
            and canonical(streamed["result"]) == canonical(direct["result"])
            and canonical(reassemble(ops)) == canonical(streamed["result"])
        )
        result.rows.append(
            ["streamed relay", f"{len(ops)} partial frames",
             f"identical={stream_identical}"]
        )

        # -- router cache -----------------------------------------------------
        with ServiceClient(address) as client:
            client.submit("attack", workload="fsm", scale=scale)
            before = {a: b["jobs_relayed"]
                      for a, b in client.health()["backends"].items()}
            warm = client.submit("attack", workload="fsm", scale=scale)
            after = {a: b["jobs_relayed"]
                     for a, b in client.health()["backends"].items()}
        cache_hit = warm.get("cached") is True and before == after
        result.rows.append(
            ["router cache repeat", f"hit={cache_hit}",
             "served without a backend round trip"]
        )
    finally:
        router.stop()
        for server in servers:
            server.stop()

    if hangs:
        result.notes = "ROUTER MISBEHAVED — hung clients (see rows)"
    answered = sum(counts.get(s, 0) for s in ("ok", "degraded", "rejected"))
    result.headline = {
        "clients": float(clients),
        "backends": float(backends),
        "answered": float(answered),
        "hangs": float(hangs),
        "throughput_jobs_s": throughput,
        "load_ok": float(counts.get("ok", 0)),
        "load_degraded": float(counts.get("degraded", 0)),
        "load_rejected": float(counts.get("rejected", 0)),
        "slo_p50_ms": p50,
        "slo_p95_ms": p95,
        "slo_p99_ms": p99,
        "shed_rate": float(slo.get("shed_rate", 0.0)),
        "reject_rate": float(slo.get("reject_rate", 0.0)),
        "placement_min": float(min(spread)),
        "placement_max": float(max(spread)),
        "stream_identical": float(stream_identical),
        "stream_frames": float(len(ops)),
        "router_cache_hit": float(cache_hit),
    }
    return result


ALL_EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
}

#: named experiments outside the E1..E12 paper-claim set (selectable by
#: id through the CLI and run_experiment, excluded from the default sweep).
EXTRA_EXPERIMENTS = {
    "fastpath": run_fastpath,
    "kernel": run_kernel,
    "slicing": run_slicing,
    "summaries": run_summaries,
    "lake": run_lake,
    "parallel": run_parallel,
    "service": run_service,
    "router": run_router,
}


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment by id and stamp its host wall-clock time."""
    import time

    runner = ALL_EXPERIMENTS.get(name) or EXTRA_EXPERIMENTS[name]
    t0 = time.perf_counter()
    result = runner()
    result.wall_time_s = time.perf_counter() - t0
    return result


def _default_selection() -> list[str]:
    return sorted(ALL_EXPERIMENTS, key=lambda n: int(n[1:]))


def run_all(
    names: list[str] | None = None,
    workers: int | None = None,
    timeout_s: float | None = None,
) -> list[ExperimentResult]:
    """Run experiments, optionally fanned out over worker processes.

    ``workers > 1`` dispatches each experiment to a
    ``concurrent.futures.ProcessPoolExecutor``; results always come back
    in selection order regardless of completion order.  ``timeout_s``
    bounds each experiment's wait.  Any pool-level failure (a worker
    dying, a timeout, an unpicklable result) falls back to running the
    remaining selection sequentially in-process, so a broken pool can
    slow the sweep down but never change its results.
    """
    selected = names or _default_selection()
    if workers and workers > 1 and len(selected) > 1:
        results = _run_all_parallel(selected, workers, timeout_s)
        if results is not None:
            return results
    return [run_experiment(name) for name in selected]


def _run_all_parallel(
    selected: list[str], workers: int, timeout_s: float | None
) -> list[ExperimentResult] | None:
    """Fan experiments out over processes; None means "fall back"."""
    import concurrent.futures as cf
    import sys

    pool = cf.ProcessPoolExecutor(max_workers=min(workers, len(selected)))
    try:
        futures = [pool.submit(run_experiment, name) for name in selected]
        results = [f.result(timeout=timeout_s) for f in futures]
    except Exception as exc:  # timeout, broken pool, worker crash
        print(
            f"experiment fan-out failed ({type(exc).__name__}: {exc}); "
            "falling back to sequential",
            file=sys.stderr,
        )
        pool.shutdown(wait=False, cancel_futures=True)
        return None
    pool.shutdown()
    return results
