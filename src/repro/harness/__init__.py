"""Experiment harness: one runner per paper claim (see DESIGN.md §4)."""

from .experiments import (
    ALL_EXPERIMENTS,
    EXTRA_EXPERIMENTS,
    ExperimentResult,
    run_all,
    run_experiment,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "EXTRA_EXPERIMENTS",
    "ExperimentResult",
    "run_all",
    "run_experiment",
]
