"""Experiment harness: one runner per paper claim (see DESIGN.md §4)."""

from .experiments import ALL_EXPERIMENTS, ExperimentResult, run_all

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "run_all"]
