"""Wire protocol: length-prefixed JSON frames over a stream socket.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests and responses are both single frames; a
connection carries any number of request/response pairs in lockstep
(the client never pipelines), so framing is the only state.

JSON (rather than pickle) keeps the daemon safe to expose on a TCP
port: a malicious peer can at worst submit a weird job, never execute
code in the server process.  Frame size is capped so a corrupt or
hostile length prefix cannot make the server allocate unbounded
memory.

Response ``status`` values:

==============  =====================================================
``ok``          job ran at the requested fidelity; ``result`` attached
``degraded``    job ran, but admission shed fidelity first (overload);
                ``fidelity`` names the level that actually ran
``rejected``    admission refused the job (queue at capacity) —
                explicit backpressure, never a hang
``timeout``     the per-job deadline expired; the worker was cancelled
``error``       the job failed (bad spec, compile error, worker crash
                after retry); ``error`` holds a one-line message
==============  =====================================================
"""

from __future__ import annotations

import json
import socket
import struct

#: frame header: one u32 (big-endian) payload length.
_LEN = struct.Struct(">I")

#: hard ceiling on one frame's payload (16 MiB is far beyond any job).
MAX_FRAME_BYTES = 16 << 20

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"

#: statuses that carry a ``result`` payload.
RESULT_STATUSES = (STATUS_OK, STATUS_DEGRADED)


class ProtocolError(Exception):
    """Malformed frame or request payload."""


def encode(obj) -> bytes:
    """One canonical frame for ``obj`` (sorted keys: byte-stable)."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return _LEN.pack(len(payload)) + payload


def send_frame(sock: socket.socket, obj) -> None:
    sock.sendall(encode(obj))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one frame; returns the decoded object, or None on clean EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None


#: FrameReader.poll verdicts.
FRAME = "frame"
PENDING = "pending"
EOF = "eof"


class FrameReader:
    """Incremental frame reader that survives read timeouts.

    The server polls client sockets with a short timeout so handler
    threads can notice shutdown; a plain blocking ``recv_frame`` would
    lose already-consumed bytes when that timeout fires mid-frame.
    This reader buffers partial frames across polls instead.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buf = bytearray()

    def poll(self, timeout_s: float):
        """Try to read one frame; returns (FRAME, obj) | (PENDING, None)
        | (EOF, None).  Raises ProtocolError on malformed input."""
        frame = self._extract()
        if frame is not None:
            return FRAME, frame
        self._sock.settimeout(timeout_s)
        try:
            chunk = self._sock.recv(1 << 16)
        except socket.timeout:
            return PENDING, None
        finally:
            self._sock.settimeout(None)
        if not chunk:
            if self._buf:
                raise ProtocolError("connection closed mid-frame")
            return EOF, None
        self._buf.extend(chunk)
        frame = self._extract()
        if frame is None:
            return PENDING, None
        return FRAME, frame

    def _extract(self):
        buf = self._buf
        if len(buf) < _LEN.size:
            return None
        (length,) = _LEN.unpack(bytes(buf[: _LEN.size]))
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
            )
        end = _LEN.size + length
        if len(buf) < end:
            return None
        payload = bytes(buf[_LEN.size : end])
        del buf[:end]
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable frame: {exc}") from None


__all__ = [
    "EOF",
    "FRAME",
    "FrameReader",
    "MAX_FRAME_BYTES",
    "PENDING",
    "ProtocolError",
    "RESULT_STATUSES",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "encode",
    "recv_frame",
    "send_frame",
]
