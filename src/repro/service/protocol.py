"""Wire protocol: length-prefixed JSON frames over a stream socket.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests and responses are both single frames; a
connection carries any number of request/response pairs in lockstep
(the client never pipelines), so framing is the only state.

JSON (rather than pickle) keeps the daemon safe to expose on a TCP
port: a malicious peer can at worst submit a weird job, never execute
code in the server process.  Frame size is capped so a corrupt or
hostile length prefix cannot make the server allocate unbounded
memory.

Response ``status`` values:

==============  =====================================================
``ok``          job ran at the requested fidelity; ``result`` attached
``degraded``    job ran, but admission shed fidelity first (overload);
                ``fidelity`` names the level that actually ran
``rejected``    admission refused the job (queue at capacity) —
                explicit backpressure, never a hang
``timeout``     the per-job deadline expired; the worker was cancelled
``error``       the job failed (bad spec, compile error, worker crash
                after retry); ``error`` holds a one-line message
``partial``     one incremental frame of a streamed job (``stream:
                true`` requests against the async server); carries an
                ``op`` to fold into the result under construction.
                The terminal frame of a streamed job is a normal
                ``ok``/``degraded``/... frame, byte-identical to the
                blocking response
==============  =====================================================

**Streamed partial ops.**  A streaming job's partial frames each carry
one *op* — ``{"set": {key: value, ...}}`` merges sections into the
result under construction (dotted keys address nested objects),
``{"append": {key: [items]}}`` extends a list at a dotted key.
:func:`apply_stream_op` / :func:`reassemble` fold them back into the
full result dict, and the contract (proven per job kind by
``tests/test_aserver.py``) is that reassembling every partial op yields
the terminal frame's ``result`` byte for byte.
"""

from __future__ import annotations

import json
import socket
import struct

#: frame header: one u32 (big-endian) payload length.
_LEN = struct.Struct(">I")

#: hard ceiling on one frame's payload (16 MiB is far beyond any job).
MAX_FRAME_BYTES = 16 << 20

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
STATUS_PARTIAL = "partial"

#: statuses that carry a ``result`` payload.
RESULT_STATUSES = (STATUS_OK, STATUS_DEGRADED)

#: statuses that end a streamed exchange (everything but ``partial``).
TERMINAL_STATUSES = (
    STATUS_OK, STATUS_DEGRADED, STATUS_REJECTED, STATUS_TIMEOUT, STATUS_ERROR
)


class ProtocolError(Exception):
    """Malformed frame or request payload."""


def encode(obj) -> bytes:
    """One canonical frame for ``obj`` (sorted keys: byte-stable)."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return _LEN.pack(len(payload)) + payload


def send_frame(sock: socket.socket, obj) -> None:
    sock.sendall(encode(obj))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one frame; returns the decoded object, or None on clean EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    try:
        (length,) = _LEN.unpack(header)
    except struct.error as exc:  # pragma: no cover - _recv_exact guards size
        raise ProtocolError(f"malformed frame header: {exc}") from None
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None


class FrameAssembler:
    """Transport-free incremental frame parser.

    Feed it raw bytes from *any* source — a socket the threaded server
    polls, an :mod:`asyncio` stream the async front door reads, a
    router's backend connection — and pull decoded frames out.  This is
    the single place header parsing and payload decoding happen, so
    every transport shares one set of :class:`ProtocolError` messages
    (a corrupt header can never surface as a raw ``struct.error``).
    """

    def __init__(self):
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (0 = at a boundary)."""
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def next_frame(self):
        """Decode and pop one buffered frame, or None if incomplete."""
        buf = self._buf
        if len(buf) < _LEN.size:
            return None
        try:
            (length,) = _LEN.unpack(bytes(buf[: _LEN.size]))
        except struct.error as exc:  # pragma: no cover - length checked above
            raise ProtocolError(f"malformed frame header: {exc}") from None
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
            )
        end = _LEN.size + length
        if len(buf) < end:
            return None
        payload = bytes(buf[_LEN.size : end])
        del buf[:end]
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable frame: {exc}") from None


#: FrameReader.poll verdicts.
FRAME = "frame"
PENDING = "pending"
EOF = "eof"


class FrameReader:
    """Incremental frame reader that survives read timeouts.

    The server polls client sockets with a short timeout so handler
    threads can notice shutdown; a plain blocking ``recv_frame`` would
    lose already-consumed bytes when that timeout fires mid-frame.
    This reader buffers partial frames across polls instead.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._assembler = FrameAssembler()

    def poll(self, timeout_s: float):
        """Try to read one frame; returns (FRAME, obj) | (PENDING, None)
        | (EOF, None).  Raises ProtocolError on malformed input."""
        frame = self._assembler.next_frame()
        if frame is not None:
            return FRAME, frame
        self._sock.settimeout(timeout_s)
        try:
            chunk = self._sock.recv(1 << 16)
        except socket.timeout:
            return PENDING, None
        finally:
            self._sock.settimeout(None)
        if not chunk:
            if self._assembler.pending_bytes:
                raise ProtocolError("connection closed mid-frame")
            return EOF, None
        self._assembler.feed(chunk)
        frame = self._assembler.next_frame()
        if frame is None:
            return PENDING, None
        return FRAME, frame


# ---------------------------------------------------------------------------
# Streamed-result reassembly
# ---------------------------------------------------------------------------
def _dig(result: dict, dotted: str) -> tuple[dict, str]:
    """Walk dotted path segments, creating nested dicts; returns
    (owning dict, final key)."""
    node = result
    parts = dotted.split(".")
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    return node, parts[-1]


def apply_stream_op(result: dict, op: dict) -> dict:
    """Fold one partial frame's op into the result under construction.

    ``{"set": {path: value}}`` assigns (dotted paths nest);
    ``{"append": {path: [items]}}`` extends the list at the path
    (created empty on first append).  Mutates and returns ``result``.
    """
    if not isinstance(op, dict):
        raise ProtocolError("stream op must be a JSON object")
    for dotted, value in (op.get("set") or {}).items():
        node, key = _dig(result, dotted)
        node[key] = value
    for dotted, items in (op.get("append") or {}).items():
        node, key = _dig(result, dotted)
        bucket = node.get(key)
        if bucket is None:
            bucket = []
            node[key] = bucket
        if not isinstance(bucket, list):
            raise ProtocolError(f"stream op appends to non-list at {dotted!r}")
        bucket.extend(items)
    return result


def reassemble(ops: list) -> dict:
    """Fold a streamed job's partial ops into the full result dict.

    The async server guarantees the reassembly of every partial op
    equals the terminal frame's ``result`` byte for byte.
    """
    result: dict = {}
    for op in ops:
        apply_stream_op(result, op)
    return result


__all__ = [
    "EOF",
    "FRAME",
    "FrameAssembler",
    "FrameReader",
    "MAX_FRAME_BYTES",
    "PENDING",
    "ProtocolError",
    "RESULT_STATUSES",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_PARTIAL",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "TERMINAL_STATUSES",
    "apply_stream_op",
    "encode",
    "reassemble",
    "recv_frame",
    "send_frame",
]
