"""Bounded admission with fidelity-shedding backpressure.

The daemon's queue is a hard bound: a request that cannot be queued is
answered ``rejected`` immediately — explicit backpressure, never a
hang.  Before that wall is hit, overload degrades gracefully by
shedding *fidelity* (the §2.2 cheap-logging/expensive-replay split):

==============================  =====================================
queue depth / capacity          decision
==============================  =====================================
``< degrade_at``                admit at the requested fidelity
``>= degrade_at``               admit one rung down the kind's ladder
``>= shed_at``                  admit at the ladder's cheapest rung
``>= 1.0`` (capacity)           reject
==============================  =====================================

Degradation is a policy knob (:func:`repro.fastpath.service_degrade_enabled`,
``REPRO_SERVICE_DEGRADE``): with it off, the middle bands admit at the
requested fidelity and overload goes straight to the rejection wall.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import fastpath
from .jobs import FIDELITY_LADDER

ACTION_ADMIT = "admit"
ACTION_REJECT = "reject"


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller chose for one request."""

    action: str  # ACTION_ADMIT | ACTION_REJECT
    fidelity: str  # the fidelity the job will actually run at
    degraded: bool  # fidelity differs from the requested one
    reason: str = ""


class AdmissionController:
    """Depth-based admit/degrade/reject policy over the job queue."""

    def __init__(
        self,
        capacity: int,
        degrade_fraction: float = 0.5,
        shed_fraction: float = 0.75,
        degrade: bool | None = None,
    ):
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if not 0.0 < degrade_fraction <= shed_fraction <= 1.0:
            raise ValueError("need 0 < degrade_fraction <= shed_fraction <= 1")
        self.capacity = capacity
        self.degrade_at = degrade_fraction * capacity
        self.shed_at = shed_fraction * capacity
        self.degrade_enabled = fastpath.service_degrade_enabled(degrade)

    def decide(self, depth: int, kind: str, fidelity: str) -> AdmissionDecision:
        """Decide one request given the current queue ``depth``
        (queued + running jobs, i.e. admitted-but-unfinished work)."""
        if depth >= self.capacity:
            return AdmissionDecision(
                ACTION_REJECT,
                fidelity,
                False,
                f"queue at capacity ({depth}/{self.capacity})",
            )
        ladder = FIDELITY_LADDER.get(kind, (fidelity,))
        resolved = fidelity
        if self.degrade_enabled and depth >= self.degrade_at and fidelity in ladder:
            rung = ladder.index(fidelity)
            if depth >= self.shed_at:
                rung = len(ladder) - 1
            else:
                rung = min(rung + 1, len(ladder) - 1)
            resolved = ladder[rung]
        degraded = resolved != fidelity
        reason = (
            f"overload ({depth}/{self.capacity}): fidelity {fidelity} -> {resolved}"
            if degraded
            else ""
        )
        return AdmissionDecision(ACTION_ADMIT, resolved, degraded, reason)


__all__ = ["ACTION_ADMIT", "ACTION_REJECT", "AdmissionController", "AdmissionDecision"]
