"""The asyncio front door: coroutine-per-connection, streamed results.

:class:`AsyncAnalysisServer` is the second face of the daemon.  It
wraps the same :class:`~repro.service.server.ServiceCore` (admission ->
cache -> pool) as the threaded :class:`~repro.service.server.AnalysisServer`
and speaks the identical length-prefixed frame protocol, but the accept
side is one event loop instead of a thread per connection: a coroutine
reads frames through a :class:`~repro.service.protocol.FrameAssembler`,
control requests answer inline, and job requests hand off to the
blocking :class:`~repro.service.pool.WorkerPool` and *await* completion
without holding a thread.  The completion path is callback-shaped —
``Job.done_cb`` pokes an :class:`asyncio.Event` through
``loop.call_soon_threadsafe`` — so hundreds of concurrent waiters cost
hundreds of suspended coroutines, not hundreds of parked threads.

**Streaming.**  A job request carrying ``"stream": true`` receives
incremental ``partial`` frames (``{"status": "partial", "seq": n,
"op": ...}``) as the worker produces result sections, followed by the
normal terminal frame.  The terminal frame is byte-identical to what a
blocking submit would have returned — it remains the canonical
cacheable result, so :class:`~repro.service.client.ServiceClient` and
the result cache work unchanged — and reassembling every op
(:func:`~repro.service.protocol.reassemble`) reproduces its ``result``
byte for byte.  Partial ``seq`` numbers restart at 1 on a crash-retry;
because re-execution is deterministic the replayed prefix is identical,
so the relay drops ``seq <= last-seen`` and the client observes an
exactly-once op stream.  A streamed exchange may legitimately carry
*zero* partial frames (cache hit, rejection) — consumers key off
``status`` alone.

The event loop runs in a daemon thread behind a synchronous
``start()`` / ``stop()`` / context-manager facade, so the CLI, tests
and the router drive both server flavors through one interface (the
sync/async adapter seam).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading

from ..telemetry import MetricsRegistry
from ..telemetry.obs import new_trace_id, wall_now_us
from .protocol import (
    ProtocolError,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_PARTIAL,
    FrameAssembler,
    encode,
)
from .server import ServiceConfig, ServiceCore

#: read granularity for the per-connection frame loop.
_READ_BYTES = 1 << 16


class AsyncAnalysisServer:
    """Event-loop analysis daemon; see the module docstring."""

    def __init__(self, config: ServiceConfig, registry: MetricsRegistry | None = None):
        if (config.socket_path is None) == (config.port is None):
            raise ValueError("configure exactly one of socket_path or port")
        self.config = config
        self.core = ServiceCore(config, registry=registry)
        self.registry = self.core.registry
        self.admission = self.core.admission
        self.cache = self.core.cache
        self.obs = self.core.obs
        self.pool = self.core.pool
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._running = False
        self._shutdown_requested = threading.Event()

    # -- sync facade ---------------------------------------------------------
    def start(self) -> "AsyncAnalysisServer":
        """Spin up the event loop in a daemon thread; returns once bound."""
        self._running = True
        self._thread = threading.Thread(
            target=self._run_loop, name="aserver-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            self._running = False
            raise RuntimeError("async server failed to start in time")
        if self._startup_error is not None:
            self._running = False
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`stop` or a ``shutdown`` request."""
        if not self._running:
            self.start()
        try:
            while self._running and not self._shutdown_requested.wait(timeout=0.2):
                pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain handlers, stop the pool."""
        if not self._running:
            return
        self._running = False
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.config.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    def __enter__(self) -> "AsyncAnalysisServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
        finally:
            self._ready.set()

    # -- event loop ----------------------------------------------------------
    async def _amain(self) -> None:
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, config.host, config.port
            )
            if config.port == 0:  # ephemeral: record what the OS picked
                config.port = server.sockets[0].getsockname()[1]
        else:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(config.socket_path)
            server = await asyncio.start_unix_server(
                self._handle_connection, path=config.socket_path
            )
        self.core.start()
        self.registry.gauge("aserver.enabled").set(1)
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self.core.stop()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        registry = self.registry
        registry.counter("aserver.connections").inc()
        # All connection tasks live on the one loop thread, so the task
        # set's size *is* the live-connection gauge.
        registry.gauge("aserver.active_connections").set(len(self._conn_tasks))
        registry.gauge("aserver.peak_connections").set_max(len(self._conn_tasks))
        assembler = FrameAssembler()
        try:
            while True:
                request = assembler.next_frame()
                if request is None:
                    data = await reader.read(_READ_BYTES)
                    if not data:
                        if assembler.pending_bytes:
                            raise ProtocolError("connection closed mid-frame")
                        return  # client closed cleanly
                    assembler.feed(data)
                    continue
                await self._serve_request(request, writer)
                if isinstance(request, dict) and request.get("kind") == "shutdown":
                    self._shutdown_requested.set()
                    return
        except ProtocolError as exc:
            with contextlib.suppress(OSError, ConnectionError):
                writer.write(encode({"status": STATUS_ERROR, "error": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            registry.gauge("aserver.active_connections").set(len(self._conn_tasks))
            with contextlib.suppress(OSError, ConnectionError):
                writer.close()

    async def _serve_request(self, request, writer: asyncio.StreamWriter) -> None:
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        self.registry.counter("aserver.requests").inc()
        kind = request.get("kind")
        if kind == "stats":
            response = {"status": STATUS_OK, "stats": self.core.stats()}
        elif kind == "health":
            response = {"status": STATUS_OK, "health": self.core.health()}
        elif kind == "metrics":
            response = {
                "status": STATUS_OK,
                "metrics": self.core.metrics(dump=bool(request.get("dump"))),
            }
        elif kind == "shutdown":
            response = {"status": STATUS_OK, "shutting_down": True}
        else:
            response = await self._dispatch_job(request, writer)
        writer.write(encode(response))
        await writer.drain()

    async def _dispatch_job(self, request: dict, writer: asyncio.StreamWriter) -> dict:
        w0 = wall_now_us()
        want_trace = bool(request.get("trace")) and self.obs.enabled
        trace_id = ""
        if want_trace:
            trace_id = str(request.get("trace_id") or "") or new_trace_id()
        stream = bool(request.get("stream"))
        response, worker_events = await self._admit_and_run(
            request, trace_id, stream, writer
        )
        if want_trace:
            self.obs.span_at(
                "server.handle", w0, wall_now_us() - w0,
                trace_id=trace_id, status=response.get("status"),
            )
            response["trace"] = {
                "trace_id": trace_id,
                "events": self.obs.trace_events(trace_id) + list(worker_events),
            }
        return response

    async def _admit_and_run(
        self, request: dict, trace_id: str, stream: bool,
        writer: asyncio.StreamWriter,
    ) -> tuple[dict, list]:
        loop = asyncio.get_running_loop()
        response, prepared = self.core.prepare(request, trace_id)
        if response is not None:
            return response, []

        done = asyncio.Event()
        queue: asyncio.Queue | None = asyncio.Queue() if stream else None

        # Both callbacks fire on pool slot threads; call_soon_threadsafe
        # serializes them into the loop in causal order, so by the time
        # the sentinel (or the bare done-set) runs, every partial that
        # preceded job completion is already queued.
        def done_cb() -> None:
            loop.call_soon_threadsafe(done.set)
            if queue is not None:
                loop.call_soon_threadsafe(queue.put_nowait, None)

        partial_cb = None
        if stream:
            def partial_cb(seq: int, op: dict) -> None:
                loop.call_soon_threadsafe(queue.put_nowait, (seq, op))

        job = self.core.make_job(
            prepared, trace_id, stream=stream,
            partial_cb=partial_cb, done_cb=done_cb,
        )
        self.pool.submit(job)

        if stream:
            lost = await self._relay_partials(queue, writer, prepared.grace_deadline_s)
            if lost:
                return self.core.lost_response(), []
        else:
            try:
                await asyncio.wait_for(done.wait(), timeout=prepared.grace_deadline_s)
            except asyncio.TimeoutError:
                return self.core.lost_response(), []
        return self.core.finish(prepared, job), job.worker_events

    async def _relay_partials(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter, budget_s: float,
    ) -> bool:
        """Forward partial frames until the done sentinel; True if lost.

        ``seq`` restarts per pool attempt; deterministic re-execution
        makes a crash-retry replay the identical prefix, so dropping
        ``seq <= last_seq`` turns at-least-once delivery into the
        exactly-once stream the protocol promises.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget_s
        last_seq = 0
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return True
            try:
                item = await asyncio.wait_for(queue.get(), timeout=remaining)
            except asyncio.TimeoutError:
                return True
            if item is None:
                return False  # job finished; terminal frame follows
            seq, op = item
            if seq <= last_seq:
                self.registry.counter("aserver.stream.duplicates_dropped").inc()
                continue
            last_seq = seq
            self.registry.counter("aserver.stream.frames").inc()
            writer.write(encode({"status": STATUS_PARTIAL, "seq": seq, "op": op}))
            await writer.drain()

    # -- introspection (parity with AnalysisServer) --------------------------
    def health(self) -> dict:
        return self.core.health()

    def stats(self) -> dict:
        return self.core.stats()

    def metrics(self, dump: bool = False) -> dict:
        return self.core.metrics(dump=dump)


def make_server(config: ServiceConfig, registry: MetricsRegistry | None = None,
                use_async: bool | None = None):
    """Build the configured server flavor (the CLI's one switch).

    ``use_async=None`` defers to :func:`repro.fastpath.service_async_enabled`
    (the ``REPRO_SERVICE_ASYNC`` environment switch, default off).
    """
    from .. import fastpath
    from .server import AnalysisServer

    if fastpath.service_async_enabled(use_async):
        return AsyncAnalysisServer(config, registry=registry)
    return AnalysisServer(config, registry=registry)


__all__ = ["AsyncAnalysisServer", "make_server"]
