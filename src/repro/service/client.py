"""Blocking client for the analysis service.

One :class:`ServiceClient` wraps one socket and speaks strict
request/response lockstep — no pipelining, so ``recv_frame`` after
``send_frame`` is the whole conversation.  The client is deliberately
thin: all policy (admission, degradation, deadlines) lives server-side
and is *reported* in responses, never re-implemented here.

``connect()`` accepts either a Unix socket path or a ``host:port``
string; :func:`wait_until_ready` spins on ``health`` until the daemon
answers, which is how the CLI, tests and CI smoke jobs synchronize
with a freshly forked ``repro serve``.
"""

from __future__ import annotations

import json
import os
import socket
import time

from ..telemetry.obs import chrome_trace, new_trace_id, span_event, wall_now_us
from .protocol import ProtocolError, recv_frame, send_frame


class ServiceError(Exception):
    """Client-side failure: connect, transport, or protocol trouble.

    Job-level failures (rejected / timeout / error statuses) are NOT
    raised — they come back as the response dict so callers can react
    to backpressure programmatically.
    """


class ServiceProtocolError(ServiceError):
    """The peer broke the frame protocol mid-conversation.

    Covers torn frames (connection dropped between header and payload),
    corrupt length prefixes, undecodable payloads, and a server that
    closes without answering.  These used to surface as the raw
    transport's ``struct.error`` / short-read artifacts; every client
    entry point now normalizes them to this one typed error so callers
    can distinguish "the wire broke" from "could not connect"
    (:class:`ServiceError`) without string matching.
    """


def _parse_address(address: str) -> tuple[str, str | tuple[str, int]]:
    """``unix:///path``, ``tcp://host:port``, ``host:port`` or a bare path."""
    if address.startswith("unix://"):
        return "unix", address[len("unix://"):]
    if address.startswith("tcp://"):
        address = address[len("tcp://"):]
        host, _, port = address.rpartition(":")
        return "tcp", (host or "127.0.0.1", int(port))
    if ":" in address and address.rsplit(":", 1)[1].isdigit() and "/" not in address:
        host, _, port = address.rpartition(":")
        return "tcp", (host or "127.0.0.1", int(port))
    return "unix", address


class ServiceClient:
    """A blocking, lockstep client for one daemon connection."""

    def __init__(self, address: str, timeout_s: float = 150.0):
        self.address = address
        self.timeout_s = timeout_s
        self._sock: socket.socket | None = None

    # -- lifecycle -----------------------------------------------------------
    def connect(self) -> "ServiceClient":
        family, target = _parse_address(self.address)
        try:
            if family == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout_s)
                sock.connect(target)
            else:
                sock = socket.create_connection(target, timeout=self.timeout_s)
        except OSError as exc:
            raise ServiceError(f"cannot connect to {self.address}: {exc}") from None
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- one round trip ------------------------------------------------------
    def _recv_response(self) -> dict:
        """One response frame, with transport faults normalized."""
        try:
            response = recv_frame(self._sock)
        except socket.timeout:
            self.close()
            raise ServiceError(
                f"no response from {self.address} within {self.timeout_s}s"
            ) from None
        except ProtocolError as exc:
            self.close()
            raise ServiceProtocolError(
                f"protocol error from {self.address}: {exc}"
            ) from None
        except OSError as exc:
            self.close()
            raise ServiceError(f"transport error: {exc}") from None
        if response is None:
            self.close()
            raise ServiceProtocolError(
                f"{self.address} closed the connection mid-request"
            )
        if not isinstance(response, dict):
            self.close()
            raise ServiceProtocolError(
                f"{self.address} sent a non-object response"
            )
        return response

    def request(self, payload: dict) -> dict:
        """Send one frame, receive one frame."""
        if self._sock is None:
            self.connect()
        try:
            send_frame(self._sock, payload)
        except OSError as exc:
            self.close()
            raise ServiceError(f"transport error: {exc}") from None
        return self._recv_response()

    # -- request helpers -----------------------------------------------------
    def submit(
        self,
        kind: str,
        *,
        workload: str | None = None,
        scale: int = 1,
        source: str | None = None,
        fidelity: str | None = None,
        params: dict | None = None,
        cache: bool = True,
        deadline_s: float | None = None,
        trace: bool = False,
        trace_id: str | None = None,
    ) -> dict:
        """Submit one analysis job; returns the raw response dict.

        ``trace=True`` asks the daemon to span-trace this job end to
        end; the response then carries ``trace.events`` (server +
        worker spans sharing ``trace.trace_id``).  Trace keys are
        transport metadata — they never reach the job spec or its
        cache key.
        """
        payload: dict = {"kind": kind, "scale": scale, "cache": cache}
        if workload is not None:
            payload["workload"] = workload
        if source is not None:
            payload["source"] = source
        if fidelity is not None:
            payload["fidelity"] = fidelity
        if params:
            payload["params"] = params
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if trace:
            payload["trace"] = True
            payload["trace_id"] = trace_id or new_trace_id()
        return self.request(payload)

    def submit_stream(
        self,
        kind: str,
        *,
        on_partial=None,
        workload: str | None = None,
        scale: int = 1,
        source: str | None = None,
        fidelity: str | None = None,
        params: dict | None = None,
        cache: bool = True,
        deadline_s: float | None = None,
    ) -> tuple[dict, list]:
        """Submit with ``stream: true``; returns ``(response, ops)``.

        ``ops`` is the list of partial-result ops received before the
        terminal frame, already deduplicated server-side — folding them
        through :func:`~repro.service.protocol.reassemble` reproduces
        ``response["result"]`` byte for byte.  ``on_partial(seq, op)``
        (when given) fires as each partial frame arrives, which is the
        point of streaming: consumers render slice rows / attack alerts
        while the job is still running.  Against a server or job shape
        that emits no partials (cache hit, rejection, control-plane
        degradation) ``ops`` is empty and the terminal frame is the
        whole answer — byte-identical to a blocking :meth:`submit`.
        """
        payload: dict = {"kind": kind, "scale": scale, "cache": cache, "stream": True}
        if workload is not None:
            payload["workload"] = workload
        if source is not None:
            payload["source"] = source
        if fidelity is not None:
            payload["fidelity"] = fidelity
        if params:
            payload["params"] = params
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if self._sock is None:
            self.connect()
        try:
            send_frame(self._sock, payload)
        except OSError as exc:
            self.close()
            raise ServiceError(f"transport error: {exc}") from None
        ops: list = []
        while True:
            frame = self._recv_response()
            if frame.get("status") == "partial":
                op = frame.get("op") or {}
                ops.append(op)
                if on_partial is not None:
                    on_partial(int(frame.get("seq") or 0), op)
                continue
            return frame, ops

    def submit_traced(self, kind: str, *, trace_path=None, **kwargs) -> tuple[dict, dict]:
        """Submit with tracing on; returns ``(response, chrome_trace)``.

        The client mints the trace id, times its own ``client.request``
        span around the round trip, and merges it with the server's and
        worker's spans from the response into one Chrome trace object
        (written to ``trace_path`` when given) — the single file whose
        lanes are the client process, the daemon and the worker process,
        all on the shared wall-epoch-µs timeline.
        """
        trace_id = new_trace_id()
        t0 = wall_now_us()
        response = self.submit(kind, trace=True, trace_id=trace_id, **kwargs)
        dur = wall_now_us() - t0
        events = list((response.get("trace") or {}).get("events") or [])
        events.append(
            span_event(
                "client.request", t0, dur, pid=os.getpid(), tid=0,
                trace_id=trace_id, kind=kind,
            )
        )
        trace = chrome_trace(events)
        if trace_path is not None:
            with open(trace_path, "w") as fh:
                json.dump(trace, fh, indent=1)
        return response, trace

    def stats(self) -> dict:
        return self.request({"kind": "stats"})["stats"]

    def metrics(self, dump: bool = False) -> dict:
        """The daemon's live metrics exposition (see ``repro stats``)."""
        request: dict = {"kind": "metrics"}
        if dump:
            request["dump"] = True
        return self.request(request)["metrics"]

    def health(self) -> dict:
        return self.request({"kind": "health"})["health"]

    def shutdown(self) -> dict:
        """Ask the daemon to exit after responding."""
        return self.request({"kind": "shutdown"})


def wait_until_ready(
    address: str, timeout_s: float = 10.0, interval_s: float = 0.05
) -> dict:
    """Poll ``health`` until the daemon answers; returns the health dict.

    Raises :class:`ServiceError` if the deadline passes without a
    healthy answer (connection refused counts as "not yet up").
    """
    deadline = time.monotonic() + timeout_s
    last_error = "never reached"
    while time.monotonic() < deadline:
        try:
            with ServiceClient(address, timeout_s=max(1.0, interval_s * 20)) as client:
                health = client.health()
            if health.get("ok"):
                return health
            last_error = f"unhealthy: {health}"
        except ServiceError as exc:
            last_error = str(exc)
        time.sleep(interval_s)
    raise ServiceError(f"service at {address} not ready after {timeout_s}s ({last_error})")


__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceProtocolError",
    "wait_until_ready",
]
